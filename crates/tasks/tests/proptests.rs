//! Property-based tests for the task substrate: arbitrary task DAGs
//! compute the same values as their sequential model, and the sync-event
//! stream stays consistent.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use std::sync::Arc;

use proptest::prelude::*;
use tsvd_core::{Runtime, TsvdConfig};
use tsvd_tasks::Pool;

/// A little expression language evaluated both sequentially and as a task
/// DAG: every node spawns its children and combines their results.
#[derive(Debug, Clone)]
enum Expr {
    Leaf(u8),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

fn expr() -> impl Strategy<Value = Expr> {
    let leaf = any::<u8>().prop_map(Expr::Leaf);
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_seq(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => u64::from(*v),
        Expr::Add(a, b) => eval_seq(a).wrapping_add(eval_seq(b)),
        Expr::Mul(a, b) => eval_seq(a).wrapping_mul(eval_seq(b)),
    }
}

fn eval_tasks(pool: &Arc<Pool>, e: Expr) -> u64 {
    match e {
        Expr::Leaf(v) => u64::from(v),
        Expr::Add(a, b) => {
            let pa = pool.clone();
            let ta = pool.spawn(move || eval_tasks(&pa, *a));
            let pb = pool.clone();
            let tb = pool.spawn(move || eval_tasks(&pb, *b));
            ta.join().wrapping_add(tb.join())
        }
        Expr::Mul(a, b) => {
            let pa = pool.clone();
            let ta = pool.spawn(move || eval_tasks(&pa, *a));
            let pb = pool.clone();
            let tb = pool.spawn(move || eval_tasks(&pb, *b));
            ta.join().wrapping_mul(tb.join())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary task DAGs (nested spawns joined across levels) compute the
    /// sequential result, even on a single-worker pool (the helping logic
    /// keeps deep joins deadlock-free).
    #[test]
    fn task_dag_matches_sequential_eval(e in expr(), threads in 1usize..4) {
        let pool = Arc::new(Pool::new(threads));
        let expected = eval_seq(&e);
        prop_assert_eq!(eval_tasks(&pool, e), expected);
    }

    /// Fork/end/join events stay balanced: every spawned-and-joined task
    /// contributes exactly one fork, one end, and at least one join.
    #[test]
    fn sync_event_stream_is_balanced(n in 1usize..24) {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let pool = Pool::with_runtime(2, rt.clone());
        let handles: Vec<_> = (0..n).map(|i| pool.spawn(move || i)).collect();
        let sum: usize = handles.into_iter().map(|h| h.join()).sum();
        prop_assert_eq!(sum, n * (n - 1) / 2);
        // Fork + TaskEnd + Join per task = exactly 3n events.
        prop_assert_eq!(rt.stats().sync_events(), 3 * n as u64);
    }

    /// `then` chains compute left-to-right function composition.
    #[test]
    fn then_chain_composes(start in any::<u8>(), deltas in proptest::collection::vec(any::<u8>(), 0..6)) {
        let pool = Pool::new(2);
        let mut handle = pool.spawn(move || u64::from(start));
        for d in &deltas {
            let d = u64::from(*d);
            handle = handle.then(&pool, move |x| x.wrapping_add(d));
        }
        let expected = deltas.iter().fold(u64::from(start), |a, &d| a.wrapping_add(u64::from(d)));
        prop_assert_eq!(handle.join(), expected);
    }
}
