//! Data-parallel helpers: the `Parallel.ForEach` / `Parallel.Invoke`
//! analogs (used by the network-validation bug of Fig. 10 b).

use crate::pool::Pool;

/// Runs `body` once per item of `items`, distributing the invocations over
/// the pool's workers, and returns when all of them finished — the analog
/// of .NET's `Parallel.ForEach`.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use tsvd_tasks::{parallel_for_each, Pool};
///
/// let pool = Pool::new(4);
/// let sum = Arc::new(AtomicUsize::new(0));
/// let s = sum.clone();
/// parallel_for_each(&pool, 1..=10usize, move |n| {
///     s.fetch_add(n, Ordering::Relaxed);
/// });
/// assert_eq!(sum.load(Ordering::Relaxed), 55);
/// ```
pub fn parallel_for_each<I, T, F>(pool: &Pool, items: I, body: F)
where
    I: IntoIterator<Item = T>,
    T: Send + 'static,
    F: Fn(T) + Send + Sync + 'static,
{
    let body = std::sync::Arc::new(body);
    let handles: Vec<_> = items
        .into_iter()
        .map(|item| {
            let body = body.clone();
            pool.spawn(move || body(item))
        })
        .collect();
    for h in handles {
        h.join();
    }
}

/// Runs every closure in `actions` concurrently and waits for all of them —
/// the analog of `Parallel.Invoke`.
pub fn parallel_invoke(pool: &Pool, actions: Vec<Box<dyn FnOnce() + Send>>) {
    let handles: Vec<_> = actions.into_iter().map(|a| pool.spawn(a)).collect();
    for h in handles {
        h.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn for_each_visits_every_item() {
        let pool = Pool::new(3);
        let seen = Arc::new(AtomicUsize::new(0));
        let seen2 = seen.clone();
        parallel_for_each(&pool, 0..100usize, move |n| {
            seen2.fetch_add(n, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn for_each_on_empty_input() {
        let pool = Pool::new(2);
        parallel_for_each(&pool, std::iter::empty::<u32>(), |_| panic!("must not run"));
    }

    #[test]
    fn for_each_actually_parallelizes() {
        // With 4 workers and 4 items that each wait for the others, the
        // items must overlap in time or the barrier would deadlock.
        let pool = Pool::new(4);
        let barrier = Arc::new(std::sync::Barrier::new(4));
        parallel_for_each(&pool, 0..4usize, move |_| {
            barrier.wait();
        });
    }

    #[test]
    fn invoke_runs_all_actions() {
        let pool = Pool::new(2);
        let count = Arc::new(AtomicUsize::new(0));
        let actions: Vec<Box<dyn FnOnce() + Send>> = (0..5)
            .map(|_| {
                let c = count.clone();
                Box::new(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        parallel_invoke(&pool, actions);
        assert_eq!(count.load(Ordering::Relaxed), 5);
    }
}
