//! Instrumented synchronization primitives.
//!
//! Workloads that correctly protect their collections use [`TsvdMutex`]; it
//! reports acquire/release edges to the runtime so that TSVD-HB can order
//! the critical sections. TSVD itself never looks at these events — its HB
//! *inference* discovers the same ordering purely from delay propagation,
//! which is the paper's central trick.

use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

use tsvd_core::{context, Runtime, SyncEvent};

/// A mutex that reports lock-transfer edges to a TSVD runtime.
pub struct TsvdMutex<T> {
    inner: Mutex<T>,
    runtime: Option<Arc<Runtime>>,
}

impl<T> TsvdMutex<T> {
    /// Creates an uninstrumented mutex (no runtime attached).
    pub fn new(value: T) -> Self {
        TsvdMutex {
            inner: Mutex::new(value),
            runtime: None,
        }
    }

    /// Creates a mutex whose acquire/release events flow to `runtime`.
    pub fn with_runtime(value: T, runtime: Arc<Runtime>) -> Self {
        TsvdMutex {
            inner: Mutex::new(value),
            runtime: Some(runtime),
        }
    }

    /// Stable identity of this lock for HB analysis.
    fn lock_id(&self) -> u64 {
        &self.inner as *const _ as u64
    }

    /// Acquires the lock, reporting the acquire edge *after* the lock is
    /// held (so the release→acquire transfer is linearized correctly).
    pub fn lock(&self) -> TsvdMutexGuard<'_, T> {
        let guard = self.inner.lock();
        if let Some(rt) = &self.runtime {
            rt.on_sync(SyncEvent::LockAcquire {
                context: context::current(),
                lock: self.lock_id(),
            });
        }
        TsvdMutexGuard {
            guard: Some(guard),
            lock: self,
        }
    }
}

/// Guard for [`TsvdMutex`]; reports the release edge just before unlocking.
pub struct TsvdMutexGuard<'a, T> {
    guard: Option<MutexGuard<'a, T>>,
    lock: &'a TsvdMutex<T>,
}

impl<T> std::ops::Deref for TsvdMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present until drop")
    }
}

impl<T> std::ops::DerefMut for TsvdMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present until drop")
    }
}

impl<T> Drop for TsvdMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Report while still holding the lock, then release: the release
        // clock snapshot must precede any subsequent acquire.
        if let Some(rt) = &self.lock.runtime {
            rt.on_sync(SyncEvent::LockRelease {
                context: context::current(),
                lock: self.lock.lock_id(),
            });
        }
        drop(self.guard.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::TsvdConfig;

    #[test]
    fn mutex_protects_value() {
        let m = Arc::new(TsvdMutex::new(0u64));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let m = m.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn events_flow_to_runtime() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let m = TsvdMutex::with_runtime(5u32, rt.clone());
        {
            let g = m.lock();
            assert_eq!(*g, 5);
        }
        // One acquire + one release.
        assert_eq!(rt.stats().sync_events(), 2);
    }

    #[test]
    fn lock_use_flushes_batched_events() {
        // Synchronization is a flush point: events buffered on the hot path
        // must land in the shared structures before the lock edge does.
        use tsvd_core::{ObjId, OpKind};
        let mut cfg = TsvdConfig::for_testing();
        cfg.batch_capacity = 64;
        let rt = Runtime::tsvd(cfg);
        assert!(rt.is_batching());
        for i in 0..5 {
            rt.on_call(ObjId(i), tsvd_core::site!(), "t.op", OpKind::Write);
        }
        assert_eq!(rt.thread_buffered_events(), 5, "quiescent calls buffer");
        assert_eq!(rt.stats().on_calls(), 0);
        let m = TsvdMutex::with_runtime(0u32, rt.clone());
        let _g = m.lock();
        assert_eq!(rt.thread_buffered_events(), 0, "lock acquire flushed");
        assert_eq!(rt.stats().on_calls(), 5);
        assert_eq!(rt.stats().batch_flushes(), 1);
    }

    #[test]
    fn uninstrumented_mutex_emits_nothing() {
        let m = TsvdMutex::new(1u32);
        let _ = *m.lock();
        // No runtime attached: nothing to assert except that it works.
    }

    #[test]
    fn guard_allows_mutation() {
        let m = TsvdMutex::new(String::new());
        m.lock().push_str("hello");
        assert_eq!(&*m.lock(), "hello");
    }
}
