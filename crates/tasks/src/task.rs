//! Task handles: first-class, joinable-by-anyone completion futures.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use tsvd_core::context::ContextId;

/// Internal completion state of a task.
enum TaskState<T> {
    Pending,
    Done(T),
    Panicked(Box<dyn std::any::Any + Send>),
    Taken,
}

/// Shared state between a running task and its handles.
pub struct TaskInner<T> {
    state: Mutex<TaskState<T>>,
    done: Condvar,
    context: ContextId,
}

impl<T> TaskInner<T> {
    /// Creates the pending state for a task that will run as `context`.
    pub fn new(context: ContextId) -> Arc<TaskInner<T>> {
        Arc::new(TaskInner {
            state: Mutex::new(TaskState::Pending),
            done: Condvar::new(),
            context,
        })
    }

    /// Runs `body` to completion, capturing its value or panic.
    pub fn run(&self, body: impl FnOnce() -> T) {
        self.run_with_hook(body, || {});
    }

    /// Runs `body`, then calls `before_publish` *before* the completion is
    /// made visible to waiters. The pool uses this to emit the `TaskEnd`
    /// synchronization event strictly before any `Join` edge can consume
    /// the task's final clock.
    pub fn run_with_hook(&self, body: impl FnOnce() -> T, before_publish: impl FnOnce()) {
        let result = panic::catch_unwind(AssertUnwindSafe(body));
        before_publish();
        let mut st = self.state.lock();
        *st = match result {
            Ok(v) => TaskState::Done(v),
            Err(p) => TaskState::Panicked(p),
        };
        self.done.notify_all();
    }

    /// Returns `true` once the task finished (normally or by panic).
    pub fn is_done(&self) -> bool {
        !matches!(*self.state.lock(), TaskState::Pending)
    }

    /// Blocks up to `timeout` for completion; returns `true` if done.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let mut st = self.state.lock();
        if !matches!(*st, TaskState::Pending) {
            return true;
        }
        self.done.wait_for(&mut st, timeout);
        !matches!(*st, TaskState::Pending)
    }

    /// Takes the task's value.
    ///
    /// # Panics
    ///
    /// Resumes the task's panic if it panicked; panics if called before
    /// completion or twice.
    pub fn take(&self) -> T {
        let mut st = self.state.lock();
        match std::mem::replace(&mut *st, TaskState::Taken) {
            TaskState::Done(v) => v,
            TaskState::Panicked(p) => panic::resume_unwind(p),
            TaskState::Pending => panic!("task result taken before completion"),
            TaskState::Taken => panic!("task result taken twice"),
        }
    }

    /// The logical context the task runs as.
    pub fn context(&self) -> ContextId {
        self.context
    }
}

/// A handle to a spawned task — the analog of a .NET `Task<T>`.
///
/// Handles are first-class: they can be stored, passed around, and joined
/// by *any* context, which is what makes the fork/join graphs the paper
/// targets non-series-parallel. Dropping a handle without joining is
/// allowed (fire-and-forget), just as in TPL.
pub struct JoinHandle<T> {
    pub(crate) inner: Arc<TaskInner<T>>,
    pub(crate) pool: std::sync::Weak<crate::pool::PoolInner>,
}

impl<T> JoinHandle<T> {
    /// The spawned task's logical context id.
    pub fn context(&self) -> ContextId {
        self.inner.context()
    }

    /// Returns `true` if the task has finished.
    pub fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    /// Blocks until the task finishes, without consuming the handle — the
    /// analog of `Task.Wait`.
    ///
    /// A wait from inside a pool worker marks that worker blocked; when
    /// every worker is blocked in joins with work still queued, the pool
    /// injects a starvation-relief worker (the .NET thread-injection
    /// analog), so acyclic task dependency graphs can never deadlock.
    /// Reports a `Join` edge to the runtime once the target completes.
    pub fn wait(&self) {
        if let Some(pool) = self.pool.upgrade() {
            pool.enter_blocked_wait();
            while !self.inner.wait_timeout(Duration::from_micros(500)) {
                pool.maybe_inject();
            }
            pool.exit_blocked_wait();
            pool.emit_join(self.inner.context());
        } else {
            // Pool is gone; the task either ran or never will. Avoid
            // hanging forever on an orphaned pending task.
            while !self.inner.wait_timeout(Duration::from_millis(10)) {
                if self.pool.upgrade().is_none() && !self.inner.is_done() {
                    panic!("joined a task whose pool was dropped before it ran");
                }
            }
        }
    }

    /// Blocks until the task finishes and returns its value — the analog of
    /// `Task.Result` (line 15–16 of Fig. 3).
    ///
    /// # Panics
    ///
    /// Resumes the task's panic if the task panicked.
    pub fn join(self) -> T {
        self.wait();
        self.inner.take()
    }

    /// Schedules `f` to run as a new task once this one completes — the
    /// `ContinueWith` / post-`await` continuation analog. The continuation
    /// happens-after the antecedent (a `Join` edge is reported before it
    /// starts), matching the `9a`/`9b` nodes of the paper's Fig. 4.
    pub fn then<U, F>(self, pool: &crate::pool::Pool, f: F) -> JoinHandle<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        pool.spawn(move || {
            let value = self.join();
            f(value)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_core::context;

    #[test]
    fn inner_run_and_take() {
        let inner = TaskInner::new(context::fresh_id());
        assert!(!inner.is_done());
        inner.run(|| 41 + 1);
        assert!(inner.is_done());
        assert_eq!(inner.take(), 42);
    }

    #[test]
    fn inner_captures_panic() {
        let inner: Arc<TaskInner<()>> = TaskInner::new(context::fresh_id());
        inner.run(|| panic!("boom"));
        assert!(inner.is_done());
        let result = panic::catch_unwind(AssertUnwindSafe(|| inner.take()));
        assert!(result.is_err(), "take must resume the task's panic");
    }

    #[test]
    fn wait_timeout_expires_when_pending() {
        let inner: Arc<TaskInner<u32>> = TaskInner::new(context::fresh_id());
        assert!(!inner.wait_timeout(Duration::from_millis(1)));
    }

    #[test]
    fn wait_timeout_wakes_on_completion() {
        let inner: Arc<TaskInner<u32>> = TaskInner::new(context::fresh_id());
        let inner2 = inner.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(2));
            inner2.run(|| 7);
        });
        assert!(inner.wait_timeout(Duration::from_secs(5)));
        t.join().expect("no panic");
        assert_eq!(inner.take(), 7);
    }
}
