//! Task-parallel substrate: the .NET TPL analog the paper's workloads use.
//!
//! The programs TSVD targets (§2.3) have three properties this crate
//! reproduces:
//!
//! 1. they dynamically create **many more tasks than threads** and dispatch
//!    them onto a small pool of background workers;
//! 2. task handles are **first-class values**: any task can join with any
//!    other task via its handle, so fork/join graphs are *not*
//!    series-parallel;
//! 3. synchronization is frequent relative to instrumented accesses.
//!
//! Every fork, join, task completion, and instrumented-lock transfer is
//! reported to the attached [`tsvd_core::Runtime`] as a
//! [`SyncEvent`](tsvd_core::SyncEvent). The TSVD strategy ignores these by
//! design; the TSVD-HB comparison variant builds its vector clocks from
//! them.
//!
//! The crate also reproduces the .NET behaviour described in §4: a runtime
//! optimization executes *fast* async functions synchronously, hiding bugs
//! during tests that mock I/O. [`Pool::set_force_async`] is the analog of
//! TSVD's instrumentation that forces all async functions to actually run
//! asynchronously.
//!
//! # Examples
//!
//! ```
//! use tsvd_tasks::Pool;
//!
//! let pool = Pool::new(4);
//! let t = pool.spawn(|| 6 * 7);
//! assert_eq!(t.join(), 42);
//! ```

#![warn(missing_docs)]

pub mod parallel;
pub mod pool;
pub mod sync;
pub mod task;

pub use parallel::{parallel_for_each, parallel_invoke};
pub use pool::Pool;
pub use sync::TsvdMutex;
pub use task::JoinHandle;
