//! The worker pool: few threads, many tasks.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};

use tsvd_core::context::{self, ContextId};
use tsvd_core::{Runtime, SyncEvent};

use crate::task::{JoinHandle, TaskInner};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Upper bound on starvation-relief workers injected per pool.
const MAX_INJECTED_WORKERS: usize = 32;

/// Shared pool state (public within the crate so blocked handles can
/// request starvation relief).
pub struct PoolInner {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    runtime: Option<Arc<Runtime>>,
    force_async: AtomicBool,
    /// Threads currently servicing the queue (initial workers + injected).
    worker_count: AtomicUsize,
    /// Threads currently parked inside a `JoinHandle::wait`.
    blocked_waiters: AtomicUsize,
    /// Starvation-relief threads injected so far.
    injected: AtomicUsize,
}

impl PoolInner {
    /// Marks the current thread as blocked in a join and, if every worker
    /// is now blocked, injects a relief worker so queued dependency tasks
    /// can still run — the analog of the .NET thread pool's starvation
    /// thread injection. Inline "helping" is deliberately *not* used: a
    /// helped task may transitively wait on the helper's own unfinished
    /// outer task, deadlocking on the helper's stack even though the task
    /// dependency graph is acyclic.
    pub fn enter_blocked_wait(&self) {
        self.blocked_waiters.fetch_add(1, Ordering::SeqCst);
        // The runtime's watchdog counts blocked workers too: a pool whose
        // every thread is blocked-or-delayed is starving, and only the
        // watchdog can cancel the delays that keep it so.
        if let Some(rt) = &self.runtime {
            rt.enter_blocked();
        }
        self.maybe_inject();
    }

    /// Clears the blocked mark set by [`PoolInner::enter_blocked_wait`].
    pub fn exit_blocked_wait(&self) {
        self.blocked_waiters.fetch_sub(1, Ordering::SeqCst);
        if let Some(rt) = &self.runtime {
            rt.exit_blocked();
        }
    }

    /// Injects a relief worker if the pool looks starved.
    pub fn maybe_inject(&self) {
        let blocked = self.blocked_waiters.load(Ordering::SeqCst);
        let workers = self.worker_count.load(Ordering::SeqCst);
        if blocked < workers || self.rx.is_empty() {
            return;
        }
        if self.injected.fetch_add(1, Ordering::SeqCst) >= MAX_INJECTED_WORKERS {
            self.injected.fetch_sub(1, Ordering::SeqCst);
            // Cap reached: last-resort inline help keeps making progress
            // (the stack-inversion risk is preferable to a guaranteed
            // stall at this point).
            if let Ok(job) = self.rx.try_recv() {
                job();
            }
            return;
        }
        self.worker_count.fetch_add(1, Ordering::SeqCst);
        let rx = self.rx.clone();
        let runtime = self.runtime.clone();
        let idx = self.injected.load(Ordering::SeqCst);
        std::thread::Builder::new()
            .name(format!("tsvd-relief-{idx}"))
            .spawn(move || {
                let _watchdog = runtime.as_ref().map(|rt| rt.register_worker());
                while let Ok(job) = rx.recv() {
                    job();
                }
                // Deliver any batched observations before the thread dies.
                if let Some(rt) = &runtime {
                    rt.flush_thread_events();
                }
            })
            .expect("spawn relief worker");
    }

    /// Reports a `Join` edge from the current context to `target`.
    pub fn emit_join(&self, target: ContextId) {
        if let Some(rt) = &self.runtime {
            rt.on_sync(SyncEvent::Join {
                waiter: context::current(),
                target,
            });
        }
    }

    fn emit(&self, event: SyncEvent) {
        if let Some(rt) = &self.runtime {
            rt.on_sync(event);
        }
    }
}

/// A fixed-size worker pool executing first-class tasks.
///
/// The pool emits fork/join/end [`SyncEvent`]s to its attached runtime; a
/// pool created with [`Pool::new`] has no runtime and emits nothing.
pub struct Pool {
    inner: Arc<PoolInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `threads` workers with no attached runtime.
    pub fn new(threads: usize) -> Pool {
        Self::build(threads, None)
    }

    /// Creates a pool whose synchronization events flow to `runtime`.
    pub fn with_runtime(threads: usize, runtime: Arc<Runtime>) -> Pool {
        Self::build(threads, Some(runtime))
    }

    fn build(threads: usize, runtime: Option<Arc<Runtime>>) -> Pool {
        let (tx, rx) = unbounded::<Job>();
        let inner = Arc::new(PoolInner {
            tx,
            rx: rx.clone(),
            runtime,
            force_async: AtomicBool::new(true),
            worker_count: AtomicUsize::new(threads.max(1)),
            blocked_waiters: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        });
        let workers = (0..threads.max(1))
            .map(|i| {
                let rx = rx.clone();
                let runtime = inner.runtime.clone();
                std::thread::Builder::new()
                    .name(format!("tsvd-worker-{i}"))
                    .spawn(move || {
                        // Register with the runtime's delay watchdog for the
                        // thread's lifetime (RAII deregisters on exit).
                        let _watchdog = runtime.as_ref().map(|rt| rt.register_worker());
                        // Drains until every sender (pool handle) is gone.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                        // Deliver any batched observations before the worker
                        // exits (TLS teardown would also flush, but doing it
                        // here keeps the runtime borrowable and ordered).
                        if let Some(rt) = &runtime {
                            rt.flush_thread_events();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, workers }
    }

    /// Controls the §4 forced-async behaviour. When `true` (the default —
    /// TSVD's instrumentation), every task is dispatched to a worker. When
    /// `false` (the plain .NET optimization), tasks spawned with
    /// [`Pool::spawn_fast`] run synchronously in the caller, which is what
    /// hides bugs in tests that mock I/O.
    pub fn set_force_async(&self, force: bool) {
        self.inner.force_async.store(force, Ordering::Relaxed);
    }

    /// Returns the current forced-async setting.
    pub fn force_async(&self) -> bool {
        self.inner.force_async.load(Ordering::Relaxed)
    }

    /// Spawns `body` as a new task — the analog of `Task.Run` (Fig. 3,
    /// line 6).
    pub fn spawn<T, F>(&self, body: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        self.spawn_inner(body, /* inline: */ false)
    }

    /// Spawns a *fast* task (e.g. a mocked I/O call). Under
    /// `force_async = false` it runs synchronously in the caller, modelling
    /// the .NET fast-path optimization; under the default it behaves like
    /// [`Pool::spawn`].
    pub fn spawn_fast<T, F>(&self, body: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let inline = !self.force_async();
        self.spawn_inner(body, inline)
    }

    fn spawn_inner<T, F>(&self, body: F, inline: bool) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let child = context::fresh_id();
        self.inner.emit(SyncEvent::Fork {
            parent: context::current(),
            child,
        });
        let task = TaskInner::new(child);
        let handle = JoinHandle {
            inner: task.clone(),
            pool: Arc::downgrade(&self.inner),
        };
        let pool = self.inner.clone();
        let job = move || {
            let _guard = context::enter(child);
            // The TaskEnd edge is published before waiters can observe the
            // completion, so a joiner always sees the final clock.
            task.run_with_hook(body, || pool.emit(SyncEvent::TaskEnd { context: child }));
        };
        if inline {
            // The .NET fast path: same thread, sequential — the task still
            // gets its own context id, but can never overlap its parent.
            job();
        } else {
            self.inner
                .tx
                .send(Box::new(job))
                .expect("pool queue closed while pool alive");
        }
        handle
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }
}

// No explicit Drop: when the last `Arc<PoolInner>` goes away (queued jobs
// hold transient strong references until they run), its `Sender` drops, the
// channel disconnects, and every worker's `recv` loop ends. Workers detach
// rather than being joined, so dropping a pool never blocks.

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use tsvd_core::TsvdConfig;

    #[test]
    fn spawn_runs_on_worker() {
        let pool = Pool::new(2);
        let t = pool.spawn(|| std::thread::current().name().map(str::to_owned));
        let name = t.join().unwrap_or_default();
        assert!(name.starts_with("tsvd-worker-"), "ran on {name}");
    }

    #[test]
    fn many_more_tasks_than_threads() {
        let pool = Pool::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..200)
            .map(|_| {
                let c = counter.clone();
                pool.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn tasks_get_distinct_contexts() {
        let pool = Pool::new(2);
        let a = pool.spawn(tsvd_core::context::current);
        let b = pool.spawn(tsvd_core::context::current);
        let (ca, cb) = (a.join(), b.join());
        assert_ne!(ca, cb);
    }

    #[test]
    fn handle_context_matches_running_context() {
        let pool = Pool::new(1);
        let t = pool.spawn(tsvd_core::context::current);
        let expected = t.context();
        assert_eq!(t.join(), expected);
    }

    #[test]
    fn nested_spawn_and_join_does_not_deadlock() {
        // A task on a 1-thread pool waits for a child task: the helping
        // logic must run the child inline instead of deadlocking.
        let pool = Arc::new(Pool::new(1));
        let p2 = pool.clone();
        let t = pool.spawn(move || {
            let child = p2.spawn(|| 21);
            child.join() * 2
        });
        assert_eq!(t.join(), 42);
    }

    #[test]
    fn join_with_any_task_via_handle() {
        // Non-series-parallel joining: a sibling joins another sibling.
        let pool = Arc::new(Pool::new(2));
        let a = pool.spawn(|| 10);
        let a_inner = a.inner.clone();
        let a_pool = a.pool.clone();
        let b = pool.spawn(move || {
            let a_again = JoinHandle {
                inner: a_inner,
                pool: a_pool,
            };
            a_again.join() + 1
        });
        assert_eq!(b.join(), 11);
        a.wait();
    }

    #[test]
    fn fork_and_end_events_reach_runtime() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let pool = Pool::with_runtime(2, rt.clone());
        let t = pool.spawn(|| ());
        t.join();
        // Fork + TaskEnd + Join = at least 3 events.
        assert!(
            rt.stats().sync_events() >= 3,
            "{}",
            rt.stats().sync_events()
        );
    }

    #[test]
    fn spawn_fast_inlines_without_force_async() {
        let pool = Pool::new(2);
        pool.set_force_async(false);
        let here = std::thread::current().id();
        let t = pool.spawn_fast(move || std::thread::current().id() == here);
        assert!(t.is_done(), "inline task completes before spawn returns");
        assert!(t.join(), "fast task ran synchronously on the caller");
    }

    #[test]
    fn spawn_fast_dispatches_under_force_async() {
        let pool = Pool::new(2);
        assert!(pool.force_async(), "forced async is the default");
        let here = std::thread::current().id();
        let t = pool.spawn_fast(move || std::thread::current().id() == here);
        assert!(!t.join(), "forced-async fast task must run on a worker");
    }

    #[test]
    fn chained_continuations_do_not_starve_a_saturated_pool() {
        // Regression: continuation tasks (which block on their antecedents)
        // can occupy every worker while the antecedents sit behind them in
        // the queue. Thread injection must keep the graph progressing;
        // inline "helping" deadlocked here (a helped task waited on the
        // helper's own unfinished outer frame).
        let pool = Pool::new(2);
        let mut finals = Vec::new();
        for i in 0..12u64 {
            let t = pool
                .spawn(move || i)
                .then(&pool, |x| x + 1)
                .then(&pool, |x| x * 2);
            finals.push(t);
        }
        let total: u64 = finals.into_iter().map(|t| t.join()).sum();
        assert_eq!(total, (0..12u64).map(|i| (i + 1) * 2).sum::<u64>());
    }

    #[test]
    fn then_chains_continuations() {
        let pool = Pool::new(2);
        let result = pool
            .spawn(|| 10)
            .then(&pool, |x| x + 1)
            .then(&pool, |x| x * 2)
            .join();
        assert_eq!(result, 22);
    }

    #[test]
    fn then_reports_join_edge_before_continuation() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let pool = Pool::with_runtime(1, rt.clone());
        let t = pool.spawn(|| 1).then(&pool, |x| x + 1);
        assert_eq!(t.join(), 2);
        // 2 forks + 2 ends + ≥2 joins (continuation's internal join + ours).
        assert!(
            rt.stats().sync_events() >= 6,
            "{}",
            rt.stats().sync_events()
        );
    }

    #[test]
    fn workers_register_with_the_runtime_watchdog() {
        let rt = Runtime::noop(TsvdConfig::for_testing());
        let pool = Pool::with_runtime(3, rt.clone());
        // Worker registration happens as the threads start up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while rt.watchdog().workers() < 3 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(rt.watchdog().workers(), 3);
        // Tasks run on registered worker threads.
        let t = pool.spawn(tsvd_core::watchdog::is_worker_thread);
        assert!(t.join(), "pool task must run on a registered worker");
        assert!(
            !tsvd_core::watchdog::is_worker_thread(),
            "the test thread itself is not a worker"
        );
        drop(pool);
        while rt.watchdog().workers() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(rt.watchdog().workers(), 0, "RAII must deregister workers");
    }

    #[test]
    fn panicking_task_propagates_on_join() {
        let pool = Pool::new(1);
        let t: JoinHandle<()> = pool.spawn(|| panic!("task boom"));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.join()));
        assert!(result.is_err());
        // The worker must survive the panic and run further tasks.
        let t2 = pool.spawn(|| 5);
        assert_eq!(t2.join(), 5);
    }
}
