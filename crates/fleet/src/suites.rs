//! Suite specs: how a fleet worker rebuilds its module list.
//!
//! Workers are separate processes, so modules cannot be shipped over the
//! socket (their bodies are closures). Instead the daemon sends only a
//! *spec string* and a module index; every process rebuilds the same
//! deterministic suite from the spec — the suite generator guarantees
//! same-config-same-modules — and runs the one module it was assigned.

use std::path::PathBuf;
use std::time::Duration;

use tsvd_workloads::module::{Expectation, Module};
use tsvd_workloads::suite::{build_suite, SuiteConfig};

/// A parseable, process-independent description of a module list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteSpec {
    /// The standard generated benchmark suite: `std:<modules>:<seed>`.
    Std {
        /// Module count.
        modules: usize,
        /// Suite seed.
        seed: u64,
    },
    /// Fault-injection fixture, `flaky:<modules>:<dir>`: every module
    /// panics on its first execution (before any marker file exists in
    /// `dir`) and completes on retries — exercises panic-retry accounting
    /// across processes.
    Flaky {
        /// Module count.
        modules: usize,
        /// Marker directory recording which modules already ran once.
        dir: PathBuf,
    },
    /// Fault-injection fixture, `sleepy:<modules>:<ms>:<dir>`: every module
    /// sleeps `ms` milliseconds on its first execution (blowing any shorter
    /// deadline, so the outcome is `timed_out`) and completes instantly on
    /// retries — exercises timeout-retry accounting.
    Sleepy {
        /// Module count.
        modules: usize,
        /// First-execution sleep, milliseconds.
        ms: u64,
        /// Marker directory recording which modules already ran once.
        dir: PathBuf,
    },
}

impl SuiteSpec {
    /// Parses the textual form used on the command line and the wire.
    pub fn parse(text: &str) -> Result<SuiteSpec, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let bad = |why: &str| format!("bad suite spec `{text}`: {why}");
        match parts.as_slice() {
            ["std", n, seed] => Ok(SuiteSpec::Std {
                modules: n.parse().map_err(|_| bad("module count"))?,
                seed: seed.parse().map_err(|_| bad("seed"))?,
            }),
            ["flaky", n, dir @ ..] if !dir.is_empty() => Ok(SuiteSpec::Flaky {
                modules: n.parse().map_err(|_| bad("module count"))?,
                dir: PathBuf::from(dir.join(":")),
            }),
            ["sleepy", n, ms, dir @ ..] if !dir.is_empty() => Ok(SuiteSpec::Sleepy {
                modules: n.parse().map_err(|_| bad("module count"))?,
                ms: ms.parse().map_err(|_| bad("sleep ms"))?,
                dir: PathBuf::from(dir.join(":")),
            }),
            _ => Err(bad(
                "expected std:<n>:<seed>, flaky:<n>:<dir>, or sleepy:<n>:<ms>:<dir>",
            )),
        }
    }

    /// Renders back to the textual form (`parse` ∘ `to_arg` = identity).
    pub fn to_arg(&self) -> String {
        match self {
            SuiteSpec::Std { modules, seed } => format!("std:{modules}:{seed}"),
            SuiteSpec::Flaky { modules, dir } => format!("flaky:{modules}:{}", dir.display()),
            SuiteSpec::Sleepy { modules, ms, dir } => {
                format!("sleepy:{modules}:{ms}:{}", dir.display())
            }
        }
    }

    /// Number of modules in the suite.
    pub fn modules(&self) -> usize {
        match self {
            SuiteSpec::Std { modules, .. }
            | SuiteSpec::Flaky { modules, .. }
            | SuiteSpec::Sleepy { modules, .. } => *modules,
        }
    }

    /// Builds the full deterministic module list.
    pub fn build(&self) -> Vec<Module> {
        match self {
            SuiteSpec::Std { modules, seed } => build_suite(SuiteConfig {
                modules: *modules,
                seed: *seed,
            }),
            SuiteSpec::Flaky { modules, dir } => (0..*modules)
                .map(|i| first_attempt_fixture(i, dir.clone(), FirstAttempt::Panic))
                .collect(),
            SuiteSpec::Sleepy { modules, ms, dir } => {
                let sleep = Duration::from_millis(*ms);
                (0..*modules)
                    .map(|i| first_attempt_fixture(i, dir.clone(), FirstAttempt::Sleep(sleep)))
                    .collect()
            }
        }
    }
}

enum FirstAttempt {
    Panic,
    Sleep(Duration),
}

/// A module that misbehaves exactly once. The "has this module run before"
/// bit must survive the worker process dying, so it lives on disk as a
/// marker file in the shared directory.
fn first_attempt_fixture(index: usize, dir: PathBuf, mode: FirstAttempt) -> Module {
    let name = match mode {
        FirstAttempt::Panic => format!("flaky{index:04}"),
        FirstAttempt::Sleep(_) => format!("sleepy{index:04}"),
    };
    Module::new(name, 1, Expectation::Clean, false, "List", move |_ctx| {
        let marker = dir.join(format!("ran_{index:04}.marker"));
        if !marker.exists() {
            // Marker before misbehaving: the *next* execution must succeed
            // even though this one never returns normally.
            let _ = std::fs::create_dir_all(&dir);
            let _ = std::fs::write(&marker, b"1");
            match mode {
                FirstAttempt::Panic => panic!("flaky module {index} first execution"),
                FirstAttempt::Sleep(d) => std::thread::sleep(d),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_text() {
        let specs = [
            SuiteSpec::Std {
                modules: 100,
                seed: 7,
            },
            SuiteSpec::Flaky {
                modules: 3,
                dir: PathBuf::from("/tmp/markers"),
            },
            SuiteSpec::Sleepy {
                modules: 2,
                ms: 250,
                dir: PathBuf::from("/tmp/markers"),
            },
        ];
        for spec in specs {
            assert_eq!(SuiteSpec::parse(&spec.to_arg()).unwrap(), spec);
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(SuiteSpec::parse("std:abc:1").is_err());
        assert!(SuiteSpec::parse("std:5").is_err());
        assert!(SuiteSpec::parse("martian:5:1").is_err());
        assert!(SuiteSpec::parse("flaky:5").is_err());
    }

    #[test]
    fn std_spec_builds_the_same_suite_in_any_process() {
        let spec = SuiteSpec::parse("std:8:42").unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.len(), 8);
        let names = |s: &[Module]| s.iter().map(|m| m.name().to_owned()).collect::<Vec<_>>();
        assert_eq!(names(&a), names(&b));
    }

    #[test]
    fn flaky_module_panics_once_then_completes() {
        let dir = std::env::temp_dir().join(format!("tsvd_flaky_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let spec = SuiteSpec::Flaky {
            modules: 1,
            dir: dir.clone(),
        };
        let module = spec.build().remove(0);
        let rt = tsvd_core::Runtime::noop(tsvd_core::TsvdConfig::for_testing());
        let ctx = tsvd_workloads::module::ModuleCtx::new(rt, 1);
        let first = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| module.run(&ctx)));
        assert!(first.is_err(), "first execution must panic");
        let second = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| module.run(&ctx)));
        assert!(second.is_ok(), "second execution must complete");
        std::fs::remove_dir_all(&dir).ok();
    }
}
