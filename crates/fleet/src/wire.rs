//! Length-prefixed JSONL wire protocol between the fleet daemon and workers.
//!
//! Every frame is `XXXXXXXX\n<payload>` where the 8 hex digits give the
//! payload byte length and the payload is one JSON object terminated by a
//! newline — JSONL framed twice, so a receiver can both stream-parse and
//! detect torn writes: a short read against the declared length means the
//! peer died mid-frame, and the partial payload is discarded rather than
//! misparsed. The payload grows from the durable-sink format
//! ([`ViolationRecord`] rides verbatim inside [`ViolationMsg`]) and every
//! frame carries a `v` schema field so old daemons reject frames from newer
//! workers instead of guessing ([`WIRE_SCHEMA_VERSION`]).

use std::io::{Read, Write};

use serde::{Deserialize as _, Serialize as _, Value};
use tsvd_core::sink::ViolationRecord;
use tsvd_core::trap_file::TrapFileData;

/// Version stamped in every frame's `v` field. Readers accept frames at or
/// below their own version (new fields have back-compat defaults) and
/// reject higher ones.
pub const WIRE_SCHEMA_VERSION: u32 = 1;

/// Upper bound on a single frame's payload; a corrupted length prefix must
/// not make the reader allocate gigabytes.
const MAX_FRAME_BYTES: usize = 1 << 24;

/// Worker → daemon: first frame on a fresh connection.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Hello {
    /// Worker slot index this process was spawned for.
    pub worker: usize,
    /// Spawn generation of the slot (increments on every respawn), so the
    /// daemon can ignore frames from a stale process it already killed.
    pub incarnation: u64,
    /// OS process id, for supervision logs.
    pub pid: u32,
}

/// Daemon → worker: run one module.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Assign {
    /// Suite wave (the cross-process analogue of a `run_suite` run index).
    pub wave: usize,
    /// Module index within the suite.
    pub index: usize,
    /// Execution attempt for this (wave, module), 0-based; retries after
    /// worker deaths or failed outcomes increment it.
    pub attempt: u32,
    /// Merged fleet-wide trap file (confidence-ranked dangerous pairs) to
    /// pre-arm before the run.
    pub traps: TrapFileData,
}

/// Worker → daemon: one caught violation, streamed before [`Done`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ViolationMsg {
    /// Wave the catch happened in.
    pub wave: usize,
    /// Module that caught it.
    pub index: usize,
    /// The durable-sink record, schema field included.
    pub record: ViolationRecord,
}

/// Worker → daemon: a module execution finished (in any outcome).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Done {
    /// Wave of the execution.
    pub wave: usize,
    /// Module index.
    pub index: usize,
    /// Attempt number this result belongs to.
    pub attempt: u32,
    /// [`crate::runner::ModuleOutcome`] as text (`completed` / `panicked` /
    /// `timed_out`).
    pub outcome: String,
    /// Wall-clock nanoseconds of the execution.
    pub wall_ns: u64,
    /// Delays injected during the execution.
    pub delays: u64,
    /// `OnCall`s observed.
    pub on_calls: u64,
    /// Dangerous pairs in the trap-file delta (near-miss summary).
    pub dangerous_pairs: u64,
    /// Trap-file delta learned by this execution, if any.
    pub traps: Option<TrapFileData>,
    /// Path of the per-execution durable sink the worker wrote.
    pub sink: String,
}

/// One protocol frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Worker introduction.
    Hello(Hello),
    /// Module assignment.
    Assign(Assign),
    /// Worker liveness beacon (sent every heartbeat interval).
    Heartbeat,
    /// A caught violation.
    Violation(ViolationMsg),
    /// Execution result.
    Done(Done),
    /// Daemon → worker: drain and exit cleanly.
    Shutdown,
}

/// Wraps a payload struct's object map with the `v`/`kind` envelope.
pub(crate) fn envelope(kind: &str, body: Value) -> Value {
    let mut map = match body {
        Value::Object(m) => m,
        _ => std::collections::BTreeMap::new(),
    };
    map.insert("v".to_string(), Value::UInt(u64::from(WIRE_SCHEMA_VERSION)));
    map.insert("kind".to_string(), Value::Str(kind.to_string()));
    Value::Object(map)
}

/// Reads the `v`/`kind` envelope back; errors on unsupported versions.
pub(crate) fn open_envelope<'v>(
    value: &'v Value,
    key: &str,
    max_version: u32,
) -> Result<(&'v str, &'v Value), String> {
    let map = value.as_object().ok_or("frame is not a JSON object")?;
    let version = match map.get("v") {
        Some(Value::UInt(n)) => *n,
        _ => return Err("frame has no schema version".to_string()),
    };
    if version > u64::from(max_version) {
        return Err(format!(
            "frame schema v{version} is newer than supported v{max_version}"
        ));
    }
    match map.get(key) {
        Some(Value::Str(kind)) => Ok((kind.as_str(), value)),
        _ => Err(format!("frame has no `{key}` tag")),
    }
}

impl Frame {
    /// Renders the frame as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let value = match self {
            Frame::Hello(p) => envelope("hello", p.to_value()),
            Frame::Assign(p) => envelope("assign", p.to_value()),
            Frame::Heartbeat => envelope("heartbeat", Value::Object(Default::default())),
            Frame::Violation(p) => envelope("violation", p.to_value()),
            Frame::Done(p) => envelope("done", p.to_value()),
            Frame::Shutdown => envelope("shutdown", Value::Object(Default::default())),
        };
        serde_json::to_string(&value).unwrap_or_default()
    }

    /// Parses a frame from one JSON line.
    pub fn from_json(text: &str) -> Result<Frame, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let (kind, body) = open_envelope(&value, "kind", WIRE_SCHEMA_VERSION)?;
        let frame = match kind {
            "hello" => Frame::Hello(Hello::from_value(body).map_err(|e| e.to_string())?),
            "assign" => Frame::Assign(Assign::from_value(body).map_err(|e| e.to_string())?),
            "heartbeat" => Frame::Heartbeat,
            "violation" => {
                Frame::Violation(ViolationMsg::from_value(body).map_err(|e| e.to_string())?)
            }
            "done" => Frame::Done(Done::from_value(body).map_err(|e| e.to_string())?),
            "shutdown" => Frame::Shutdown,
            other => return Err(format!("unknown frame kind `{other}`")),
        };
        Ok(frame)
    }
}

fn invalid(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// Writes one frame. The header and payload go out in a single `write_all`
/// so an uninterrupted writer never interleaves with itself; a writer dying
/// mid-call leaves a torn frame the reader detects via the length prefix.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let mut payload = frame.to_json();
    payload.push('\n');
    let msg = format!("{:08x}\n{payload}", payload.len());
    w.write_all(msg.as_bytes())
}

/// Deliberately writes half a frame and stops — the chaos harness's torn
/// socket write. The declared length exceeds what ever arrives, so the
/// reader's `read_exact` fails when the writer then dies.
pub fn write_torn_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let mut payload = frame.to_json();
    payload.push('\n');
    let torn = &payload[..payload.len() / 2];
    let msg = format!("{:08x}\n{torn}", payload.len());
    w.write_all(msg.as_bytes())?;
    w.flush()
}

/// Reads one frame; any short read, bad length, or unparseable payload is
/// an error (the caller treats the connection as dead).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Frame> {
    let mut head = [0u8; 9];
    r.read_exact(&mut head)?;
    if head[8] != b'\n' {
        return Err(invalid("frame header missing newline"));
    }
    let text = std::str::from_utf8(&head[..8]).map_err(invalid)?;
    let len = usize::from_str_radix(text, 16).map_err(invalid)?;
    if len == 0 || len > MAX_FRAME_BYTES {
        return Err(invalid(format!("unreasonable frame length {len}")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let json = std::str::from_utf8(&buf).map_err(invalid)?;
    Frame::from_json(json.trim_end()).map_err(invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> ViolationRecord {
        ViolationRecord {
            schema: tsvd_core::VIOLATION_SCHEMA_VERSION,
            location_trapped: "a.rs:1:1".into(),
            location_hitter: "b.rs:2:2".into(),
            op_trapped: "x.write".into(),
            op_hitter: "x.read".into(),
            obj: 7,
            time_ns: 42,
            read_write: true,
        }
    }

    #[test]
    fn frames_round_trip_through_the_stream() {
        let frames = vec![
            Frame::Hello(Hello {
                worker: 3,
                incarnation: 2,
                pid: 999,
            }),
            Frame::Assign(Assign {
                wave: 1,
                index: 40,
                attempt: 2,
                traps: TrapFileData::default(),
            }),
            Frame::Heartbeat,
            Frame::Violation(ViolationMsg {
                wave: 1,
                index: 40,
                record: record(),
            }),
            Frame::Done(Done {
                wave: 1,
                index: 40,
                attempt: 2,
                outcome: "completed".into(),
                wall_ns: 123,
                delays: 4,
                on_calls: 56,
                dangerous_pairs: 1,
                traps: None,
                sink: "/tmp/x.jsonl".into(),
            }),
            Frame::Shutdown,
        ];
        let mut buf = Vec::new();
        for f in &frames {
            write_frame(&mut buf, f).expect("write");
        }
        let mut cursor = std::io::Cursor::new(buf);
        for f in &frames {
            let back = read_frame(&mut cursor).expect("read");
            assert_eq!(&back, f);
        }
    }

    #[test]
    fn torn_frame_is_a_read_error_not_a_misparse() {
        let mut buf = Vec::new();
        write_torn_frame(
            &mut buf,
            &Frame::Violation(ViolationMsg {
                wave: 0,
                index: 1,
                record: record(),
            }),
        )
        .expect("write torn");
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn newer_schema_versions_are_rejected() {
        let json = r#"{"v":99,"kind":"heartbeat"}"#;
        let err = Frame::from_json(json).unwrap_err();
        assert!(err.contains("newer"), "got: {err}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(Frame::from_json(r#"{"v":1,"kind":"martian"}"#).is_err());
    }

    #[test]
    fn garbage_length_prefix_is_rejected() {
        let mut cursor = std::io::Cursor::new(b"zzzzzzzz\n{}".to_vec());
        assert!(read_frame(&mut cursor).is_err());
        let mut cursor = std::io::Cursor::new(b"7fffffff\n{}".to_vec());
        assert!(read_frame(&mut cursor).is_err());
    }
}
