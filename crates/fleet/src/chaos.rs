//! Deterministic fault injection for fleet runs (`repro fleet --chaos`).
//!
//! Faults are decided purely from `(plan seed, worker slot, incarnation,
//! assignment ordinal)` through a stateless SplitMix64 mix, so a chaos run
//! is reproducible from its seed alone: the same worker incarnation working
//! through the same assignments misbehaves at the same points every time,
//! regardless of scheduling races in the daemon. The plan travels to worker
//! processes in the `TSVD_FLEET_CHAOS` environment variable.

use tsvd_core::rng::mix;

/// Environment variable carrying the plan to worker processes.
pub const CHAOS_ENV: &str = "TSVD_FLEET_CHAOS";

/// What a worker does to itself on a chaos-selected assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDecision {
    /// Run the module normally.
    None,
    /// Abort the process mid-module — the supervisor sees EOF on the socket
    /// and must harvest the execution's sink and re-queue the module.
    Kill,
    /// Stop heartbeating and wedge — the supervisor's hang timeout must
    /// fire, kill the process, and re-queue.
    Stall,
    /// Write half a `Done` frame and abort — the reader must detect the
    /// torn frame instead of misparsing it.
    Torn,
}

/// A fleet chaos plan: per-assignment fault probabilities in per-mille.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Plan seed (also the reproduction handle).
    pub seed: u64,
    /// Probability of [`FaultDecision::Kill`], ‰.
    pub kill_per_mille: u16,
    /// Probability of [`FaultDecision::Stall`], ‰.
    pub stall_per_mille: u16,
    /// Probability of [`FaultDecision::Torn`], ‰.
    pub torn_per_mille: u16,
    /// How long a stalled worker wedges before exiting, milliseconds.
    pub stall_ms: u64,
}

impl ChaosPlan {
    /// A moderate default: per assignment, 8 % kill, 2 % stall, 4 % torn.
    pub fn standard(seed: u64) -> ChaosPlan {
        ChaosPlan {
            seed,
            kill_per_mille: 80,
            stall_per_mille: 20,
            torn_per_mille: 40,
            stall_ms: 2_000,
        }
    }

    /// Renders as the `seed:kill:stall:torn:stall_ms` env-var form.
    pub fn to_env(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.seed,
            self.kill_per_mille,
            self.stall_per_mille,
            self.torn_per_mille,
            self.stall_ms
        )
    }

    /// Parses the env-var form.
    pub fn from_env(text: &str) -> Result<ChaosPlan, String> {
        let parts: Vec<&str> = text.split(':').collect();
        let [seed, kill, stall, torn, stall_ms] = parts.as_slice() else {
            return Err(format!("bad chaos plan `{text}`"));
        };
        let bad = |what: &str| format!("bad chaos plan `{text}`: unparseable {what}");
        Ok(ChaosPlan {
            seed: seed.parse().map_err(|_| bad("seed"))?,
            kill_per_mille: kill.parse().map_err(|_| bad("kill"))?,
            stall_per_mille: stall.parse().map_err(|_| bad("stall"))?,
            torn_per_mille: torn.parse().map_err(|_| bad("torn"))?,
            stall_ms: stall_ms.parse().map_err(|_| bad("stall_ms"))?,
        })
    }

    /// Reads the plan from [`CHAOS_ENV`], if set.
    pub fn from_process_env() -> Option<ChaosPlan> {
        let text = std::env::var(CHAOS_ENV).ok()?;
        match ChaosPlan::from_env(&text) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("tsvd-fleet: ignoring {CHAOS_ENV}: {e}");
                None
            }
        }
    }

    /// The deterministic fault decision for one assignment: `ordinal` is
    /// the count of assignments this worker incarnation has accepted so
    /// far. Probability bands are stacked, so one uniform draw decides.
    pub fn decide(&self, worker: usize, incarnation: u64, ordinal: u64) -> FaultDecision {
        let x = mix(self.seed
            ^ mix((worker as u64).wrapping_add(1))
            ^ mix(incarnation.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ ordinal);
        let draw = (x % 1000) as u16;
        let kill_end = self.kill_per_mille;
        let stall_end = kill_end + self.stall_per_mille;
        let torn_end = stall_end + self.torn_per_mille;
        if draw < kill_end {
            FaultDecision::Kill
        } else if draw < stall_end {
            FaultDecision::Stall
        } else if draw < torn_end {
            FaultDecision::Torn
        } else {
            FaultDecision::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_round_trips_through_env_form() {
        let plan = ChaosPlan::standard(1234);
        assert_eq!(ChaosPlan::from_env(&plan.to_env()).unwrap(), plan);
        assert!(ChaosPlan::from_env("1:2:3").is_err());
        assert!(ChaosPlan::from_env("a:b:c:d:e").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_vary_by_inputs() {
        let plan = ChaosPlan::standard(7);
        for worker in 0..4 {
            for ordinal in 0..50 {
                assert_eq!(
                    plan.decide(worker, 0, ordinal),
                    plan.decide(worker, 0, ordinal)
                );
            }
        }
        // Across a few hundred draws the standard plan must actually
        // trigger each fault type (it is a probabilistic plan, but the
        // draws are fixed by the seed, so this is a stable assertion).
        let mut kinds = std::collections::HashSet::new();
        for worker in 0..8 {
            for inc in 0..4 {
                for ordinal in 0..32 {
                    kinds.insert(plan.decide(worker, inc, ordinal));
                }
            }
        }
        assert!(kinds.contains(&FaultDecision::None));
        assert!(kinds.contains(&FaultDecision::Kill));
        assert!(kinds.contains(&FaultDecision::Stall));
        assert!(kinds.contains(&FaultDecision::Torn));
    }

    #[test]
    fn zero_plan_never_faults() {
        let plan = ChaosPlan {
            seed: 9,
            kill_per_mille: 0,
            stall_per_mille: 0,
            torn_per_mille: 0,
            stall_ms: 0,
        };
        for ordinal in 0..200 {
            assert_eq!(plan.decide(0, 0, ordinal), FaultDecision::None);
        }
    }
}
