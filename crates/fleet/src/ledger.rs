//! The fleet's write-ahead ledger: every scheduling decision and result as
//! one JSONL line.
//!
//! The daemon appends an event *before* acting on it (assignment before the
//! frame is sent, violation before it is counted, completion before the
//! module leaves the queue), so a daemon killed at any instant leaves a
//! ledger from which `repro fleet --resume` reconstructs the exact run
//! state: completed modules are never re-run, deduplicated violations are
//! never double-counted, in-flight modules are re-queued. The format shares
//! the durable sink's discipline — append-only JSONL, one `write` per
//! event, torn-tail-tolerant loading — and the merged trap file that rides
//! alongside is saved with [`tsvd_core::TrapFileData::save`]'s temp+rename
//! pattern.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use parking_lot::Mutex;
use serde::{Deserialize as _, Serialize as _, Value};
use tsvd_core::sink::{normalize_pair, DurableSink, ViolationRecord};

use crate::wire::{envelope, open_envelope};

/// Ledger format version (the `v` field of every event line).
pub const LEDGER_SCHEMA_VERSION: u32 = 1;

/// Run parameters, recorded once as the first event so `--resume` needs
/// nothing but the ledger path.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StartEvent {
    /// Suite spec string (see [`crate::suites::SuiteSpec`]).
    pub suite: String,
    /// Module count of the suite.
    pub modules: usize,
    /// Number of waves (cross-process analogue of `RunOptions::runs`).
    pub waves: usize,
    /// Worker processes the run was started with.
    pub workers: usize,
    /// Pool threads per module.
    pub threads: usize,
    /// Detector time-constant scale factor.
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Per-module wall-clock deadline, milliseconds.
    pub deadline_ms: u64,
    /// Worker deaths a module may cause before quarantine.
    pub quarantine_kill_limit: u32,
    /// Executions a module may burn on panicked/timed-out outcomes.
    pub module_attempt_limit: u32,
    /// Directory holding the per-execution worker sinks.
    pub sink_dir: PathBuf,
    /// Chaos plan (env-string form) if fault injection was on.
    #[serde(default)]
    pub chaos: Option<String>,
}

/// A module was handed to a worker.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AssignEvent {
    /// Wave of the assignment.
    pub wave: usize,
    /// Module index.
    pub index: usize,
    /// Worker slot it went to.
    pub worker: usize,
    /// That slot's incarnation.
    pub incarnation: u64,
    /// Attempt number (0-based).
    pub attempt: u32,
}

/// A violation new to the run (deduplicated by module × location pair).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ViolationEvent {
    /// Module that caught it.
    pub index: usize,
    /// Lexicographically smaller rendered location.
    pub pair_a: String,
    /// Lexicographically larger rendered location.
    pub pair_b: String,
    /// The full sink record.
    pub record: ViolationRecord,
}

/// A module execution reached a final outcome.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DoneEvent {
    /// Wave of the execution.
    pub wave: usize,
    /// Module index.
    pub index: usize,
    /// Worker that ran it.
    pub worker: usize,
    /// Attempt that produced the final outcome.
    pub attempt: u32,
    /// `completed` / `panicked` / `timed_out`.
    pub outcome: String,
    /// Wall-clock nanoseconds of the counted execution only.
    pub wall_ns: u64,
    /// Delays injected in the counted execution.
    pub delays: u64,
    /// `OnCall`s in the counted execution.
    pub on_calls: u64,
}

/// A module execution will be re-run (worker death or failed outcome).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetryEvent {
    /// Wave being retried.
    pub wave: usize,
    /// Module index.
    pub index: usize,
    /// The attempt that failed.
    pub attempt: u32,
    /// Why (`worker death: ...`, `outcome panicked`, ...).
    pub reason: String,
}

/// A module was poisoned after killing too many workers.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QuarantineEvent {
    /// Module index.
    pub index: usize,
    /// Worker deaths it caused.
    pub kills: u32,
}

/// A worker process died or was killed by the supervisor.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeathEvent {
    /// Worker slot.
    pub worker: usize,
    /// Incarnation that died.
    pub incarnation: u64,
    /// What the supervisor observed.
    pub reason: String,
}

/// The run resolved every module of every wave.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FinishEvent {
    /// Module executions recorded done.
    pub completed: usize,
    /// Modules quarantined.
    pub quarantined: usize,
}

/// One ledger line.
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerEvent {
    /// Run parameters (first line).
    Start(StartEvent),
    /// Module handed out.
    Assign(AssignEvent),
    /// New deduplicated violation.
    Violation(ViolationEvent),
    /// Final module outcome.
    Done(DoneEvent),
    /// Re-queue decision.
    Retry(RetryEvent),
    /// Module poisoned.
    Quarantine(QuarantineEvent),
    /// Worker death.
    Death(DeathEvent),
    /// Clean end of run.
    Finish(FinishEvent),
}

impl LedgerEvent {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let value = match self {
            LedgerEvent::Start(p) => envelope_ev("start", p.to_value()),
            LedgerEvent::Assign(p) => envelope_ev("assign", p.to_value()),
            LedgerEvent::Violation(p) => envelope_ev("violation", p.to_value()),
            LedgerEvent::Done(p) => envelope_ev("done", p.to_value()),
            LedgerEvent::Retry(p) => envelope_ev("retry", p.to_value()),
            LedgerEvent::Quarantine(p) => envelope_ev("quarantine", p.to_value()),
            LedgerEvent::Death(p) => envelope_ev("death", p.to_value()),
            LedgerEvent::Finish(p) => envelope_ev("finish", p.to_value()),
        };
        serde_json::to_string(&value).unwrap_or_default()
    }

    /// Parses an event from one JSON line.
    pub fn from_json(text: &str) -> Result<LedgerEvent, String> {
        let value: Value = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let (kind, body) = open_envelope(&value, "ev", LEDGER_SCHEMA_VERSION)?;
        let ev = match kind {
            "start" => LedgerEvent::Start(StartEvent::from_value(body).map_err(err)?),
            "assign" => LedgerEvent::Assign(AssignEvent::from_value(body).map_err(err)?),
            "violation" => LedgerEvent::Violation(ViolationEvent::from_value(body).map_err(err)?),
            "done" => LedgerEvent::Done(DoneEvent::from_value(body).map_err(err)?),
            "retry" => LedgerEvent::Retry(RetryEvent::from_value(body).map_err(err)?),
            "quarantine" => {
                LedgerEvent::Quarantine(QuarantineEvent::from_value(body).map_err(err)?)
            }
            "death" => LedgerEvent::Death(DeathEvent::from_value(body).map_err(err)?),
            "finish" => LedgerEvent::Finish(FinishEvent::from_value(body).map_err(err)?),
            other => return Err(format!("unknown ledger event `{other}`")),
        };
        Ok(ev)
    }
}

fn err(e: serde::Error) -> String {
    e.to_string()
}

fn envelope_ev(kind: &str, body: Value) -> Value {
    let mut value = envelope(kind, body);
    // The wire envelope tags with `kind`; the ledger uses `ev` so a ledger
    // line can never be confused with a wire frame payload.
    if let Value::Object(map) = &mut value {
        if let Some(k) = map.remove("kind") {
            map.insert("ev".to_string(), k);
        }
        map.insert(
            "v".to_string(),
            Value::UInt(u64::from(LEDGER_SCHEMA_VERSION)),
        );
    }
    value
}

/// Append-only event log (see module docs).
pub struct Ledger {
    file: Mutex<File>,
    path: PathBuf,
}

impl Ledger {
    /// Creates a fresh ledger, truncating any previous file at `path`.
    pub fn create(path: &Path) -> std::io::Result<Ledger> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(Ledger {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Reopens an existing ledger for appending (`--resume`).
    pub fn open_append(path: &Path) -> std::io::Result<Ledger> {
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(Ledger {
            file: Mutex::new(file),
            path: path.to_path_buf(),
        })
    }

    /// Appends one event as a single `write` call (write-ahead: call this
    /// *before* acting on the event).
    pub fn append(&self, event: &LedgerEvent) -> std::io::Result<()> {
        let mut line = event.to_json();
        line.push('\n');
        self.file.lock().write_all(line.as_bytes())
    }

    /// The ledger's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads every intact event. Unparseable lines — at most the torn tail
    /// of a killed daemon, but any corruption mid-file too — are skipped
    /// with a warning, mirroring [`DurableSink::load`].
    pub fn load(path: &Path) -> std::io::Result<Vec<LedgerEvent>> {
        let text = std::fs::read_to_string(path)?;
        let mut events = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match LedgerEvent::from_json(line) {
                Ok(ev) => events.push(ev),
                Err(e) => eprintln!(
                    "tsvd-fleet: ledger {}: skipping unreadable line {}: {e}",
                    path.display(),
                    idx + 1
                ),
            }
        }
        Ok(events)
    }

    /// Companion path of the atomically-saved merged trap file.
    pub fn traps_path(path: &Path) -> PathBuf {
        let mut name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".traps.json");
        path.with_file_name(name)
    }
}

/// Run state reconstructed by replaying a ledger.
#[derive(Debug, Default)]
pub struct LedgerState {
    /// The recorded run parameters.
    pub start: Option<StartEvent>,
    /// Final outcome per (wave, module).
    pub done: HashMap<(usize, usize), DoneEvent>,
    /// Deduplicated violations: (module, normalized location pair).
    pub violations: HashSet<(usize, (String, String))>,
    /// Quarantined modules with their kill counts.
    pub quarantined: HashMap<usize, u32>,
    /// Worker deaths attributed to each module (reconstructed from
    /// death-reason retries and quarantine events).
    pub kills: HashMap<usize, u32>,
    /// Failed-outcome executions per (wave, module) (reconstructed from
    /// outcome-reason retries).
    pub failures: HashMap<(usize, usize), u32>,
    /// Next attempt number per (wave, module).
    pub attempts: HashMap<(usize, usize), u32>,
    /// Retry events seen.
    pub retries: usize,
    /// Worker deaths seen.
    pub deaths: usize,
    /// Whether a finish event closed the run.
    pub finished: bool,
}

/// Replays events in file order into a [`LedgerState`].
pub fn replay(events: &[LedgerEvent]) -> LedgerState {
    let mut state = LedgerState::default();
    for ev in events {
        match ev {
            LedgerEvent::Start(s) => state.start = Some(s.clone()),
            LedgerEvent::Assign(a) => {
                let next = state.attempts.entry((a.wave, a.index)).or_insert(0);
                *next = (*next).max(a.attempt + 1);
            }
            LedgerEvent::Violation(v) => {
                state
                    .violations
                    .insert((v.index, (v.pair_a.clone(), v.pair_b.clone())));
            }
            LedgerEvent::Done(d) => {
                state.done.insert((d.wave, d.index), d.clone());
            }
            LedgerEvent::Retry(r) => {
                state.retries += 1;
                // Kill attribution rides in the retry reason: a worker
                // death re-queues with a "worker death" reason, a failed
                // outcome with an "outcome" reason. Resume rebuilds both
                // counters from them.
                if r.reason.starts_with(RETRY_REASON_DEATH) {
                    *state.kills.entry(r.index).or_insert(0) += 1;
                } else if r.reason.starts_with(RETRY_REASON_OUTCOME) {
                    *state.failures.entry((r.wave, r.index)).or_insert(0) += 1;
                }
            }
            LedgerEvent::Quarantine(q) => {
                state.quarantined.insert(q.index, q.kills);
                state.kills.insert(q.index, q.kills);
            }
            LedgerEvent::Death(_) => state.deaths += 1,
            LedgerEvent::Finish(_) => state.finished = true,
        }
    }
    state
}

/// Prefix of retry reasons caused by a worker death (kill attribution).
pub const RETRY_REASON_DEATH: &str = "worker death";
/// Prefix of retry reasons caused by a failed module outcome.
pub const RETRY_REASON_OUTCOME: &str = "outcome";

/// What a successful [`verify`] saw.
#[derive(Debug, Clone, Default)]
pub struct VerifySummary {
    /// Modules in the suite.
    pub modules: usize,
    /// Waves of the run.
    pub waves: usize,
    /// Done events checked.
    pub done: usize,
    /// Quarantined modules.
    pub quarantined: usize,
    /// Deduplicated ledger violations.
    pub violations: usize,
    /// Distinct (module, pair) keys found across worker sinks.
    pub sink_pairs: usize,
}

/// Parses `w{wave}_m{index}_a{attempt}.jsonl` sink file names.
pub fn parse_sink_name(name: &str) -> Option<(usize, usize, u32)> {
    let stem = name.strip_suffix(".jsonl")?;
    let mut parts = stem.split('_');
    let wave = parts.next()?.strip_prefix('w')?.parse().ok()?;
    let index = parts.next()?.strip_prefix('m')?.parse().ok()?;
    let attempt = parts.next()?.strip_prefix('a')?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some((wave, index, attempt))
}

/// Merges every per-execution worker sink in `dir` into one violation
/// list for downstream consumers (`repro fix` reads this directly).
/// Files are visited in sorted name order and duplicate pairs are
/// dropped (a retried module writes the same violation into a fresh
/// attempt sink), so the merged list is a deterministic function of the
/// directory contents regardless of filesystem iteration order.
/// Non-sink-named files and unloadable sinks are skipped — one torn
/// worker file must not hide the rest of the fleet's catches.
pub fn merge_sink_dir(dir: &Path) -> std::io::Result<Vec<ViolationRecord>> {
    let mut names: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name().to_string_lossy().into_owned();
        if parse_sink_name(&name).is_some() {
            names.push(name);
        }
    }
    names.sort();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut merged = Vec::new();
    for name in names {
        let Ok(records) = DurableSink::load(&dir.join(&name)) else {
            continue;
        };
        for r in records {
            if seen.insert(r.pair_key()) {
                merged.push(r);
            }
        }
    }
    Ok(merged)
}

/// Checks every fleet invariant a finished (or killed) run must uphold:
///
/// 1. exactly one start event, and a finished run resolves every
///    (wave, module) exactly once — done, or quarantined;
/// 2. no (wave, module) has two done events, and no done module is ever
///    assigned again afterwards (resume must not re-run completed work);
/// 3. ledger violations are unique per (module, pair) — zero duplicates;
/// 4. the ledger reconciles **exactly** against the per-execution worker
///    sinks: every pair in any sink file appears in the ledger (zero lost,
///    even across worker kills and torn socket writes), and every ledger
///    pair appears in some sink file of that module (nothing fabricated);
/// 5. quarantine only ever happens at or above the configured kill limit.
pub fn verify(events: &[LedgerEvent], sink_dir: &Path) -> Result<VerifySummary, Vec<String>> {
    let mut errors = Vec::new();
    let starts: Vec<&StartEvent> = events
        .iter()
        .filter_map(|e| match e {
            LedgerEvent::Start(s) => Some(s),
            _ => None,
        })
        .collect();
    if starts.len() != 1 {
        errors.push(format!(
            "expected exactly 1 start event, found {}",
            starts.len()
        ));
        return Err(errors);
    }
    let start = starts[0];
    let state = replay(events);

    // (2) duplicates and assign-after-done, in event order.
    let mut done_seen: HashSet<(usize, usize)> = HashSet::new();
    for ev in events {
        match ev {
            LedgerEvent::Done(d) if !done_seen.insert((d.wave, d.index)) => {
                errors.push(format!(
                    "duplicate done event for wave {} module {}",
                    d.wave, d.index
                ));
            }
            LedgerEvent::Assign(a) if done_seen.contains(&(a.wave, a.index)) => {
                errors.push(format!(
                    "module {} wave {} assigned again after completion",
                    a.index, a.wave
                ));
            }
            _ => {}
        }
    }

    // (3) violation dedup.
    let mut vio_seen: HashSet<(usize, (String, String))> = HashSet::new();
    for ev in events {
        if let LedgerEvent::Violation(v) = ev {
            let key = (v.index, normalize_pair(&v.pair_a, &v.pair_b));
            if !vio_seen.insert(key) {
                errors.push(format!(
                    "duplicate violation event for module {}: {} / {}",
                    v.index, v.pair_a, v.pair_b
                ));
            }
        }
    }

    // (1) coverage, only meaningful once the run claims to have finished.
    if state.finished {
        for wave in 0..start.waves {
            for index in 0..start.modules {
                let resolved = state.done.contains_key(&(wave, index))
                    || state.quarantined.contains_key(&index);
                if !resolved {
                    errors.push(format!("module {index} unresolved in wave {wave}"));
                }
            }
        }
    }

    // (5) quarantine threshold.
    for ev in events {
        if let LedgerEvent::Quarantine(q) = ev {
            if q.kills < start.quarantine_kill_limit {
                errors.push(format!(
                    "module {} quarantined after only {} kill(s), limit {}",
                    q.index, q.kills, start.quarantine_kill_limit
                ));
            }
        }
    }

    // (4) exact sink reconciliation.
    let mut sink_pairs: HashSet<(usize, (String, String))> = HashSet::new();
    if sink_dir.is_dir() {
        for entry in std::fs::read_dir(sink_dir).map_err(|e| vec![e.to_string()])? {
            let entry = entry.map_err(|e| vec![e.to_string()])?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some((_wave, index, _attempt)) = parse_sink_name(&name) else {
                continue;
            };
            if let Ok(records) = DurableSink::load(&entry.path()) {
                for r in records {
                    sink_pairs.insert((index, r.pair_key()));
                }
            }
        }
    }
    for key in &sink_pairs {
        if !state.violations.contains(key) {
            errors.push(format!(
                "violation lost: module {} pair {} / {} is in a worker sink but not the ledger",
                key.0, key.1 .0, key.1 .1
            ));
        }
    }
    for key in &state.violations {
        if !sink_pairs.contains(key) {
            errors.push(format!(
                "violation fabricated: module {} pair {} / {} is in the ledger but no worker sink",
                key.0, key.1 .0, key.1 .1
            ));
        }
    }

    if errors.is_empty() {
        Ok(VerifySummary {
            modules: start.modules,
            waves: start.waves,
            done: state.done.len(),
            quarantined: state.quarantined.len(),
            violations: state.violations.len(),
            sink_pairs: sink_pairs.len(),
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start_event(dir: &Path) -> StartEvent {
        StartEvent {
            suite: "std:4:1".into(),
            modules: 4,
            waves: 1,
            workers: 2,
            threads: 2,
            scale: 0.02,
            seed: 1,
            deadline_ms: 1000,
            quarantine_kill_limit: 3,
            module_attempt_limit: 2,
            sink_dir: dir.to_path_buf(),
            chaos: None,
        }
    }

    fn done_event(wave: usize, index: usize) -> DoneEvent {
        DoneEvent {
            wave,
            index,
            worker: 0,
            attempt: 0,
            outcome: "completed".into(),
            wall_ns: 1,
            delays: 0,
            on_calls: 0,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tsvd_ledger_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn vrec(a: &str, b: &str) -> ViolationRecord {
        ViolationRecord {
            schema: 1,
            location_trapped: a.to_string(),
            location_hitter: b.to_string(),
            op_trapped: "Dictionary.set".into(),
            op_hitter: "Dictionary.get".into(),
            obj: 7,
            time_ns: 1,
            read_write: true,
        }
    }

    #[test]
    fn merge_sink_dir_dedupes_and_ignores_foreign_files() {
        let dir = temp_dir("merge_sinks");
        let write_sink = |name: &str, records: &[ViolationRecord]| {
            let sink = DurableSink::create(&dir.join(name), false).expect("create");
            for r in records {
                sink.append_record(r).expect("append");
            }
        };
        write_sink("w0_m1_a0.jsonl", &[vrec("a.rs:1:1", "a.rs:2:2")]);
        // A retry re-caught the same pair, plus a fresh one.
        write_sink(
            "w0_m1_a1.jsonl",
            &[vrec("a.rs:1:1", "a.rs:2:2"), vrec("b.rs:3:3", "b.rs:4:4")],
        );
        write_sink("w1_m2_a0.jsonl", &[vrec("c.rs:5:5", "c.rs:6:6")]);
        // Non-sink files in the directory must be skipped, not parsed.
        std::fs::write(dir.join("ledger.jsonl"), "{\"ev\": \"start\"}\n").expect("write");
        std::fs::write(dir.join("notes.txt"), "not a sink").expect("write");

        let merged = merge_sink_dir(&dir).expect("merge");
        let keys: Vec<(String, String)> = merged.iter().map(|r| r.pair_key()).collect();
        assert_eq!(
            keys,
            vec![
                normalize_pair("a.rs:1:1", "a.rs:2:2"),
                normalize_pair("b.rs:3:3", "b.rs:4:4"),
                normalize_pair("c.rs:5:5", "c.rs:6:6"),
            ],
            "sorted file order, duplicates dropped"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_round_trip_through_the_file() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("ledger.jsonl");
        let events = vec![
            LedgerEvent::Start(start_event(&dir)),
            LedgerEvent::Assign(AssignEvent {
                wave: 0,
                index: 2,
                worker: 1,
                incarnation: 0,
                attempt: 0,
            }),
            LedgerEvent::Retry(RetryEvent {
                wave: 0,
                index: 2,
                attempt: 0,
                reason: "worker death: eof".into(),
            }),
            LedgerEvent::Quarantine(QuarantineEvent { index: 2, kills: 3 }),
            LedgerEvent::Death(DeathEvent {
                worker: 1,
                incarnation: 0,
                reason: "hang timeout".into(),
            }),
            LedgerEvent::Done(done_event(0, 3)),
            LedgerEvent::Finish(FinishEvent {
                completed: 1,
                quarantined: 1,
            }),
        ];
        let ledger = Ledger::create(&path).expect("create");
        for ev in &events {
            ledger.append(ev).expect("append");
        }
        let back = Ledger::load(&path).expect("load");
        assert_eq!(back, events);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_skips_torn_tail() {
        let dir = temp_dir("torn");
        let path = dir.join("ledger.jsonl");
        let ledger = Ledger::create(&path).expect("create");
        ledger
            .append(&LedgerEvent::Start(start_event(&dir)))
            .expect("append");
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"v\":1,\"ev\":\"done\",\"wav")
                .expect("tear");
        }
        let events = Ledger::load(&path).expect("load");
        assert_eq!(events.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_reconstructs_state() {
        let dir = temp_dir("replay");
        let events = vec![
            LedgerEvent::Start(start_event(&dir)),
            LedgerEvent::Assign(AssignEvent {
                wave: 0,
                index: 0,
                worker: 0,
                incarnation: 0,
                attempt: 0,
            }),
            LedgerEvent::Assign(AssignEvent {
                wave: 0,
                index: 0,
                worker: 1,
                incarnation: 0,
                attempt: 1,
            }),
            LedgerEvent::Done(done_event(0, 0)),
            LedgerEvent::Quarantine(QuarantineEvent { index: 3, kills: 3 }),
        ];
        let state = replay(&events);
        assert_eq!(state.attempts[&(0, 0)], 2);
        assert!(state.done.contains_key(&(0, 0)));
        assert_eq!(state.quarantined[&3], 3);
        assert!(!state.finished);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_flags_duplicate_done_and_assign_after_done() {
        let dir = temp_dir("verify_dup");
        let events = vec![
            LedgerEvent::Start(start_event(&dir)),
            LedgerEvent::Done(done_event(0, 0)),
            LedgerEvent::Done(done_event(0, 0)),
            LedgerEvent::Assign(AssignEvent {
                wave: 0,
                index: 0,
                worker: 0,
                incarnation: 0,
                attempt: 1,
            }),
        ];
        let errors = verify(&events, &dir).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("duplicate done")));
        assert!(errors.iter().any(|e| e.contains("assigned again")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_flags_unresolved_modules_on_finished_runs() {
        let dir = temp_dir("verify_cov");
        let events = vec![
            LedgerEvent::Start(start_event(&dir)),
            LedgerEvent::Done(done_event(0, 0)),
            LedgerEvent::Finish(FinishEvent {
                completed: 1,
                quarantined: 0,
            }),
        ];
        let errors = verify(&events, &dir).unwrap_err();
        assert!(errors.iter().any(|e| e.contains("unresolved")));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_name_parsing() {
        assert_eq!(parse_sink_name("w1_m42_a3.jsonl"), Some((1, 42, 3)));
        assert_eq!(parse_sink_name("w1_m42.jsonl"), None);
        assert_eq!(parse_sink_name("ledger.jsonl"), None);
        assert_eq!(parse_sink_name("w1_m42_a3_x.jsonl"), None);
    }

    #[test]
    fn traps_path_is_a_sibling() {
        let p = Ledger::traps_path(Path::new("/x/ledger.jsonl"));
        assert_eq!(p, Path::new("/x/ledger.jsonl.traps.json"));
    }
}
