//! The fleet daemon: supervised multi-process suite execution.
//!
//! One event loop owns all scheduling state; accept/reader/tick threads
//! only funnel [`Event`]s into it, so every decision is serialized and
//! every decision is written to the [`crate::ledger`] *before* it takes
//! effect (write-ahead). Supervision duties:
//!
//! - **liveness**: workers heartbeat; a worker silent past the hang
//!   timeout is killed and treated as dead (the process-wide analogue of
//!   `ModuleOutcome::TimedOut`);
//! - **recovery**: a dead worker's in-flight module is re-queued, after
//!   harvesting the execution's durable sink so no already-caught
//!   violation is lost to a torn socket write or an abort;
//! - **quarantine**: a module that kills workers repeatedly is poisoned
//!   instead of taking the fleet down with it;
//! - **degradation**: dead workers respawn under capped exponential
//!   backoff with deterministic jitter; a slot that cannot spawn retires,
//!   and the run continues on fewer workers (erroring only when none
//!   remain with work still pending).

use std::collections::{HashMap, HashSet, VecDeque};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsvd_core::rng::mix;
use tsvd_core::sink::DurableSink;
use tsvd_core::trap_file::TrapFileData;

use crate::chaos::{ChaosPlan, CHAOS_ENV};
use crate::ledger::{
    replay, AssignEvent, DeathEvent, DoneEvent, FinishEvent, Ledger, LedgerEvent, LedgerState,
    QuarantineEvent, RetryEvent, StartEvent, ViolationEvent, RETRY_REASON_DEATH,
    RETRY_REASON_OUTCOME,
};
use crate::runner::ModuleOutcome;
use crate::suites::SuiteSpec;
use crate::wire::{read_frame, write_frame, Frame};
use crate::worker::sink_file_name;

/// Fleet run configuration.
#[derive(Debug, Clone)]
pub struct FleetOptions {
    /// The suite to run.
    pub suite: SuiteSpec,
    /// Worker processes.
    pub workers: usize,
    /// Waves (cross-process analogue of `RunOptions::runs`).
    pub waves: usize,
    /// Pool threads per module.
    pub threads: usize,
    /// Detector time-constant scale.
    pub scale: f64,
    /// Base suite seed.
    pub seed: u64,
    /// Per-module deadline, milliseconds.
    pub deadline_ms: u64,
    /// Worker heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
    /// Silence past this kills a worker, milliseconds.
    pub hang_timeout_ms: u64,
    /// Worker deaths a module may cause before quarantine.
    pub quarantine_kill_limit: u32,
    /// Failed-outcome executions (panic/timeout) a module gets before its
    /// last outcome is recorded as final.
    pub module_attempt_limit: u32,
    /// Consecutive spawn failures before a worker slot retires.
    pub max_spawn_failures: u32,
    /// Fault-injection plan (`--chaos`).
    pub chaos: Option<ChaosPlan>,
    /// Ledger path (write-ahead state; `--resume` target).
    pub ledger: PathBuf,
    /// Directory for per-execution worker sinks.
    pub sink_dir: PathBuf,
    /// Worker executable (defaults to the current executable).
    pub worker_exe: Option<PathBuf>,
    /// Continue a previous run from its ledger instead of starting fresh.
    pub resume: bool,
    /// Test hook: stop the daemon cold (no finish event, no shutdown
    /// frames) after this many module completions — simulates a daemon
    /// crash so resume paths can be tested deterministically.
    pub stop_after_completions: Option<usize>,
    /// Suppress progress logging.
    pub quiet: bool,
}

impl FleetOptions {
    /// Defaults mirroring `RunOptions::standard()` plus supervision knobs.
    pub fn standard(suite: SuiteSpec, ledger: PathBuf, sink_dir: PathBuf) -> FleetOptions {
        FleetOptions {
            suite,
            workers: 4,
            waves: 2,
            threads: 2,
            scale: 0.02,
            seed: 0x534D_414C,
            deadline_ms: 30_000,
            heartbeat_ms: 100,
            hang_timeout_ms: 2_000,
            quarantine_kill_limit: 3,
            module_attempt_limit: 2,
            max_spawn_failures: 5,
            chaos: None,
            ledger,
            sink_dir,
            worker_exe: None,
            resume: false,
            stop_after_completions: None,
            quiet: false,
        }
    }
}

/// What a fleet run did.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Module executions recorded with a final outcome.
    pub completed: usize,
    /// Quarantined module indices.
    pub quarantined: Vec<usize>,
    /// Deduplicated (module, location-pair) violations.
    pub violations: usize,
    /// Re-queue decisions taken.
    pub retries: usize,
    /// Worker deaths observed.
    pub deaths: usize,
    /// Wall-clock nanoseconds of this daemon invocation.
    pub wall_ns: u64,
    /// `true` if the stop-after-completions test hook ended the run early.
    pub stopped_early: bool,
    /// Ledger path (for `verify` / `--resume`).
    pub ledger: PathBuf,
}

/// Why a fleet run could not finish.
#[derive(Debug)]
pub enum FleetError {
    /// Filesystem / socket setup failed.
    Io(std::io::Error),
    /// The ledger could not be created, loaded, or resumed.
    Ledger(String),
    /// Every worker slot retired with modules still pending.
    AllWorkersRetired {
        /// Modules that never resolved.
        pending: usize,
    },
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Io(e) => write!(f, "fleet i/o error: {e}"),
            FleetError::Ledger(e) => write!(f, "fleet ledger error: {e}"),
            FleetError::AllWorkersRetired { pending } => write!(
                f,
                "every worker slot retired with {pending} module(s) still pending"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> FleetError {
        FleetError::Io(e)
    }
}

enum Event {
    Hello {
        worker: usize,
        incarnation: u64,
        pid: u32,
        stream: UnixStream,
    },
    Frame {
        worker: usize,
        incarnation: u64,
        frame: Frame,
    },
    Eof {
        worker: usize,
        incarnation: u64,
        reason: String,
    },
    Tick,
}

struct Slot {
    incarnation: u64,
    child: Option<Child>,
    stream: Option<UnixStream>,
    current: Option<(usize, usize, u32)>,
    last_seen: Instant,
    consecutive_deaths: u32,
    spawn_failures: u32,
    respawn_at: Option<Instant>,
    retired: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            incarnation: 0,
            child: None,
            stream: None,
            current: None,
            last_seen: Instant::now(),
            consecutive_deaths: 0,
            spawn_failures: 0,
            respawn_at: None,
            retired: false,
        }
    }
}

struct Daemon {
    opts: FleetOptions,
    start: StartEvent,
    ledger: Ledger,
    slots: Vec<Slot>,
    queue: VecDeque<usize>,
    wave: usize,
    done: HashSet<(usize, usize)>,
    quarantined: HashSet<usize>,
    kills: HashMap<usize, u32>,
    failures: HashMap<(usize, usize), u32>,
    attempts: HashMap<(usize, usize), u32>,
    violations: HashSet<(usize, (String, String))>,
    traps: TrapFileData,
    retries: usize,
    deaths: usize,
}

/// Runs (or resumes) a fleet and blocks until it finishes, degrades to
/// nothing, or the stop-after hook fires.
pub fn run_fleet(options: FleetOptions) -> Result<FleetReport, FleetError> {
    let begun = Instant::now();
    std::fs::create_dir_all(&options.sink_dir)?;

    let (start, ledger, state) = if options.resume {
        let events =
            Ledger::load(&options.ledger).map_err(|e| FleetError::Ledger(e.to_string()))?;
        let state = replay(&events);
        let start = state
            .start
            .clone()
            .ok_or_else(|| FleetError::Ledger("ledger has no start event".to_string()))?;
        let ledger =
            Ledger::open_append(&options.ledger).map_err(|e| FleetError::Ledger(e.to_string()))?;
        (start, ledger, Some(state))
    } else {
        let start = StartEvent {
            suite: options.suite.to_arg(),
            modules: options.suite.modules(),
            waves: options.waves,
            workers: options.workers,
            threads: options.threads,
            scale: options.scale,
            seed: options.seed,
            deadline_ms: options.deadline_ms,
            quarantine_kill_limit: options.quarantine_kill_limit,
            module_attempt_limit: options.module_attempt_limit,
            sink_dir: options.sink_dir.clone(),
            chaos: options.chaos.as_ref().map(ChaosPlan::to_env),
        };
        let ledger =
            Ledger::create(&options.ledger).map_err(|e| FleetError::Ledger(e.to_string()))?;
        ledger.append(&LedgerEvent::Start(start.clone()))?;
        (start, ledger, None)
    };

    let mut daemon = Daemon {
        opts: options,
        start,
        ledger,
        slots: Vec::new(),
        queue: VecDeque::new(),
        wave: 0,
        done: HashSet::new(),
        quarantined: HashSet::new(),
        kills: HashMap::new(),
        failures: HashMap::new(),
        attempts: HashMap::new(),
        violations: HashSet::new(),
        traps: TrapFileData::default(),
        retries: 0,
        deaths: 0,
    };
    if let Some(state) = state {
        daemon.adopt(state)?;
    }
    daemon.seed_queue();

    let mut report = daemon.supervise()?;
    report.wall_ns = u64::try_from(begun.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Ok(report)
}

impl Daemon {
    /// The socket path is derived from the ledger path so one fleet = one
    /// namespace on disk.
    fn socket_path(&self) -> PathBuf {
        let mut name = self
            .opts
            .ledger
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_default();
        name.push(".sock");
        self.opts.ledger.with_file_name(name)
    }

    /// Folds a replayed ledger back into live state (`--resume`), then
    /// harvests every sink file on disk so records written after the old
    /// daemon's last ledger append are not lost.
    fn adopt(&mut self, state: LedgerState) -> Result<(), FleetError> {
        // The recorded run parameters are authoritative for everything that
        // affects results; worker count and paths stay operational.
        self.opts.suite = SuiteSpec::parse(&self.start.suite).map_err(FleetError::Ledger)?;
        self.opts.waves = self.start.waves;
        self.opts.threads = self.start.threads;
        self.opts.scale = self.start.scale;
        self.opts.seed = self.start.seed;
        self.opts.deadline_ms = self.start.deadline_ms;
        self.opts.quarantine_kill_limit = self.start.quarantine_kill_limit;
        self.opts.module_attempt_limit = self.start.module_attempt_limit;
        self.opts.sink_dir = self.start.sink_dir.clone();
        if let Some(chaos) = &self.start.chaos {
            self.opts.chaos = Some(ChaosPlan::from_env(chaos).map_err(FleetError::Ledger)?);
        }
        self.done = state.done.keys().copied().collect();
        self.quarantined = state.quarantined.keys().copied().collect();
        self.kills = state.kills;
        self.failures = state.failures;
        self.attempts = state.attempts;
        self.violations = state.violations;
        self.retries = state.retries;
        self.deaths = state.deaths;
        let traps_path = Ledger::traps_path(&self.opts.ledger);
        if traps_path.exists() {
            self.traps = TrapFileData::load(&traps_path)
                .map_err(|e| FleetError::Ledger(format!("trap file: {e}")))?;
        }
        self.harvest_all_sinks()?;
        Ok(())
    }

    /// Fills the queue with the first wave that still has pending modules.
    fn seed_queue(&mut self) {
        for wave in 0..self.start.waves {
            let pending: Vec<usize> = (0..self.start.modules)
                .filter(|i| !self.quarantined.contains(i) && !self.done.contains(&(wave, *i)))
                .collect();
            if !pending.is_empty() {
                self.wave = wave;
                self.queue.extend(pending);
                return;
            }
        }
        self.wave = self.start.waves;
    }

    fn log(&self, msg: std::fmt::Arguments<'_>) {
        if !self.opts.quiet {
            eprintln!("tsvd-fleet: {msg}");
        }
    }

    fn supervise(&mut self) -> Result<FleetReport, FleetError> {
        let socket = self.socket_path();
        let _ = std::fs::remove_file(&socket);
        let listener = UnixListener::bind(&socket)?;
        let (tx, rx) = mpsc::channel::<Event>();
        let accepting = Arc::new(AtomicBool::new(true));

        // Accept thread: every connection gets a reader thread that parses
        // the Hello itself, so a half-open connection can never block the
        // accept loop.
        let accept_tx = tx.clone();
        let accept_flag = accepting.clone();
        let accept_handle = std::thread::Builder::new()
            .name("tsvd-fleet-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if !accept_flag.load(Ordering::Relaxed) {
                        return;
                    }
                    let Ok(conn) = conn else { continue };
                    let tx = accept_tx.clone();
                    let _ = std::thread::Builder::new()
                        .name("tsvd-fleet-reader".into())
                        .spawn(move || reader_thread(conn, tx));
                }
            })?;

        // Tick thread: drives timeouts, respawns, and wave advancement.
        let tick_tx = tx.clone();
        let tick_flag = accepting.clone();
        let tick_handle = std::thread::Builder::new()
            .name("tsvd-fleet-tick".into())
            .spawn(move || {
                while tick_flag.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(25));
                    if tick_tx.send(Event::Tick).is_err() {
                        return;
                    }
                }
            })?;

        self.slots = (0..self.opts.workers).map(|_| Slot::new()).collect();
        for worker in 0..self.slots.len() {
            self.spawn_worker(worker, &socket);
        }

        let outcome = self.event_loop(&rx);

        // Teardown (both clean finish and early stop): stop the helper
        // threads, shut workers down, then run the final sweep — only
        // after every worker is gone can the sink union be stable.
        accepting.store(false, Ordering::Relaxed);
        let _ = UnixStream::connect(&socket); // unblock accept()
        let _ = accept_handle.join();
        drop(rx);
        let _ = tick_handle.join();
        let finished = matches!(outcome, Ok(false));
        self.shutdown_workers(finished);
        let _ = std::fs::remove_file(&socket);
        let stopped_early = outcome?;
        if !stopped_early {
            self.harvest_all_sinks()?;
            self.ledger.append(&LedgerEvent::Finish(FinishEvent {
                completed: self.done.len(),
                quarantined: self.quarantined.len(),
            }))?;
        }
        self.save_traps();

        let mut quarantined: Vec<usize> = self.quarantined.iter().copied().collect();
        quarantined.sort_unstable();
        Ok(FleetReport {
            completed: self.done.len(),
            quarantined,
            violations: self.violations.len(),
            retries: self.retries,
            deaths: self.deaths,
            wall_ns: 0,
            stopped_early,
            ledger: self.opts.ledger.clone(),
        })
    }

    /// The serialized decision loop. Returns `Ok(true)` if the stop-after
    /// test hook ended the run early, `Ok(false)` on a clean finish.
    fn event_loop(&mut self, rx: &mpsc::Receiver<Event>) -> Result<bool, FleetError> {
        loop {
            if self.run_finished() {
                return Ok(false);
            }
            if let Some(limit) = self.opts.stop_after_completions {
                if self.done.len() >= limit {
                    self.log(format_args!(
                        "stop-after hook: halting after {} completions",
                        self.done.len()
                    ));
                    return Ok(true);
                }
            }
            let event = match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(ev) => ev,
                Err(mpsc::RecvTimeoutError::Timeout) => Event::Tick,
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    return Err(FleetError::Ledger("event channel closed".to_string()))
                }
            };
            match event {
                Event::Hello {
                    worker,
                    incarnation,
                    pid,
                    stream,
                } => self.on_hello(worker, incarnation, pid, stream)?,
                Event::Frame {
                    worker,
                    incarnation,
                    frame,
                } => self.on_frame(worker, incarnation, frame)?,
                Event::Eof {
                    worker,
                    incarnation,
                    reason,
                } => {
                    if self.slot_is_current(worker, incarnation) {
                        self.on_death(worker, &reason)?;
                    }
                }
                Event::Tick => self.on_tick()?,
            }
        }
    }

    fn run_finished(&self) -> bool {
        self.wave >= self.start.waves
    }

    fn slot_is_current(&self, worker: usize, incarnation: u64) -> bool {
        self.slots
            .get(worker)
            .is_some_and(|s| s.incarnation == incarnation && !s.retired && s.child.is_some())
    }

    fn on_hello(
        &mut self,
        worker: usize,
        incarnation: u64,
        pid: u32,
        stream: UnixStream,
    ) -> Result<(), FleetError> {
        if !self.slot_is_current(worker, incarnation) {
            // A stale process (already killed, already superseded): closing
            // the stream makes it exit on its next read.
            drop(stream);
            return Ok(());
        }
        self.log(format_args!(
            "worker {worker} (incarnation {incarnation}, pid {pid}) connected"
        ));
        let slot = &mut self.slots[worker];
        slot.stream = Some(stream);
        slot.last_seen = Instant::now();
        slot.consecutive_deaths = 0;
        slot.spawn_failures = 0;
        self.dispatch()?;
        Ok(())
    }

    fn on_frame(
        &mut self,
        worker: usize,
        incarnation: u64,
        frame: Frame,
    ) -> Result<(), FleetError> {
        if !self.slot_is_current(worker, incarnation) {
            return Ok(());
        }
        self.slots[worker].last_seen = Instant::now();
        match frame {
            Frame::Heartbeat => {}
            Frame::Violation(v) => {
                self.record_violation(v.index, &v.record)?;
            }
            Frame::Done(done) => self.on_done(worker, done)?,
            other => {
                self.log(format_args!("ignoring unexpected frame {other:?}"));
            }
        }
        Ok(())
    }

    fn record_violation(
        &mut self,
        index: usize,
        record: &tsvd_core::ViolationRecord,
    ) -> Result<(), FleetError> {
        let pair = record.pair_key();
        let key = (index, pair.clone());
        if self.violations.contains(&key) {
            return Ok(());
        }
        // Write-ahead: the ledger line lands before the in-memory set is
        // updated, so a crash between the two only re-harvests (dedup
        // absorbs it), never loses.
        self.ledger.append(&LedgerEvent::Violation(ViolationEvent {
            index,
            pair_a: pair.0,
            pair_b: pair.1,
            record: record.clone(),
        }))?;
        self.violations.insert(key);
        Ok(())
    }

    fn on_done(&mut self, worker: usize, done: crate::wire::Done) -> Result<(), FleetError> {
        if self.slots[worker].current != Some((done.wave, done.index, done.attempt)) {
            self.log(format_args!(
                "worker {worker} reported unassigned work (wave {} module {}); ignoring",
                done.wave, done.index
            ));
            return Ok(());
        }
        self.slots[worker].current = None;
        let outcome = ModuleOutcome::parse(&done.outcome).unwrap_or(ModuleOutcome::Panicked);
        let key = (done.wave, done.index);
        let failed = outcome != ModuleOutcome::Completed;
        if failed {
            let failures = self.failures.entry(key).or_insert(0);
            *failures += 1;
            if *failures < self.opts.module_attempt_limit {
                // Failed outcome with attempts left: re-queue; aggregates
                // only ever count the final outcome, so a module that
                // panics once and then completes counts exactly once.
                self.ledger.append(&LedgerEvent::Retry(RetryEvent {
                    wave: done.wave,
                    index: done.index,
                    attempt: done.attempt,
                    reason: format!("{RETRY_REASON_OUTCOME} {}", done.outcome),
                }))?;
                self.retries += 1;
                self.queue.push_back(done.index);
                self.dispatch()?;
                return Ok(());
            }
        }
        self.ledger.append(&LedgerEvent::Done(DoneEvent {
            wave: done.wave,
            index: done.index,
            worker,
            attempt: done.attempt,
            outcome: done.outcome.clone(),
            wall_ns: done.wall_ns,
            delays: done.delays,
            on_calls: done.on_calls,
        }))?;
        self.done.insert(key);
        if let Some(delta) = &done.traps {
            self.traps.merge(delta);
            self.save_traps();
        }
        self.advance_wave_if_exhausted()?;
        self.dispatch()?;
        Ok(())
    }

    /// A worker died (EOF, abort, hang-kill). Harvest its in-flight
    /// execution's sink, attribute the kill, re-queue or quarantine.
    fn on_death(&mut self, worker: usize, reason: &str) -> Result<(), FleetError> {
        let slot = &mut self.slots[worker];
        let incarnation = slot.incarnation;
        let current = slot.current.take();
        if let Some(child) = &mut slot.child {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
        slot.stream = None;
        slot.incarnation += 1;
        slot.consecutive_deaths += 1;
        self.deaths += 1;
        self.ledger.append(&LedgerEvent::Death(DeathEvent {
            worker,
            incarnation,
            reason: reason.to_string(),
        }))?;
        self.log(format_args!(
            "worker {worker} incarnation {incarnation} died: {reason}"
        ));

        if let Some((wave, index, attempt)) = current {
            // The execution's durable sink survived the process; its
            // records become ledger violations before any re-queue, which
            // is what makes "no violation lost" chaos-provable.
            let sink = self
                .opts
                .sink_dir
                .join(sink_file_name(wave, index, attempt));
            self.harvest_sink(index, &sink)?;
            let kills = {
                let k = self.kills.entry(index).or_insert(0);
                *k += 1;
                *k
            };
            if kills >= self.opts.quarantine_kill_limit {
                self.ledger
                    .append(&LedgerEvent::Quarantine(QuarantineEvent { index, kills }))?;
                self.quarantined.insert(index);
                self.queue.retain(|&i| i != index);
                self.log(format_args!(
                    "module {index} quarantined after killing {kills} worker(s)"
                ));
                self.advance_wave_if_exhausted()?;
            } else {
                self.ledger.append(&LedgerEvent::Retry(RetryEvent {
                    wave,
                    index,
                    attempt,
                    reason: format!("{RETRY_REASON_DEATH}: {reason}"),
                }))?;
                self.retries += 1;
                self.queue.push_back(index);
            }
        }

        // Capped exponential backoff with deterministic jitter: the retry
        // storm of a crash-looping worker must not starve the event loop,
        // and two slots dying together must not thunder back together.
        let slot = &mut self.slots[worker];
        let shift = slot.consecutive_deaths.saturating_sub(1).min(6);
        let base_ms = 50u64 << shift;
        let jitter_ms = mix(self.start.seed ^ (worker as u64) ^ slot.incarnation) % 50;
        slot.respawn_at =
            Some(Instant::now() + Duration::from_millis(base_ms.min(5_000) + jitter_ms));
        Ok(())
    }

    fn on_tick(&mut self) -> Result<(), FleetError> {
        let now = Instant::now();
        let hang = Duration::from_millis(self.opts.hang_timeout_ms);
        let socket = self.socket_path();
        for worker in 0..self.slots.len() {
            let slot = &mut self.slots[worker];
            if slot.retired {
                continue;
            }
            if slot.child.is_some() {
                // Liveness: a spawned worker must either heartbeat or die
                // visibly. Silence past the hang timeout — wedged module,
                // suppressed heartbeats, a process that never connected —
                // is the process-wide `TimedOut`, handled by killing it.
                let silent = now.duration_since(slot.last_seen);
                let exited = slot
                    .child
                    .as_mut()
                    .and_then(|c| c.try_wait().ok().flatten())
                    .is_some();
                if exited && slot.stream.is_none() {
                    self.on_death(worker, "exited before connecting")?;
                } else if silent > hang {
                    self.on_death(worker, "hang timeout (no heartbeat)")?;
                }
            } else if slot.respawn_at.is_some_and(|at| now >= at) {
                self.slots[worker].respawn_at = None;
                self.spawn_worker(worker, &socket);
            }
        }
        if !self.run_finished() && self.slots.iter().all(|s| s.retired) {
            let pending = self.pending_in_wave();
            return Err(FleetError::AllWorkersRetired { pending });
        }
        self.advance_wave_if_exhausted()?;
        self.dispatch()?;
        Ok(())
    }

    fn pending_in_wave(&self) -> usize {
        (0..self.start.modules)
            .filter(|i| !self.quarantined.contains(i) && !self.done.contains(&(self.wave, *i)))
            .count()
    }

    /// Hands queued modules to every idle connected worker. Assignment is
    /// write-ahead: the ledger line precedes the frame.
    fn dispatch(&mut self) -> Result<(), FleetError> {
        for worker in 0..self.slots.len() {
            if self.queue.is_empty() {
                return Ok(());
            }
            let slot = &self.slots[worker];
            if slot.retired || slot.stream.is_none() || slot.current.is_some() {
                continue;
            }
            let Some(index) = self.queue.pop_front() else {
                return Ok(());
            };
            if self.quarantined.contains(&index) || self.done.contains(&(self.wave, index)) {
                continue;
            }
            let wave = self.wave;
            let attempt = {
                let a = self.attempts.entry((wave, index)).or_insert(0);
                let attempt = *a;
                *a += 1;
                attempt
            };
            let incarnation = self.slots[worker].incarnation;
            self.ledger.append(&LedgerEvent::Assign(AssignEvent {
                wave,
                index,
                worker,
                incarnation,
                attempt,
            }))?;
            let frame = Frame::Assign(crate::wire::Assign {
                wave,
                index,
                attempt,
                traps: self.traps.clone(),
            });
            let slot = &mut self.slots[worker];
            let ok = slot
                .stream
                .as_mut()
                .map(|s| write_frame(s, &frame).is_ok())
                .unwrap_or(false);
            if ok {
                slot.current = Some((wave, index, attempt));
            } else {
                // The socket died under us; the death handler re-queues.
                slot.current = Some((wave, index, attempt));
                self.on_death(worker, "assign write failed")?;
            }
        }
        Ok(())
    }

    /// When every module of the current wave is resolved and nothing is in
    /// flight, move to the next wave (quarantined modules stay excluded).
    fn advance_wave_if_exhausted(&mut self) -> Result<(), FleetError> {
        loop {
            if self.run_finished() || !self.queue.is_empty() {
                return Ok(());
            }
            if self.slots.iter().any(|s| s.current.is_some()) {
                return Ok(());
            }
            if self.pending_in_wave() > 0 {
                // Pending work that is neither queued nor in flight can
                // only mean a module bounced back between ticks; re-queue.
                let wave = self.wave;
                let missing: Vec<usize> = (0..self.start.modules)
                    .filter(|i| !self.quarantined.contains(i) && !self.done.contains(&(wave, *i)))
                    .collect();
                self.queue.extend(missing);
                return Ok(());
            }
            self.wave += 1;
            if self.run_finished() {
                return Ok(());
            }
            self.log(format_args!("wave {} begins", self.wave));
            let wave = self.wave;
            let pending: Vec<usize> = (0..self.start.modules)
                .filter(|i| !self.quarantined.contains(i) && !self.done.contains(&(wave, *i)))
                .collect();
            self.queue.extend(pending);
        }
    }

    fn spawn_worker(&mut self, worker: usize, socket: &std::path::Path) {
        if self.slots[worker].retired {
            return;
        }
        let exe = self
            .opts
            .worker_exe
            .clone()
            .or_else(|| std::env::current_exe().ok());
        let Some(exe) = exe else {
            self.retire(worker, "no worker executable");
            return;
        };
        let incarnation = self.slots[worker].incarnation;
        let mut cmd = Command::new(exe);
        cmd.arg("serve")
            .arg("--socket")
            .arg(socket)
            .arg("--worker")
            .arg(worker.to_string())
            .arg("--incarnation")
            .arg(incarnation.to_string())
            .arg("--suite")
            .arg(&self.start.suite)
            .arg("--sink-dir")
            .arg(&self.start.sink_dir)
            .arg("--threads")
            .arg(self.start.threads.to_string())
            .arg("--scale")
            .arg(self.start.scale.to_string())
            .arg("--seed")
            .arg(self.start.seed.to_string())
            .arg("--deadline-ms")
            .arg(self.start.deadline_ms.to_string())
            .arg("--heartbeat-ms")
            .arg(self.opts.heartbeat_ms.to_string())
            .stdin(Stdio::null());
        match &self.opts.chaos {
            Some(plan) => {
                cmd.env(CHAOS_ENV, plan.to_env());
            }
            None => {
                cmd.env_remove(CHAOS_ENV);
            }
        }
        match cmd.spawn() {
            Ok(child) => {
                let slot = &mut self.slots[worker];
                slot.child = Some(child);
                slot.last_seen = Instant::now();
            }
            Err(e) => {
                let slot = &mut self.slots[worker];
                slot.spawn_failures += 1;
                if slot.spawn_failures >= self.opts.max_spawn_failures {
                    self.retire(worker, &format!("spawn failed repeatedly: {e}"));
                } else {
                    slot.respawn_at = Some(Instant::now() + Duration::from_millis(200));
                }
            }
        }
    }

    /// Graceful degradation: the slot stops respawning; the fleet runs on.
    fn retire(&mut self, worker: usize, why: &str) {
        let slot = &mut self.slots[worker];
        slot.retired = true;
        slot.child = None;
        slot.stream = None;
        if let Some((_, index, _)) = slot.current.take() {
            self.queue.push_back(index);
        }
        self.log(format_args!("worker slot {worker} retired: {why}"));
    }

    fn shutdown_workers(&mut self, graceful: bool) {
        if graceful {
            for slot in &mut self.slots {
                if let Some(stream) = &mut slot.stream {
                    let _ = write_frame(stream, &Frame::Shutdown);
                }
            }
            let deadline = Instant::now() + Duration::from_secs(3);
            for slot in &mut self.slots {
                if let Some(child) = &mut slot.child {
                    while Instant::now() < deadline {
                        match child.try_wait() {
                            Ok(Some(_)) => break,
                            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                            Err(_) => break,
                        }
                    }
                }
            }
        }
        for slot in &mut self.slots {
            if let Some(child) = &mut slot.child {
                let _ = child.kill();
                let _ = child.wait();
            }
            slot.child = None;
            slot.stream = None;
        }
    }

    /// Loads one execution's sink and folds every record into the ledger.
    fn harvest_sink(&mut self, index: usize, sink: &std::path::Path) -> Result<(), FleetError> {
        let Ok(records) = DurableSink::load(sink) else {
            return Ok(()); // the worker died before the sink existed
        };
        for record in records {
            self.record_violation(index, &record)?;
        }
        Ok(())
    }

    /// Sweeps the whole sink directory (resume start; run end). After this,
    /// ledger violations are exactly the union of worker sinks.
    fn harvest_all_sinks(&mut self) -> Result<(), FleetError> {
        let Ok(entries) = std::fs::read_dir(&self.opts.sink_dir) else {
            return Ok(());
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some((_wave, index, _attempt)) = crate::ledger::parse_sink_name(&name) else {
                continue;
            };
            self.harvest_sink(index, &entry.path())?;
        }
        Ok(())
    }

    fn save_traps(&self) {
        let path = Ledger::traps_path(&self.opts.ledger);
        if let Err(e) = self.traps.save(&path) {
            self.log(format_args!("trap file save failed: {e}"));
        }
    }
}

fn reader_thread(conn: UnixStream, tx: mpsc::Sender<Event>) {
    let mut reader = conn;
    let (worker, incarnation) = match read_frame(&mut reader) {
        Ok(Frame::Hello(hello)) => {
            let stream = match reader.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let _ = tx.send(Event::Hello {
                worker: hello.worker,
                incarnation: hello.incarnation,
                pid: hello.pid,
                stream,
            });
            (hello.worker, hello.incarnation)
        }
        _ => return, // not a worker (e.g. the shutdown dummy connection)
    };
    loop {
        match read_frame(&mut reader) {
            Ok(frame) => {
                if tx
                    .send(Event::Frame {
                        worker,
                        incarnation,
                        frame,
                    })
                    .is_err()
                {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(Event::Eof {
                    worker,
                    incarnation,
                    reason: e.to_string(),
                });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_error_display_is_informative() {
        let e = FleetError::AllWorkersRetired { pending: 3 };
        assert!(e.to_string().contains("3 module(s)"));
        let e = FleetError::Ledger("boom".into());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn standard_options_are_sane() {
        let opts = FleetOptions::standard(
            SuiteSpec::Std {
                modules: 10,
                seed: 1,
            },
            PathBuf::from("/tmp/l.jsonl"),
            PathBuf::from("/tmp/sinks"),
        );
        assert!(opts.hang_timeout_ms > 3 * opts.heartbeat_ms);
        assert!(opts.quarantine_kill_limit >= 1);
        assert!(opts.module_attempt_limit >= 1);
    }
}
