//! The suite runner: executes modules under detectors and aggregates.

use std::collections::{HashMap, HashSet};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use tsvd_core::near_miss::SitePair;
use tsvd_core::{Runtime, TrapFileData, TsvdConfig};
use tsvd_workloads::module::{Expectation, Module, ModuleCtx};

/// The detectors of Table 2 (plus the passive baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Instrumented, never delays — the overhead baseline.
    Noop,
    /// §3.2 DynamicRandom.
    DynamicRandom,
    /// §3.3 StaticRandom — the paper's DataCollider emulation.
    DataCollider,
    /// §3.5 TSVD-HB.
    TsvdHb,
    /// §3.4 TSVD.
    Tsvd,
}

impl DetectorKind {
    /// The four detectors compared in Table 2, in the paper's row order.
    pub const TABLE2: [DetectorKind; 4] = [
        DetectorKind::DataCollider,
        DetectorKind::DynamicRandom,
        DetectorKind::TsvdHb,
        DetectorKind::Tsvd,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Noop => "Baseline",
            DetectorKind::DynamicRandom => "DynamicRandom",
            DetectorKind::DataCollider => "DataCollider",
            DetectorKind::TsvdHb => "TSVD-HB",
            DetectorKind::Tsvd => "TSVD",
        }
    }

    /// Builds a fresh runtime of this kind.
    pub fn build(self, config: TsvdConfig) -> Arc<Runtime> {
        match self {
            DetectorKind::Noop => Runtime::noop(config),
            DetectorKind::DynamicRandom => Runtime::dynamic_random(config),
            DetectorKind::DataCollider => Runtime::static_random(config),
            DetectorKind::TsvdHb => Runtime::tsvd_hb(config),
            DetectorKind::Tsvd => Runtime::tsvd(config),
        }
    }
}

/// A bug, uniquely identified suite-wide: generated modules share scenario
/// source, so the paper's static-location-pair key is scoped per module.
pub type BugKey = (String, SitePair);

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Detector configuration (already scaled).
    pub config: TsvdConfig,
    /// Pool workers per module.
    pub threads: usize,
    /// Number of test runs (trap files carry over between runs).
    pub runs: usize,
    /// Extension (beyond the paper): one *shared* trap file for the whole
    /// suite instead of one per module. In a monorepo, modules exercise the
    /// same library code, so a dangerous pair learned while testing one
    /// module pre-arms the same static locations everywhere else — even
    /// within run 1, for modules scheduled later.
    pub shared_trap_file: bool,
    /// Wall-clock deadline for a single module execution. When set, each
    /// module runs on a watched thread; blowing the deadline abandons the
    /// runtime (delays cancelled, injection off) and records a
    /// [`ModuleOutcome::TimedOut`] instead of hanging the suite.
    pub module_deadline: Option<Duration>,
    /// Statically predicted dangerous pairs (`tsvd-analyze` output),
    /// imported into every module's runtime *in addition to* any carried
    /// trap file. Pre-arms traps before the first dynamic run, the static
    /// analogue of §3.4.6's cross-run persistence.
    pub static_priors: Option<TrapFileData>,
}

impl RunOptions {
    /// Two runs at CI scale — the paper's standard setting.
    pub fn standard() -> RunOptions {
        RunOptions {
            config: TsvdConfig::paper().scaled(0.02),
            threads: 2,
            runs: 2,
            shared_trap_file: false,
            module_deadline: Some(Duration::from_secs(30)),
            static_priors: None,
        }
    }

    /// `standard()` with static priors attached.
    pub fn with_static_priors(priors: TrapFileData) -> RunOptions {
        RunOptions {
            static_priors: Some(priors),
            ..RunOptions::standard()
        }
    }
}

/// How a single module execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModuleOutcome {
    /// The module body returned normally.
    Completed,
    /// The module body panicked (the panic was contained; the suite goes on).
    Panicked,
    /// The module blew its deadline and its runtime was abandoned.
    TimedOut,
}

impl ModuleOutcome {
    /// Stable textual form used by the fleet wire protocol and ledger.
    pub fn as_str(self) -> &'static str {
        match self {
            ModuleOutcome::Completed => "completed",
            ModuleOutcome::Panicked => "panicked",
            ModuleOutcome::TimedOut => "timed_out",
        }
    }

    /// Inverse of [`ModuleOutcome::as_str`].
    pub fn parse(text: &str) -> Option<ModuleOutcome> {
        match text {
            "completed" => Some(ModuleOutcome::Completed),
            "panicked" => Some(ModuleOutcome::Panicked),
            "timed_out" => Some(ModuleOutcome::TimedOut),
            _ => None,
        }
    }
}

/// Result of [`run_module_once`]: the runtime (reports, stats, trap file)
/// plus how the execution ended.
pub struct ModuleRun {
    /// The runtime the module ran under.
    pub runtime: Arc<Runtime>,
    /// Wall-clock nanoseconds the execution took.
    pub wall_ns: u64,
    /// How it ended.
    pub outcome: ModuleOutcome,
}

/// Per-run aggregate of a suite execution.
#[derive(Debug, Clone, Default)]
pub struct RunAggregate {
    /// Bugs first discovered in this run.
    pub new_bugs: Vec<BugKey>,
    /// Wall-clock nanoseconds spent executing modules this run.
    pub wall_ns: u64,
    /// Delays injected this run.
    pub delays: u64,
    /// Actual nanoseconds slept in injected delays this run.
    pub delay_ns: u64,
    /// `OnCall`s observed this run.
    pub on_calls: u64,
}

/// Outcome of running one suite under one detector for N runs.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Detector display name.
    pub detector: &'static str,
    /// Per-run aggregates, index 0 = run 1.
    pub runs: Vec<RunAggregate>,
    /// Every unique bug found, with the (1-based) run that found it.
    pub bugs: HashMap<BugKey, usize>,
    /// Total occurrences per bug (repeat catches included).
    pub occurrences: HashMap<BugKey, usize>,
    /// Peak strategy memory estimate across module runs, bytes.
    pub peak_strategy_bytes: usize,
    /// Module executions that blew their deadline (runtime abandoned).
    pub timeouts: usize,
    /// Module executions whose body panicked (contained).
    pub panics: usize,
}

impl SuiteOutcome {
    /// Unique bugs found in run `run` (1-based).
    pub fn bugs_in_run(&self, run: usize) -> usize {
        self.runs.get(run - 1).map_or(0, |r| r.new_bugs.len())
    }

    /// Total unique bugs.
    pub fn total_bugs(&self) -> usize {
        self.bugs.len()
    }

    /// Total delays injected across runs.
    pub fn total_delays(&self) -> u64 {
        self.runs.iter().map(|r| r.delays).sum()
    }

    /// Total nanoseconds actually slept in injected delays.
    pub fn total_delay_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.delay_ns).sum()
    }

    /// Total wall time across runs.
    pub fn total_wall_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.wall_ns).sum()
    }

    /// Cumulative unique-bug counts after each run (for Fig. 8).
    pub fn cumulative_bugs(&self) -> Vec<usize> {
        let mut total = 0;
        self.runs
            .iter()
            .map(|r| {
                total += r.new_bugs.len();
                total
            })
            .collect()
    }
}

/// Runs `module` once under a fresh runtime. Panics in the module body are
/// contained; with a deadline configured the body runs on a watched thread
/// and is abandoned (runtime degraded to passive, delays cancelled) when it
/// overruns.
pub fn run_module_once(
    module: &Module,
    kind: DetectorKind,
    options: &RunOptions,
    trap_file: Option<&TrapFileData>,
) -> ModuleRun {
    let rt = kind.build(options.config.clone());
    // Carried trap file and static priors merge (carried origins win for
    // pairs both know about); either alone imports directly.
    match (trap_file, &options.static_priors) {
        (Some(tf), Some(priors)) => {
            let mut merged = tf.clone();
            merged.merge(priors);
            rt.import_trap_file(&merged);
        }
        (Some(tf), None) => rt.import_trap_file(tf),
        (None, Some(priors)) => rt.import_trap_file(priors),
        (None, None) => {}
    }
    let ctx = ModuleCtx::new(rt.clone(), options.threads);
    let start = Instant::now();
    let outcome = match options.module_deadline {
        None => {
            let body = std::panic::AssertUnwindSafe(|| module.run(&ctx));
            match std::panic::catch_unwind(body) {
                Ok(()) => ModuleOutcome::Completed,
                Err(_) => ModuleOutcome::Panicked,
            }
        }
        Some(deadline) => run_watched(module, ctx, deadline, &rt),
    };
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    ModuleRun {
        runtime: rt,
        wall_ns,
        outcome,
    }
}

/// Runs the module body on a watched thread with a wall-clock deadline.
fn run_watched(
    module: &Module,
    ctx: ModuleCtx,
    deadline: Duration,
    rt: &Arc<Runtime>,
) -> ModuleOutcome {
    let (tx, rx) = mpsc::channel::<bool>();
    let m = module.clone();
    let watched = std::thread::Builder::new()
        .name(format!("tsvd-module-{}", m.name()))
        .spawn(move || {
            let body = std::panic::AssertUnwindSafe(|| m.run(&ctx));
            let ok = std::panic::catch_unwind(body).is_ok();
            let _ = tx.send(ok);
        })
        .expect("spawn watched module thread");
    match rx.recv_timeout(deadline) {
        Ok(true) => {
            let _ = watched.join();
            ModuleOutcome::Completed
        }
        Ok(false) => {
            let _ = watched.join();
            ModuleOutcome::Panicked
        }
        Err(_) => {
            // Deadline blown. Abandoning cancels every injected delay and
            // turns injection off, so a module wedged *behind* delays can
            // drain; give it one more deadline to do so.
            rt.abandon();
            if rx.recv_timeout(deadline).is_ok() {
                let _ = watched.join();
            }
            // If it is still stuck the thread is detached: its pool and
            // runtime stay alive behind Arcs and the suite moves on.
            ModuleOutcome::TimedOut
        }
    }
}

/// Runs the whole suite under `kind` for `options.runs` runs, carrying each
/// module's trap file from run to run (§3.4.6).
pub fn run_suite(suite: &[Module], kind: DetectorKind, options: &RunOptions) -> SuiteOutcome {
    let mut outcome = SuiteOutcome {
        detector: kind.name(),
        runs: Vec::with_capacity(options.runs),
        bugs: HashMap::new(),
        occurrences: HashMap::new(),
        peak_strategy_bytes: 0,
        timeouts: 0,
        panics: 0,
    };
    let mut trap_files: HashMap<String, TrapFileData> = HashMap::new();
    let mut shared: TrapFileData = TrapFileData::default();

    for run_idx in 0..options.runs {
        let mut agg = RunAggregate::default();
        // Each test run gets fresh randomness (the paper re-runs the same
        // tools, whose sampling differs run to run); without this the
        // probabilistic detectors would repeat themselves exactly and
        // Fig. 8's curves could never climb.
        let mut run_options = options.clone();
        run_options.config.seed = options
            .config
            .seed
            .wrapping_add((run_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for module in suite {
            let import = if options.shared_trap_file {
                Some(&shared)
            } else {
                trap_files.get(module.name())
            };
            let run = run_module_once(module, kind, &run_options, import);
            let (rt, wall_ns) = (run.runtime, run.wall_ns);
            match run.outcome {
                ModuleOutcome::Completed => {}
                ModuleOutcome::Panicked => outcome.panics += 1,
                ModuleOutcome::TimedOut => outcome.timeouts += 1,
            }
            agg.wall_ns += wall_ns;
            agg.delays += rt.stats().delays_injected();
            agg.delay_ns += rt.stats().delay_total_ns();
            agg.on_calls += rt.stats().on_calls();
            outcome.peak_strategy_bytes =
                outcome.peak_strategy_bytes.max(rt.strategy_memory_bytes());
            for (pair, count) in rt.reports().occurrence_counts() {
                let key: BugKey = (module.name().to_owned(), pair);
                *outcome.occurrences.entry(key.clone()).or_insert(0) += count;
                if !outcome.bugs.contains_key(&key) {
                    outcome.bugs.insert(key.clone(), run_idx + 1);
                    agg.new_bugs.push(key);
                }
            }
            if let Some(tf) = rt.export_trap_file() {
                if options.shared_trap_file {
                    // Merge, deduplicating textual pairs.
                    for pair in tf.pairs {
                        if !shared.pairs.contains(&pair) {
                            shared.pairs.push(pair);
                        }
                    }
                } else {
                    trap_files.insert(module.name().to_owned(), tf);
                }
            }
        }
        outcome.runs.push(agg);
    }
    outcome
}

/// Runs the suite once per run under the passive baseline and returns the
/// total wall time, for overhead computation.
pub fn baseline_wall_ns(suite: &[Module], options: &RunOptions) -> u64 {
    let outcome = run_suite(suite, DetectorKind::Noop, options);
    outcome.total_wall_ns()
}

/// Overhead of `outcome` relative to a baseline wall time, in percent.
pub fn overhead_pct(outcome: &SuiteOutcome, baseline_ns: u64) -> f64 {
    if baseline_ns == 0 {
        return 0.0;
    }
    (outcome.total_wall_ns() as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
}

/// Splits the found bugs by whether their module's ground truth says they
/// were planted (sanity: a `Clean` module must never appear here).
pub fn check_no_false_positives(suite: &[Module], outcome: &SuiteOutcome) -> Result<(), String> {
    let clean: HashSet<&str> = suite
        .iter()
        .filter(|m| m.expectation() == Expectation::Clean)
        .map(|m| m.name())
        .collect();
    for (module, pair) in outcome.bugs.keys() {
        if clean.contains(module.as_str()) {
            return Err(format!(
                "false positive: clean module {module} reported pair {} / {}",
                pair.first, pair.second
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_workloads::suite::{build_suite, SuiteConfig};

    fn options() -> RunOptions {
        RunOptions {
            config: TsvdConfig::paper().scaled(0.02),
            threads: 2,
            runs: 2,
            shared_trap_file: false,
            module_deadline: Some(Duration::from_secs(30)),
            static_priors: None,
        }
    }

    #[test]
    fn tsvd_finds_bugs_and_no_false_positives_on_tiny_suite() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options());
        check_no_false_positives(&suite, &outcome).expect("no false positives ever");
        assert!(
            outcome.total_bugs() >= 1,
            "tiny suite has 7+ planted bugs; TSVD must catch at least one"
        );
    }

    #[test]
    fn noop_finds_nothing() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Noop, &options());
        assert_eq!(outcome.total_bugs(), 0);
        assert_eq!(outcome.total_delays(), 0);
    }

    #[test]
    fn cumulative_bugs_is_monotonic() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options());
        let cum = outcome.cumulative_bugs();
        assert_eq!(cum.len(), 2);
        assert!(cum[1] >= cum[0]);
        assert_eq!(*cum.last().expect("two runs"), outcome.total_bugs());
    }

    #[test]
    fn panicking_module_is_contained() {
        use tsvd_workloads::module::{Expectation, Module};
        let m = Module::new("boom", 1, Expectation::Clean, false, "List", |_| {
            panic!("module body explodes")
        });
        let run = run_module_once(&m, DetectorKind::Tsvd, &options(), None);
        assert_eq!(run.outcome, ModuleOutcome::Panicked);
        assert_eq!(run.runtime.live_traps(), 0);
        // The suite path counts it and keeps going.
        let outcome = run_suite(&[m], DetectorKind::Tsvd, &options());
        assert_eq!(outcome.panics, options().runs);
    }

    #[test]
    fn overrunning_module_times_out_and_degrades() {
        use tsvd_workloads::module::{Expectation, Module};
        // The body sleeps far past the deadline in plain thread sleeps the
        // watchdog cannot cancel — only the deadline machinery ends it.
        let m = Module::new("slow", 1, Expectation::Clean, false, "List", |_| {
            std::thread::sleep(Duration::from_millis(400));
        });
        let mut opts = options();
        opts.module_deadline = Some(Duration::from_millis(50));
        let start = Instant::now();
        let run = run_module_once(&m, DetectorKind::Tsvd, &opts, None);
        assert_eq!(run.outcome, ModuleOutcome::TimedOut);
        assert!(run.runtime.is_passive(), "timeout must abandon the runtime");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "the runner must not wait for the stuck body forever"
        );
    }

    #[test]
    fn overhead_is_computed_relative_to_baseline() {
        let suite = build_suite(SuiteConfig {
            modules: 8,
            seed: 5,
        });
        let opts = options();
        let base = baseline_wall_ns(&suite, &opts);
        assert!(base > 0);
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &opts);
        let pct = overhead_pct(&outcome, base);
        assert!(pct > -90.0, "overhead {pct}% looks wrong");
    }
}
