//! The fleet worker: one process, one connection, one module at a time.
//!
//! A worker connects to the daemon's Unix socket, introduces itself with a
//! `Hello` frame, heartbeats on a side thread, and then loops: receive an
//! assignment, rebuild the module from the shared suite spec, run it under
//! a fresh TSVD runtime with a **per-execution durable sink**, and report.
//! Violations reach the daemon twice by design — write-ahead in the sink
//! file (survives any death) and streamed as frames (fast path) — so a
//! worker dying at any instant loses nothing: the daemon harvests the sink.
//!
//! Under a chaos plan the worker sabotages itself deterministically:
//! aborting after the module ran but before streaming (`Kill`), wedging
//! with heartbeats suppressed (`Stall`), or writing half a `Done` frame
//! (`Torn`). Each exercises a distinct supervisor recovery path.

use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use tsvd_core::{DurableSink, TrapFileData, TsvdConfig};
use tsvd_workloads::module::Module;

use crate::chaos::{ChaosPlan, FaultDecision};
use crate::runner::{run_module_once, DetectorKind, RunOptions};
use crate::suites::SuiteSpec;
use crate::wire::{read_frame, write_frame, write_torn_frame, Done, Frame, Hello, ViolationMsg};

/// Everything a worker process is told on its command line.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Daemon socket path.
    pub socket: PathBuf,
    /// Worker slot index.
    pub worker: usize,
    /// Slot incarnation this process is.
    pub incarnation: u64,
    /// Suite spec string (see [`SuiteSpec`]).
    pub suite: String,
    /// Directory for per-execution durable sinks.
    pub sink_dir: PathBuf,
    /// Pool threads per module.
    pub threads: usize,
    /// Detector time-constant scale.
    pub scale: f64,
    /// Base suite seed (per-wave reseeding matches `run_suite`).
    pub seed: u64,
    /// Per-module deadline, milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Heartbeat interval, milliseconds.
    pub heartbeat_ms: u64,
}

/// Per-execution sink file name, parsed back by the daemon's reconciler.
pub fn sink_file_name(wave: usize, index: usize, attempt: u32) -> String {
    format!("w{wave}_m{index}_a{attempt}.jsonl")
}

/// Runs the worker loop until the daemon says `Shutdown` or the connection
/// dies. The chaos plan, if any, comes from the environment
/// ([`crate::chaos::CHAOS_ENV`]).
pub fn serve_worker(opts: &WorkerOptions) -> Result<(), String> {
    let spec = SuiteSpec::parse(&opts.suite)?;
    let suite = spec.build();
    let chaos = ChaosPlan::from_process_env();

    let stream = UnixStream::connect(&opts.socket)
        .map_err(|e| format!("connect {}: {e}", opts.socket.display()))?;
    let mut reader = stream
        .try_clone()
        .map_err(|e| format!("clone stream: {e}"))?;
    let writer = Arc::new(Mutex::new(stream));

    {
        let mut w = writer.lock();
        write_frame(
            &mut *w,
            &Frame::Hello(Hello {
                worker: opts.worker,
                incarnation: opts.incarnation,
                pid: std::process::id(),
            }),
        )
        .map_err(|e| format!("hello: {e}"))?;
    }

    // Heartbeats ride the same write mutex as results, so frames never
    // interleave. The stall flag silences them without closing the socket —
    // exactly the failure mode of a wedged-but-alive process.
    let stalled = Arc::new(AtomicBool::new(false));
    let hb_writer = writer.clone();
    let hb_stalled = stalled.clone();
    let hb_interval = Duration::from_millis(opts.heartbeat_ms.max(1));
    std::thread::Builder::new()
        .name("tsvd-fleet-heartbeat".into())
        .spawn(move || loop {
            std::thread::sleep(hb_interval);
            if hb_stalled.load(Ordering::Relaxed) {
                continue;
            }
            let mut w = hb_writer.lock();
            if write_frame(&mut *w, &Frame::Heartbeat).is_err() {
                return;
            }
        })
        .map_err(|e| format!("spawn heartbeat thread: {e}"))?;

    let mut ordinal: u64 = 0;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) => return Err(format!("daemon connection lost: {e}")),
        };
        let assign = match frame {
            Frame::Assign(a) => a,
            Frame::Shutdown => return Ok(()),
            other => {
                eprintln!("tsvd-fleet: worker ignoring unexpected frame {other:?}");
                continue;
            }
        };
        let decision = chaos
            .map(|plan| plan.decide(opts.worker, opts.incarnation, ordinal))
            .unwrap_or(FaultDecision::None);
        ordinal += 1;

        if decision == FaultDecision::Stall {
            // Wedge: alive, socket open, no heartbeats, no result. Only the
            // daemon's hang timeout can end this.
            stalled.store(true, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(
                chaos.map(|p| p.stall_ms).unwrap_or(1_000),
            ));
            std::process::exit(3);
        }

        let Some(module) = suite.get(assign.index) else {
            return Err(format!("assigned module {} out of range", assign.index));
        };
        let sink_path =
            opts.sink_dir
                .join(sink_file_name(assign.wave, assign.index, assign.attempt));
        let run = execute(module, opts, assign.wave, &sink_path, &assign.traps);

        match decision {
            FaultDecision::Kill => {
                // The module ran and its sink has the records; die before
                // the daemon hears anything. Harvest-on-death must recover
                // every violation.
                std::process::abort();
            }
            FaultDecision::Torn => {
                let done = done_frame(&run, &assign, &sink_path);
                let mut w = writer.lock();
                let _ = write_torn_frame(&mut *w, &Frame::Done(done));
                std::process::abort();
            }
            FaultDecision::Stall => unreachable!("handled before execution"),
            FaultDecision::None => {}
        }

        // Stream the sink back — reading the file we just wrote (rather
        // than in-memory reports) guarantees frames ⊆ sink, the invariant
        // reconciliation checks.
        let records = DurableSink::load(&sink_path).unwrap_or_default();
        let done = done_frame(&run, &assign, &sink_path);
        let mut w = writer.lock();
        for record in records {
            write_frame(
                &mut *w,
                &Frame::Violation(ViolationMsg {
                    wave: assign.wave,
                    index: assign.index,
                    record,
                }),
            )
            .map_err(|e| format!("stream violation: {e}"))?;
        }
        write_frame(&mut *w, &Frame::Done(done)).map_err(|e| format!("stream done: {e}"))?;
    }
}

struct Execution {
    outcome: &'static str,
    wall_ns: u64,
    delays: u64,
    on_calls: u64,
    traps: Option<TrapFileData>,
}

fn execute(
    module: &Module,
    opts: &WorkerOptions,
    wave: usize,
    sink_path: &Path,
    traps: &TrapFileData,
) -> Execution {
    let mut config = TsvdConfig::paper().scaled(opts.scale);
    // Waves reseed exactly like `run_suite` runs, so fleet results are
    // comparable to the sequential baseline module for module.
    config.seed = opts
        .seed
        .wrapping_add((wave as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    config.durable_sink = Some(sink_path.to_path_buf());
    let options = RunOptions {
        config,
        threads: opts.threads,
        runs: 1,
        shared_trap_file: false,
        module_deadline: (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms)),
        static_priors: None,
    };
    let import = (!traps.pairs.is_empty()).then_some(traps);
    let run = run_module_once(module, DetectorKind::Tsvd, &options, import);
    run.runtime.flush_durable_sink();
    Execution {
        outcome: run.outcome.as_str(),
        wall_ns: run.wall_ns,
        delays: run.runtime.stats().delays_injected(),
        on_calls: run.runtime.stats().on_calls(),
        traps: run.runtime.export_trap_file(),
    }
}

fn done_frame(run: &Execution, assign: &crate::wire::Assign, sink_path: &Path) -> Done {
    Done {
        wave: assign.wave,
        index: assign.index,
        attempt: assign.attempt,
        outcome: run.outcome.to_string(),
        wall_ns: run.wall_ns,
        delays: run.delays,
        on_calls: run.on_calls,
        dangerous_pairs: run
            .traps
            .as_ref()
            .map(|t| t.pairs.len() as u64)
            .unwrap_or(0),
        traps: run.traps.clone(),
        sink: sink_path.display().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_names_match_the_reconciler() {
        let name = sink_file_name(2, 17, 1);
        assert_eq!(crate::ledger::parse_sink_name(&name), Some((2, 17, 1)));
    }
}
