//! Fleet mode: fault-tolerant, supervised multi-process TSVD runs.
//!
//! The paper runs TSVD "during testing" at cluster scale, where worker
//! processes hang, crash, and get preempted as a matter of course; finding
//! thousands of bugs requires the *campaign* to survive every one of those
//! failures without losing a caught violation or re-running finished work.
//! This crate is that layer:
//!
//! - [`runner`] — the single-process suite runner (modules, detectors,
//!   outcomes), shared by the sequential harness and fleet workers;
//! - [`wire`] — the length-prefixed JSONL socket protocol between daemon
//!   and workers, grown from the durable-sink record format;
//! - [`worker`] — the worker process loop (`repro serve`);
//! - [`supervisor`] — the daemon (`repro fleet`): sharding, heartbeats,
//!   hang detection, retry with capped backoff, quarantine, degradation;
//! - [`ledger`] — the write-ahead JSONL ledger every decision goes through
//!   first, making runs crash-resumable (`repro fleet --resume`) and
//!   exactly reconcilable against worker sinks;
//! - [`chaos`] — deterministic fault injection (`repro fleet --chaos`)
//!   proving the recovery paths in CI;
//! - [`suites`] — process-independent suite specs workers rebuild modules
//!   from (module bodies are closures and never cross the socket).

#![warn(missing_docs)]

pub mod chaos;
pub mod ledger;
pub mod runner;
pub mod suites;
pub mod supervisor;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosPlan, FaultDecision, CHAOS_ENV};
pub use ledger::{merge_sink_dir, replay, verify, Ledger, LedgerEvent, LedgerState, VerifySummary};
pub use runner::{DetectorKind, ModuleOutcome, ModuleRun, RunOptions, SuiteOutcome};
pub use suites::SuiteSpec;
pub use supervisor::{run_fleet, FleetError, FleetOptions, FleetReport};
pub use wire::{Frame, WIRE_SCHEMA_VERSION};
pub use worker::{serve_worker, WorkerOptions};
