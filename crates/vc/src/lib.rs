//! Vector-clock substrate for TSVD-HB (§3.5 of the paper).
//!
//! The paper's TSVD-HB variant represents vector clocks with *immutable*
//! AVL tree-maps instead of the traditional mutable arrays, so that a
//! message-send (or any similar synchronization) event is an `O(1)`
//! by-reference copy, an increment is `O(log n)`, and the common
//! fork-join-without-TSVD-points case is an `O(1)` reference-equality check.
//!
//! This crate provides:
//!
//! - [`avl`] — a persistent (structurally shared) AVL tree map,
//! - [`imm`] — immutable vector clocks over that map ([`imm::ImmutableVc`]),
//! - [`mutable`] — a traditional mutable vector clock ([`mutable::MutableVc`])
//!   used as the comparison baseline in the `vc_ops` benchmark.

#![warn(missing_docs)]

pub mod avl;
pub mod imm;
pub mod mutable;

pub use avl::AvlMap;
pub use imm::ImmutableVc;
pub use mutable::MutableVc;

/// Identifier of a logical clock component (a thread or task).
pub type ClockId = u64;

/// A single logical timestamp value.
pub type Stamp = u64;

/// Partial order between two vector clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockOrder {
    /// The two clocks are identical component-wise.
    Equal,
    /// The left clock happens-before the right clock.
    Before,
    /// The right clock happens-before the left clock.
    After,
    /// Neither clock happens-before the other: the events are concurrent.
    Concurrent,
}

impl ClockOrder {
    /// Returns `true` if the order implies the left event happened before or
    /// at the same point as the right event.
    pub fn is_before_or_equal(self) -> bool {
        matches!(self, ClockOrder::Before | ClockOrder::Equal)
    }

    /// Returns `true` if the two events are concurrent.
    pub fn is_concurrent(self) -> bool {
        matches!(self, ClockOrder::Concurrent)
    }
}
