//! Traditional mutable vector clocks.
//!
//! This is the baseline representation the paper contrasts TSVD-HB's
//! immutable clocks against: increments are `O(1)` in-place updates, but
//! every message send must deep-copy the whole `O(n)` table. The `vc_ops`
//! benchmark regenerates that comparison.

use std::collections::HashMap;

use crate::{ClockId, ClockOrder, Stamp};

/// A mutable vector clock backed by a hash table.
///
/// # Examples
///
/// ```
/// use tsvd_vc::{MutableVc, ClockOrder};
///
/// let mut a = MutableVc::new();
/// a.increment(1);
/// let mut b = a.clone(); // O(n) deep copy — the cost TSVD-HB avoids.
/// b.increment(2);
/// assert_eq!(a.compare(&b), ClockOrder::Before);
/// ```
#[derive(Clone, Default, Debug)]
pub struct MutableVc {
    map: HashMap<ClockId, Stamp>,
}

impl MutableVc {
    /// Creates the zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the component for `id` (zero if absent).
    pub fn get(&self, id: ClockId) -> Stamp {
        self.map.get(&id).copied().unwrap_or(0)
    }

    /// Increments component `id` in place.
    pub fn increment(&mut self, id: ClockId) {
        *self.map.entry(id).or_insert(0) += 1;
    }

    /// Sets component `id` to `stamp` in place.
    pub fn set(&mut self, id: ClockId, stamp: Stamp) {
        self.map.insert(id, stamp);
    }

    /// Joins `other` into `self` (element-wise max, in place).
    pub fn join_from(&mut self, other: &Self) {
        for (&id, &stamp) in &other.map {
            let e = self.map.entry(id).or_insert(0);
            if *e < stamp {
                *e = stamp;
            }
        }
    }

    /// Compares the two clocks under the happens-before partial order.
    pub fn compare(&self, other: &Self) -> ClockOrder {
        let mut le = true;
        let mut ge = true;
        for (&id, &stamp) in &self.map {
            let o = other.get(id);
            if stamp > o {
                le = false;
            }
            if stamp < o {
                ge = false;
            }
        }
        for (&id, &stamp) in &other.map {
            let s = self.get(id);
            if s < stamp {
                ge = false;
            }
            if s > stamp {
                le = false;
            }
        }
        match (le, ge) {
            (true, true) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (false, false) => ClockOrder::Concurrent,
        }
    }

    /// Returns `true` if `self` happens-before-or-equals `other`.
    pub fn le(&self, other: &Self) -> bool {
        self.map.iter().all(|(&id, &stamp)| stamp <= other.get(id))
    }

    /// Number of non-zero components.
    pub fn components(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(id, stamp)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ClockId, Stamp)> + '_ {
        self.map.iter().map(|(&id, &stamp)| (id, stamp))
    }
}

impl PartialEq for MutableVc {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == ClockOrder::Equal
    }
}

impl Eq for MutableVc {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increment_and_get() {
        let mut vc = MutableVc::new();
        vc.increment(3);
        vc.increment(3);
        assert_eq!(vc.get(3), 2);
        assert_eq!(vc.get(1), 0);
    }

    #[test]
    fn join_from_takes_max() {
        let mut a = MutableVc::new();
        a.set(1, 5);
        a.set(2, 1);
        let mut b = MutableVc::new();
        b.set(1, 2);
        b.set(3, 7);
        a.join_from(&b);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
        assert_eq!(a.get(3), 7);
    }

    #[test]
    fn compare_matches_partial_order() {
        let mut a = MutableVc::new();
        a.set(1, 1);
        let mut b = a.clone();
        b.increment(1);
        assert_eq!(a.compare(&b), ClockOrder::Before);
        assert_eq!(b.compare(&a), ClockOrder::After);
        let mut c = MutableVc::new();
        c.set(2, 1);
        assert_eq!(a.compare(&c), ClockOrder::Concurrent);
        assert_eq!(a.compare(&a.clone()), ClockOrder::Equal);
    }
}
