//! Immutable vector clocks over persistent AVL maps.
//!
//! These are the clocks TSVD-HB uses (§3.5). The three cost-model properties
//! the paper relies on are all present:
//!
//! 1. **Send is `O(1)`** — [`ImmutableVc::clone`] copies a pointer.
//! 2. **Increment is `O(log n)`** — [`ImmutableVc::increment`] rebuilds only
//!    the spine of the AVL map, and TSVD-HB only increments at (infrequent)
//!    TSVD points.
//! 3. **Join has an `O(1)` fast path** — [`ImmutableVc::join`] first checks
//!    reference equality; a fork/join that crossed no TSVD point joins the
//!    *same* clock object and skips the element-wise max entirely.

use crate::avl::AvlMap;
use crate::{ClockId, ClockOrder, Stamp};

/// An immutable vector clock.
///
/// Missing components are implicitly zero, so freshly created tasks cost
/// nothing until they pass a TSVD point.
///
/// # Examples
///
/// ```
/// use tsvd_vc::{ImmutableVc, ClockOrder};
///
/// let a = ImmutableVc::new().increment(1);
/// let b = a.increment(2);
/// assert_eq!(a.compare(&b), ClockOrder::Before);
/// ```
#[derive(Clone, Default)]
pub struct ImmutableVc {
    map: AvlMap<ClockId, Stamp>,
}

impl ImmutableVc {
    /// Creates the zero clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the component for `id` (zero if absent).
    pub fn get(&self, id: ClockId) -> Stamp {
        self.map.get(&id).copied().unwrap_or(0)
    }

    /// Returns a clock with component `id` incremented by one.
    pub fn increment(&self, id: ClockId) -> Self {
        ImmutableVc {
            map: self.map.insert(id, self.get(id) + 1),
        }
    }

    /// Returns a clock with component `id` set to `stamp`.
    pub fn with(&self, id: ClockId, stamp: Stamp) -> Self {
        ImmutableVc {
            map: self.map.insert(id, stamp),
        }
    }

    /// Returns the element-wise maximum of the two clocks.
    ///
    /// When the clocks are the same object (the common fork/join-without-
    /// TSVD-points case) this is `O(1)`; it also short-circuits when either
    /// side is empty.
    pub fn join(&self, other: &Self) -> Self {
        if self.map.ptr_eq(&other.map) || other.map.is_empty() {
            return self.clone();
        }
        if self.map.is_empty() {
            return other.clone();
        }
        // Merge the smaller clock into the larger one to minimize rebuilds.
        let (base, add) = if self.map.len() >= other.map.len() {
            (&self.map, &other.map)
        } else {
            (&other.map, &self.map)
        };
        let mut out = base.clone();
        for (&id, &stamp) in add.iter() {
            if out.get(&id).copied().unwrap_or(0) < stamp {
                out = out.insert(id, stamp);
            }
        }
        ImmutableVc { map: out }
    }

    /// Compares the two clocks under the happens-before partial order.
    pub fn compare(&self, other: &Self) -> ClockOrder {
        if self.map.ptr_eq(&other.map) {
            return ClockOrder::Equal;
        }
        let mut le = true; // self <= other
        let mut ge = true; // self >= other
        for (&id, &stamp) in self.map.iter() {
            let o = other.get(id);
            if stamp > o {
                le = false;
            }
            if stamp < o {
                ge = false;
            }
            if !le && !ge {
                return ClockOrder::Concurrent;
            }
        }
        for (&id, &stamp) in other.map.iter() {
            let s = self.get(id);
            if s < stamp {
                ge = false;
            }
            if s > stamp {
                le = false;
            }
            if !le && !ge {
                return ClockOrder::Concurrent;
            }
        }
        match (le, ge) {
            (true, true) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (false, false) => ClockOrder::Concurrent,
        }
    }

    /// Returns `true` if every component of `self` is `<=` the corresponding
    /// component of `other` — i.e. `self` happens-before-or-equals `other`.
    pub fn le(&self, other: &Self) -> bool {
        if self.map.ptr_eq(&other.map) {
            return true;
        }
        self.map.iter().all(|(&id, &stamp)| stamp <= other.get(id))
    }

    /// Returns `true` if the two clocks share the same underlying map object.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        self.map.ptr_eq(&other.map)
    }

    /// Number of non-zero components.
    pub fn components(&self) -> usize {
        self.map.len()
    }

    /// Iterates over `(id, stamp)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (ClockId, Stamp)> + '_ {
        self.map.iter().map(|(&id, &stamp)| (id, stamp))
    }
}

impl std::fmt::Debug for ImmutableVc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl PartialEq for ImmutableVc {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == ClockOrder::Equal
    }
}

impl Eq for ImmutableVc {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_clock() {
        let vc = ImmutableVc::new();
        assert_eq!(vc.get(0), 0);
        assert_eq!(vc.get(42), 0);
        assert_eq!(vc.components(), 0);
    }

    #[test]
    fn increment_is_persistent() {
        let a = ImmutableVc::new().increment(1);
        let b = a.increment(1);
        assert_eq!(a.get(1), 1);
        assert_eq!(b.get(1), 2);
    }

    #[test]
    fn join_takes_elementwise_max() {
        let a = ImmutableVc::new().with(1, 5).with(2, 1);
        let b = ImmutableVc::new().with(1, 2).with(3, 7);
        let j = a.join(&b);
        assert_eq!(j.get(1), 5);
        assert_eq!(j.get(2), 1);
        assert_eq!(j.get(3), 7);
    }

    #[test]
    fn join_same_object_is_identity() {
        let a = ImmutableVc::new().with(1, 5);
        let b = a.clone();
        let j = a.join(&b);
        assert!(j.ptr_eq(&a), "ref-equality fast path must return same map");
    }

    #[test]
    fn join_with_empty_returns_other_side() {
        let a = ImmutableVc::new().with(1, 5);
        let e = ImmutableVc::new();
        assert!(a.join(&e).ptr_eq(&a));
        assert!(e.join(&a).ptr_eq(&a));
    }

    #[test]
    fn compare_orders() {
        let a = ImmutableVc::new().with(1, 1);
        let b = a.increment(1);
        assert_eq!(a.compare(&b), ClockOrder::Before);
        assert_eq!(b.compare(&a), ClockOrder::After);
        assert_eq!(a.compare(&a.clone()), ClockOrder::Equal);

        let c = ImmutableVc::new().with(2, 1);
        assert_eq!(a.compare(&c), ClockOrder::Concurrent);
    }

    #[test]
    fn compare_with_implicit_zeros() {
        let a = ImmutableVc::new().with(1, 1);
        let empty = ImmutableVc::new();
        assert_eq!(empty.compare(&a), ClockOrder::Before);
        assert_eq!(a.compare(&empty), ClockOrder::After);
    }

    #[test]
    fn le_matches_compare() {
        let a = ImmutableVc::new().with(1, 1).with(2, 3);
        let b = a.increment(1);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.le(&a.clone()));
    }

    #[test]
    fn structural_equality_across_objects() {
        let a = ImmutableVc::new().with(1, 1).with(2, 2);
        let b = ImmutableVc::new().with(2, 2).with(1, 1);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }

    #[test]
    fn fork_join_simulation() {
        // Parent forks a child; the child does no TSVD-point increments;
        // on join, the parent's clock is reference-equal to the joined one.
        let parent = ImmutableVc::new().increment(1).increment(1);
        let child = parent.clone(); // Fork: O(1) send.
        let joined = parent.join(&child); // Join: O(1) fast path.
        assert!(joined.ptr_eq(&parent));
    }
}
