//! A persistent (immutable, structurally shared) AVL tree map.
//!
//! Every update returns a new map that shares all untouched subtrees with the
//! original via [`Arc`]. This is the representation the paper chooses for
//! TSVD-HB vector clocks: copying a clock on a message send is a pointer
//! copy, while an increment rebuilds only the `O(log n)` spine.

use std::cmp::Ordering;
use std::sync::Arc;

/// A persistent AVL tree map from `K` to `V`.
///
/// Cloning an [`AvlMap`] is `O(1)` and shares structure with the original.
///
/// # Examples
///
/// ```
/// use tsvd_vc::AvlMap;
///
/// let a = AvlMap::new().insert(1, "one").insert(2, "two");
/// let b = a.insert(2, "TWO");
/// assert_eq!(a.get(&2), Some(&"two"));
/// assert_eq!(b.get(&2), Some(&"TWO"));
/// ```
#[derive(Clone)]
pub struct AvlMap<K, V> {
    root: Option<Arc<Node<K, V>>>,
}

struct Node<K, V> {
    key: K,
    value: V,
    height: u8,
    len: usize,
    left: Option<Arc<Node<K, V>>>,
    right: Option<Arc<Node<K, V>>>,
}

fn height<K, V>(n: &Option<Arc<Node<K, V>>>) -> u8 {
    n.as_ref().map_or(0, |n| n.height)
}

fn len<K, V>(n: &Option<Arc<Node<K, V>>>) -> usize {
    n.as_ref().map_or(0, |n| n.len)
}

impl<K: Ord + Clone, V: Clone> Node<K, V> {
    fn make(
        key: K,
        value: V,
        left: Option<Arc<Node<K, V>>>,
        right: Option<Arc<Node<K, V>>>,
    ) -> Arc<Node<K, V>> {
        Arc::new(Node {
            height: 1 + height(&left).max(height(&right)),
            len: 1 + len(&left) + len(&right),
            key,
            value,
            left,
            right,
        })
    }

    fn balance_factor(&self) -> i16 {
        height(&self.left) as i16 - height(&self.right) as i16
    }

    /// Rebuilds this node with the given children, restoring the AVL
    /// invariant with at most two rotations.
    fn balanced(
        key: K,
        value: V,
        left: Option<Arc<Node<K, V>>>,
        right: Option<Arc<Node<K, V>>>,
    ) -> Arc<Node<K, V>> {
        let bf = height(&left) as i16 - height(&right) as i16;
        if bf > 1 {
            // Left-heavy. `bf > 1` implies `left` exists.
            let l = left.expect("left child must exist when left-heavy");
            if l.balance_factor() >= 0 {
                // Left-left: single right rotation.
                let new_right = Node::make(key, value, l.right.clone(), right);
                Node::make(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    Some(new_right),
                )
            } else {
                // Left-right: rotate left child left, then rotate right.
                let lr = l.right.clone().expect("left-right child must exist");
                let new_left = Node::make(
                    l.key.clone(),
                    l.value.clone(),
                    l.left.clone(),
                    lr.left.clone(),
                );
                let new_right = Node::make(key, value, lr.right.clone(), right);
                Node::make(
                    lr.key.clone(),
                    lr.value.clone(),
                    Some(new_left),
                    Some(new_right),
                )
            }
        } else if bf < -1 {
            // Right-heavy, mirror image.
            let r = right.expect("right child must exist when right-heavy");
            if r.balance_factor() <= 0 {
                let new_left = Node::make(key, value, left, r.left.clone());
                Node::make(
                    r.key.clone(),
                    r.value.clone(),
                    Some(new_left),
                    r.right.clone(),
                )
            } else {
                let rl = r.left.clone().expect("right-left child must exist");
                let new_left = Node::make(key, value, left, rl.left.clone());
                let new_right = Node::make(
                    r.key.clone(),
                    r.value.clone(),
                    rl.right.clone(),
                    r.right.clone(),
                );
                Node::make(
                    rl.key.clone(),
                    rl.value.clone(),
                    Some(new_left),
                    Some(new_right),
                )
            }
        } else {
            Node::make(key, value, left, right)
        }
    }

    fn insert(node: &Option<Arc<Node<K, V>>>, key: K, value: V) -> Arc<Node<K, V>> {
        match node {
            None => Node::make(key, value, None, None),
            Some(n) => match key.cmp(&n.key) {
                Ordering::Equal => Node::make(key, value, n.left.clone(), n.right.clone()),
                Ordering::Less => {
                    let new_left = Node::insert(&n.left, key, value);
                    Node::balanced(
                        n.key.clone(),
                        n.value.clone(),
                        Some(new_left),
                        n.right.clone(),
                    )
                }
                Ordering::Greater => {
                    let new_right = Node::insert(&n.right, key, value);
                    Node::balanced(
                        n.key.clone(),
                        n.value.clone(),
                        n.left.clone(),
                        Some(new_right),
                    )
                }
            },
        }
    }

    /// Removes `key`, returning the new subtree (or `None` if it becomes
    /// empty) and whether the key was present.
    fn remove(node: &Option<Arc<Node<K, V>>>, key: &K) -> (Option<Arc<Node<K, V>>>, bool) {
        match node {
            None => (None, false),
            Some(n) => match key.cmp(&n.key) {
                Ordering::Less => {
                    let (new_left, removed) = Node::remove(&n.left, key);
                    if !removed {
                        return (Some(n.clone()), false);
                    }
                    (
                        Some(Node::balanced(
                            n.key.clone(),
                            n.value.clone(),
                            new_left,
                            n.right.clone(),
                        )),
                        true,
                    )
                }
                Ordering::Greater => {
                    let (new_right, removed) = Node::remove(&n.right, key);
                    if !removed {
                        return (Some(n.clone()), false);
                    }
                    (
                        Some(Node::balanced(
                            n.key.clone(),
                            n.value.clone(),
                            n.left.clone(),
                            new_right,
                        )),
                        true,
                    )
                }
                Ordering::Equal => match (&n.left, &n.right) {
                    (None, None) => (None, true),
                    (Some(l), None) => (Some(l.clone()), true),
                    (None, Some(r)) => (Some(r.clone()), true),
                    (Some(_), Some(r)) => {
                        // Replace with the in-order successor (min of right).
                        let (succ_k, succ_v) = Node::min_entry(r);
                        let (new_right, _) = Node::remove(&n.right, &succ_k);
                        (
                            Some(Node::balanced(succ_k, succ_v, n.left.clone(), new_right)),
                            true,
                        )
                    }
                },
            },
        }
    }

    fn min_entry(node: &Arc<Node<K, V>>) -> (K, V) {
        let mut cur = node;
        while let Some(l) = &cur.left {
            cur = l;
        }
        (cur.key.clone(), cur.value.clone())
    }
}

impl<K, V> Default for AvlMap<K, V> {
    fn default() -> Self {
        AvlMap { root: None }
    }
}

impl<K: Ord + Clone, V: Clone> AvlMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        len(&self.root)
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Returns a new map with `key` bound to `value`.
    pub fn insert(&self, key: K, value: V) -> Self {
        AvlMap {
            root: Some(Node::insert(&self.root, key, value)),
        }
    }

    /// Returns a new map without `key` (and whether it was present).
    pub fn remove(&self, key: &K) -> (Self, bool) {
        let (root, removed) = Node::remove(&self.root, key);
        (AvlMap { root }, removed)
    }

    /// Looks up `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match key.cmp(&n.key) {
                Ordering::Equal => return Some(&n.value),
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
            }
        }
        None
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// Returns `true` if `self` and `other` share the same root node.
    ///
    /// This is the `O(1)` fast path the paper exploits: after a fork-join
    /// with no intervening TSVD points, the joined clock *is* the same
    /// object, so an element-wise max can be skipped entirely.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        match (&self.root, &other.root) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Iterates over entries in ascending key order.
    pub fn iter(&self) -> Iter<'_, K, V> {
        let mut stack = Vec::with_capacity(height(&self.root) as usize);
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            stack.push(n);
            cur = n.left.as_deref();
        }
        Iter { stack }
    }

    /// Checks the AVL balance and ordering invariants (test helper).
    #[doc(hidden)]
    pub fn check_invariants(&self) -> bool {
        fn check<K: Ord, V>(n: &Option<Arc<Node<K, V>>>) -> Option<(u8, usize)> {
            match n {
                None => Some((0, 0)),
                Some(n) => {
                    let (lh, ll) = check(&n.left)?;
                    let (rh, rl) = check(&n.right)?;
                    if (lh as i16 - rh as i16).abs() > 1 {
                        return None;
                    }
                    if let Some(l) = &n.left {
                        if l.key >= n.key {
                            return None;
                        }
                    }
                    if let Some(r) = &n.right {
                        if r.key <= n.key {
                            return None;
                        }
                    }
                    let h = 1 + lh.max(rh);
                    let l = 1 + ll + rl;
                    if h != n.height || l != n.len {
                        return None;
                    }
                    Some((h, l))
                }
            }
        }
        check(&self.root).is_some()
    }
}

/// In-order iterator over an [`AvlMap`].
pub struct Iter<'a, K, V> {
    stack: Vec<&'a Node<K, V>>,
}

impl<'a, K, V> Iterator for Iter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        let mut cur = node.right.as_deref();
        while let Some(n) = cur {
            self.stack.push(n);
            cur = n.left.as_deref();
        }
        Some((&node.key, &node.value))
    }
}

impl<K: Ord + Clone + std::fmt::Debug, V: Clone + std::fmt::Debug> std::fmt::Debug
    for AvlMap<K, V>
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K: Ord + Clone, V: Clone + PartialEq> PartialEq for AvlMap<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K: Ord + Clone, V: Clone + Eq> Eq for AvlMap<K, V> {}

impl<K: Ord + Clone, V: Clone> FromIterator<(K, V)> for AvlMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        iter.into_iter()
            .fold(AvlMap::new(), |m, (k, v)| m.insert(k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: AvlMap<u64, u64> = AvlMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.get(&1), None);
        assert!(m.check_invariants());
    }

    #[test]
    fn insert_and_get() {
        let m = AvlMap::new().insert(2, "b").insert(1, "a").insert(3, "c");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), Some(&"c"));
        assert_eq!(m.get(&4), None);
        assert!(m.check_invariants());
    }

    #[test]
    fn insert_overwrites() {
        let m = AvlMap::new().insert(1, 10).insert(1, 20);
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(&1), Some(&20));
    }

    #[test]
    fn persistence_after_insert() {
        let a = AvlMap::new().insert(1, 10);
        let b = a.insert(1, 20);
        let c = a.insert(2, 30);
        assert_eq!(a.get(&1), Some(&10));
        assert_eq!(b.get(&1), Some(&20));
        assert_eq!(c.get(&1), Some(&10));
        assert_eq!(c.get(&2), Some(&30));
        assert_eq!(a.len(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn ascending_insert_stays_balanced() {
        let mut m = AvlMap::new();
        for i in 0..1000u64 {
            m = m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert!(m.check_invariants());
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn descending_insert_stays_balanced() {
        let mut m = AvlMap::new();
        for i in (0..1000u64).rev() {
            m = m.insert(i, i);
        }
        assert!(m.check_invariants());
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn remove_leaf_and_internal() {
        let mut m = AvlMap::new();
        for i in 0..64u64 {
            m = m.insert(i, i);
        }
        let (m2, removed) = m.remove(&31);
        assert!(removed);
        assert_eq!(m2.len(), 63);
        assert_eq!(m2.get(&31), None);
        assert_eq!(m.get(&31), Some(&31), "original is untouched");
        assert!(m2.check_invariants());
        let (m3, removed) = m2.remove(&31);
        assert!(!removed);
        assert_eq!(m3.len(), 63);
    }

    #[test]
    fn iter_is_sorted() {
        let m: AvlMap<u64, u64> = [5, 3, 8, 1, 9, 2].iter().map(|&k| (k, k)).collect();
        let keys: Vec<u64> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![1, 2, 3, 5, 8, 9]);
    }

    #[test]
    fn ptr_eq_fast_path() {
        let a = AvlMap::new().insert(1u64, 1u64);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = a.insert(2, 2);
        assert!(!a.ptr_eq(&c));
        let empty1: AvlMap<u64, u64> = AvlMap::new();
        let empty2: AvlMap<u64, u64> = AvlMap::new();
        assert!(empty1.ptr_eq(&empty2));
    }

    #[test]
    fn equality_is_structural() {
        let a = AvlMap::new().insert(1, 1).insert(2, 2);
        let b = AvlMap::new().insert(2, 2).insert(1, 1);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
    }
}
