//! Property-based tests for the vector-clock substrate.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use std::collections::BTreeMap;

use proptest::prelude::*;
use tsvd_vc::{AvlMap, ClockOrder, ImmutableVc, MutableVc};

/// Operations applied to both the AVL map and a `BTreeMap` model.
#[derive(Debug, Clone)]
enum MapOp {
    Insert(u16, u32),
    Remove(u16),
}

fn map_op() -> impl Strategy<Value = MapOp> {
    prop_oneof![
        (any::<u16>(), any::<u32>()).prop_map(|(k, v)| MapOp::Insert(k, v)),
        any::<u16>().prop_map(MapOp::Remove),
    ]
}

proptest! {
    /// The persistent AVL map behaves exactly like `BTreeMap` and keeps its
    /// balance invariants under arbitrary insert/remove sequences.
    #[test]
    fn avl_matches_btreemap_model(ops in proptest::collection::vec(map_op(), 0..200)) {
        let mut avl: AvlMap<u16, u32> = AvlMap::new();
        let mut model: BTreeMap<u16, u32> = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Insert(k, v) => {
                    avl = avl.insert(k, v);
                    model.insert(k, v);
                }
                MapOp::Remove(k) => {
                    let (next, removed) = avl.remove(&k);
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                    avl = next;
                }
            }
            prop_assert!(avl.check_invariants());
            prop_assert_eq!(avl.len(), model.len());
        }
        let got: Vec<(u16, u32)> = avl.iter().map(|(&k, &v)| (k, v)).collect();
        let want: Vec<(u16, u32)> = model.iter().map(|(&k, &v)| (k, v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Earlier versions of a persistent map are unaffected by later updates.
    #[test]
    fn avl_persistence(kvs in proptest::collection::vec((any::<u16>(), any::<u32>()), 1..50)) {
        let mut versions: Vec<(AvlMap<u16, u32>, BTreeMap<u16, u32>)> = Vec::new();
        let mut avl = AvlMap::new();
        let mut model = BTreeMap::new();
        for (k, v) in kvs {
            avl = avl.insert(k, v);
            model.insert(k, v);
            versions.push((avl.clone(), model.clone()));
        }
        for (snap, model) in &versions {
            for (k, v) in model {
                prop_assert_eq!(snap.get(k), Some(v));
            }
            prop_assert_eq!(snap.len(), model.len());
        }
    }
}

/// Clock operations applied to parallel immutable/mutable vector clocks.
#[derive(Debug, Clone)]
enum VcOp {
    /// Increment clock `i`'s component for id.
    Inc(usize, u8),
    /// Join clock `j` into clock `i`.
    Join(usize, usize),
}

fn vc_op(n: usize) -> impl Strategy<Value = VcOp> {
    prop_oneof![
        (0..n, any::<u8>()).prop_map(|(i, id)| VcOp::Inc(i, id % 8)),
        (0..n, 0..n).prop_map(|(i, j)| VcOp::Join(i, j)),
    ]
}

proptest! {
    /// The immutable AVL-backed clocks and the traditional mutable clocks
    /// compute identical component values and identical orderings under any
    /// interleaving of increments and joins.
    #[test]
    fn immutable_equals_mutable(ops in proptest::collection::vec(vc_op(4), 0..120)) {
        let mut imm: Vec<ImmutableVc> = (0..4).map(|_| ImmutableVc::new()).collect();
        let mut mutv: Vec<MutableVc> = (0..4).map(|_| MutableVc::new()).collect();
        for op in ops {
            match op {
                VcOp::Inc(i, id) => {
                    imm[i] = imm[i].increment(id as u64);
                    mutv[i].increment(id as u64);
                }
                VcOp::Join(i, j) => {
                    let other = imm[j].clone();
                    imm[i] = imm[i].join(&other);
                    let other = mutv[j].clone();
                    mutv[i].join_from(&other);
                }
            }
        }
        for (a, b) in imm.iter().zip(&mutv) {
            for id in 0..8u64 {
                prop_assert_eq!(a.get(id), b.get(id));
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                prop_assert_eq!(imm[i].compare(&imm[j]), mutv[i].compare(&mutv[j]));
            }
        }
    }

    /// `compare` is antisymmetric and consistent with `le`.
    #[test]
    fn compare_consistency(
        a in proptest::collection::vec(0u64..6, 0..20),
        b in proptest::collection::vec(0u64..6, 0..20),
    ) {
        let mut va = ImmutableVc::new();
        for id in &a { va = va.increment(*id); }
        let mut vb = ImmutableVc::new();
        for id in &b { vb = vb.increment(*id); }
        let ab = va.compare(&vb);
        let ba = vb.compare(&va);
        let expected = match ab {
            ClockOrder::Equal => ClockOrder::Equal,
            ClockOrder::Before => ClockOrder::After,
            ClockOrder::After => ClockOrder::Before,
            ClockOrder::Concurrent => ClockOrder::Concurrent,
        };
        prop_assert_eq!(ba, expected);
        prop_assert_eq!(va.le(&vb), ab.is_before_or_equal());
    }

    /// Join produces the least upper bound: both inputs are `<=` the join,
    /// and the join of a clock with itself is itself.
    #[test]
    fn join_is_lub(
        a in proptest::collection::vec(0u64..6, 0..20),
        b in proptest::collection::vec(0u64..6, 0..20),
    ) {
        let mut va = ImmutableVc::new();
        for id in &a { va = va.increment(*id); }
        let mut vb = ImmutableVc::new();
        for id in &b { vb = vb.increment(*id); }
        let j = va.join(&vb);
        prop_assert!(va.le(&j));
        prop_assert!(vb.le(&j));
        for id in 0..6u64 {
            prop_assert_eq!(j.get(id), va.get(id).max(vb.get(id)));
        }
        let jj = j.join(&j.clone());
        prop_assert!(jj.ptr_eq(&j));
    }
}
