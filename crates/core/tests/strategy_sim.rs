//! Strategy-level simulation tests: drive the TSVD and TSVD-HB planners
//! with synthetic event streams (no real threads, no sleeps) and check
//! algorithm invariants over arbitrary interleavings.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use tsvd_core::access::{Access, ObjId, OpKind};
use tsvd_core::context::ContextId;
use tsvd_core::near_miss::SitePair;
use tsvd_core::site::{SiteData, SiteId};
use tsvd_core::strategy::{Strategy as DetectorStrategy, SyncEvent, Tsvd, TsvdHb};
use tsvd_core::TsvdConfig;

fn site(n: u32) -> SiteId {
    SiteId::intern(SiteData {
        file: "strategy_sim.rs",
        line: n,
        column: 1,
    })
}

/// One synthetic event delivered to a strategy.
#[derive(Debug, Clone)]
enum Event {
    /// An access: (context, object, site index, is-write, time step).
    Access(u8, u8, u8, bool),
    /// A completed delay at the last-accessed site of a context.
    DelayDone(u8, u8, bool),
    /// A confirmed violation between two sites.
    Violation(u8, u8),
    /// A synchronization event (fork/join chain).
    Fork(u8, u8),
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u8..4, 0u8..3, 0u8..5, any::<bool>()).prop_map(|(c, o, s, w)| Event::Access(c, o, s, w)),
        (0u8..4, 0u8..5, any::<bool>()).prop_map(|(c, s, x)| Event::DelayDone(c, s, x)),
        (0u8..5, 0u8..5).prop_map(|(a, b)| Event::Violation(a, b)),
        (0u8..4, 4u8..8).prop_map(|(p, c)| Event::Fork(p, c)),
    ]
}

fn drive(strategy: &dyn DetectorStrategy, events: &[Event]) -> Vec<SitePair> {
    let mut found = Vec::new();
    let mut now: u64 = 0;
    for e in events {
        now += 1_000; // 1 µs steps: everything is inside the 2 ms window.
        match *e {
            Event::Access(c, o, s, w) => {
                let access = Access {
                    context: ContextId(u64::from(c)),
                    obj: ObjId(u64::from(o)),
                    site: site(u32::from(s)),
                    op_name: "sim.op",
                    kind: if w { OpKind::Write } else { OpKind::Read },
                    time_ns: now,
                };
                let _ = strategy.on_access(&access);
            }
            Event::DelayDone(c, s, caught) => {
                let access = Access {
                    context: ContextId(u64::from(c)),
                    obj: ObjId(0),
                    site: site(u32::from(s)),
                    op_name: "sim.op",
                    kind: OpKind::Write,
                    time_ns: now,
                };
                strategy.on_delay_complete(&access, now.saturating_sub(500), now, caught);
            }
            Event::Violation(a, b) => {
                let pair = SitePair::new(site(u32::from(a)), site(u32::from(b)));
                strategy.on_violation(pair);
                found.push(pair);
            }
            Event::Fork(p, c) => {
                strategy.on_sync(&SyncEvent::Fork {
                    parent: ContextId(u64::from(p)),
                    child: ContextId(u64::from(c)),
                });
            }
        }
    }
    found
}

proptest! {
    /// TSVD never panics and never re-arms a found pair, under arbitrary
    /// event interleavings.
    #[test]
    fn tsvd_found_pairs_never_rearm(events in proptest::collection::vec(event(), 0..200)) {
        let s = Tsvd::new(&TsvdConfig::for_testing());
        let found = drive(&s, &events);
        for pair in found {
            prop_assert!(!s.is_armed(pair), "found pair {pair:?} re-armed");
        }
    }

    /// TSVD's trap set stays within the number of distinct site pairs that
    /// can possibly conflict (25 sites → 15 unordered pairs of 5 sites).
    #[test]
    fn tsvd_trap_set_is_bounded(events in proptest::collection::vec(event(), 0..300)) {
        let s = Tsvd::new(&TsvdConfig::for_testing());
        drive(&s, &events);
        prop_assert!(s.trap_set_len() <= 15);
    }

    /// should_delay fires only at armed locations: a site no event ever
    /// touched never delays.
    #[test]
    fn tsvd_never_delays_unseen_sites(events in proptest::collection::vec(event(), 0..150)) {
        let s = Tsvd::new(&TsvdConfig::for_testing());
        drive(&s, &events);
        let fresh = Access {
            context: ContextId(99),
            obj: ObjId(99),
            site: site(999),
            op_name: "sim.op",
            kind: OpKind::Write,
            time_ns: 10_000_000,
        };
        prop_assert_eq!(s.on_access(&fresh), None);
    }

    /// TSVD-HB holds the same invariants under the same streams (plus sync
    /// events feeding its clocks).
    #[test]
    fn tsvd_hb_found_pairs_never_rearm(events in proptest::collection::vec(event(), 0..200)) {
        let s = TsvdHb::new(&TsvdConfig::for_testing());
        let found = drive(&s, &events);
        for pair in found {
            prop_assert!(!s.is_armed(pair), "found pair {pair:?} re-armed");
        }
        prop_assert!(s.trap_set_len() <= 15);
    }

    /// Trap-file export/import is lossless for both strategies at any
    /// point in an event stream.
    #[test]
    fn trap_file_snapshot_is_lossless(events in proptest::collection::vec(event(), 0..150)) {
        let s = Tsvd::new(&TsvdConfig::for_testing());
        drive(&s, &events);
        let exported = s.export_trap_file().expect("tsvd persists");
        let restored = Tsvd::new(&TsvdConfig::for_testing());
        restored.import_trap_file(&exported);
        let mut a = exported.to_pairs();
        let mut b = restored.export_trap_file().expect("persists").to_pairs();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}
