//! Property-based tests for the core detection components.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use tsvd_core::access::{Access, ObjId, OpKind};
use tsvd_core::context::ContextId;
use tsvd_core::decay::DecayTable;
use tsvd_core::hb_infer::{DelayRecord, HbInference};
use tsvd_core::near_miss::{NearMissTracker, SitePair};
use tsvd_core::report::{Party, ReportSink, Violation};
use tsvd_core::site::{SiteData, SiteId};
use tsvd_core::trap_file::TrapFileData;
use tsvd_core::trapset::TrapSet;

fn site(n: u32) -> SiteId {
    SiteId::intern(SiteData {
        file: "proptests.rs",
        line: n,
        column: 1,
    })
}

fn access(ctx: u64, obj: u64, s: u32, write: bool, t_ns: u64) -> Access {
    Access {
        context: ContextId(ctx),
        obj: ObjId(obj),
        site: site(s),
        op_name: "p.op",
        kind: if write { OpKind::Write } else { OpKind::Read },
        time_ns: t_ns,
    }
}

proptest! {
    /// Pair normalization: construction order never matters.
    #[test]
    fn site_pair_is_unordered(a in 0u32..50, b in 0u32..50) {
        let p1 = SitePair::new(site(a), site(b));
        let p2 = SitePair::new(site(b), site(a));
        prop_assert_eq!(p1, p2);
        prop_assert!(p1.contains(site(a)) && p1.contains(site(b)));
    }

    /// Near misses reported by the tracker always satisfy the paper's
    /// predicate: different contexts, same object, conflicting kinds,
    /// within the window.
    #[test]
    fn near_misses_satisfy_conflict_predicate(
        accesses in proptest::collection::vec(
            (0u64..4, 0u64..3, 0u32..6, any::<bool>(), 0u64..200), 1..100),
    ) {
        let window_ns = 50u64;
        let tracker = NearMissTracker::new(5, Some(window_ns), 1024);
        let mut history: Vec<Access> = Vec::new();
        for (ctx, obj, s, write, t) in accesses {
            let a = access(ctx, obj, s, write, t);
            let pairs = tracker.record(&a);
            for pair in &pairs {
                // Some retained earlier access must justify this pair.
                let justified = history.iter().any(|prev| {
                    prev.context != a.context
                        && prev.obj == a.obj
                        && prev.kind.conflicts_with(a.kind)
                        && prev.time_ns.abs_diff(a.time_ns) <= window_ns
                        && SitePair::new(prev.site, a.site) == *pair
                });
                prop_assert!(justified, "unjustified pair {pair:?}");
            }
            history.push(a);
        }
    }

    /// The tracker never retains more than `history` entries per object,
    /// regardless of the access stream.
    #[test]
    fn near_miss_memory_is_bounded(
        accesses in proptest::collection::vec(
            (0u64..4, 0u64..8, 0u32..6, any::<bool>(), 0u64..1_000), 1..300),
        history in 1usize..6,
    ) {
        let tracker = NearMissTracker::new(history, Some(100), 4);
        for (ctx, obj, s, write, t) in accesses {
            tracker.record(&access(ctx, obj, s, write, t));
        }
        prop_assert!(tracker.tracked_objects() <= 4);
        prop_assert!(tracker.approx_bytes() < 64 * 1024);
    }

    /// Trap-set site reference counts stay consistent under arbitrary
    /// add/remove/mark-found interleavings.
    #[test]
    fn trap_set_refcounts_consistent(
        ops in proptest::collection::vec((0u8..4, 0u32..8, 0u32..8), 0..200),
    ) {
        let set = TrapSet::new();
        let mut model: std::collections::HashSet<SitePair> = Default::default();
        let mut found: std::collections::HashSet<SitePair> = Default::default();
        for (op, a, b) in ops {
            let pair = SitePair::new(site(a), site(b));
            match op {
                0 => {
                    let inserted = set.add(pair);
                    prop_assert_eq!(inserted, !found.contains(&pair) && model.insert(pair));
                }
                1 => {
                    let removed = set.remove(pair);
                    prop_assert_eq!(removed, model.remove(&pair));
                }
                2 => {
                    set.mark_found(pair);
                    model.remove(&pair);
                    found.insert(pair);
                }
                _ => {
                    let evicted = set.remove_site(site(a));
                    for p in &evicted {
                        prop_assert!(model.remove(p));
                    }
                }
            }
            prop_assert_eq!(set.len(), model.len());
            // Site membership agrees with the model.
            for s in 0..8u32 {
                let expect = model.iter().any(|p| p.contains(site(s)));
                prop_assert_eq!(set.contains_site(site(s)), expect);
            }
        }
    }

    /// Decay is monotone non-increasing and eviction is permanent until
    /// re-armed.
    #[test]
    fn decay_is_monotone(factor in 0.01f64..0.9, steps in 1usize..40) {
        let t = DecayTable::new(factor, 0.05);
        t.arm(site(1));
        let mut last = t.probability(site(1));
        for _ in 0..steps {
            let evicted = t.decay(site(1));
            let now = t.probability(site(1));
            prop_assert!(now <= last + 1e-12);
            if evicted {
                prop_assert_eq!(now, 0.0);
            }
            last = now;
        }
    }

    /// HB inference never attributes causality to the blocked thread's own
    /// delay, and inferred pairs always involve a recorded delay site.
    #[test]
    fn hb_inference_edges_are_justified(
        delays in proptest::collection::vec((0u64..3, 0u32..4, 0u64..500), 0..20),
        accesses in proptest::collection::vec((0u64..3, 4u32..8, 0u64..1_000), 1..60),
    ) {
        let e = HbInference::new(50, 2, 64);
        let mut delay_sites = std::collections::HashSet::new();
        for (ctx, s, start) in &delays {
            delay_sites.insert(site(*s));
            e.record_delay(DelayRecord {
                site: site(*s),
                context: ContextId(*ctx),
                start_ns: *start,
                end_ns: start + 100,
            });
        }
        for (ctx, s, t) in accesses {
            for pair in e.on_access(ContextId(ctx), site(s), t) {
                // One endpoint is the access; the other must be a delayed site.
                let partner = pair.other(site(s));
                prop_assert!(
                    delay_sites.contains(&partner) || partner == site(s),
                    "edge endpoint {partner:?} was never delayed"
                );
            }
        }
    }

    /// Report sink: unique-bug count equals the number of distinct
    /// unordered pairs reported, independent of order and repetition.
    #[test]
    fn report_dedup_is_exact(
        reports in proptest::collection::vec((0u32..6, 0u32..6, any::<bool>()), 1..80),
    ) {
        let sink = ReportSink::new();
        let mut model = std::collections::HashSet::new();
        for (a, b, swap) in reports {
            let (x, y) = if swap { (b, a) } else { (a, b) };
            let v = Violation {
                trapped: Party {
                    site: site(x),
                    context: ContextId(1),
                    op_name: "p.a",
                    kind: OpKind::Write,
                    stack: None,
                },
                hitter: Party {
                    site: site(y),
                    context: ContextId(2),
                    op_name: "p.b",
                    kind: OpKind::Write,
                    stack: None,
                },
                obj: ObjId(1),
                time_ns: 0,
            };
            let is_new = sink.report(v);
            prop_assert_eq!(is_new, model.insert(SitePair::new(site(x), site(y))));
        }
        prop_assert_eq!(sink.unique_bugs(), model.len());
    }

    /// Trap files round-trip arbitrary pair sets exactly.
    #[test]
    fn trap_file_round_trip(pairs in proptest::collection::vec((0u32..30, 0u32..30), 0..40)) {
        let pairs: Vec<SitePair> = pairs
            .into_iter()
            .map(|(a, b)| SitePair::new(site(a), site(b)))
            .collect();
        let data = TrapFileData::from_pairs(&pairs);
        let mut back = data.to_pairs();
        let mut want = pairs;
        back.sort();
        want.sort();
        prop_assert_eq!(back, want);
    }
}
