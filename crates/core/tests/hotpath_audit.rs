//! Proof that the batched zero-trap `OnCall` path performs zero lock
//! acquisitions and zero shared-memory writes.
//!
//! Every lock acquisition and shared write on the runtime's access paths is
//! annotated with `audit::note_lock` / `audit::note_shared_write` (see
//! `crates/core/src/audit.rs`). Under the `hotpath_audit` feature those
//! notes bump thread-local counters; this test drives a quiescent batched
//! runtime and asserts the counters stay at zero, with an inline-path
//! control leg proving the counters do fire where sharing happens.

#![cfg(feature = "hotpath_audit")]

use tsvd_core::{audit, ObjId, OpKind, Runtime, TsvdConfig};

#[test]
fn zero_trap_batched_path_performs_no_locks_and_no_shared_writes() {
    let mut cfg = TsvdConfig::for_testing();
    cfg.batch_capacity = 4_096;
    let rt = Runtime::tsvd(cfg);
    assert!(rt.is_batching());
    let site = tsvd_core::site!();

    // Warm-up: clock origin, context TLS, and the thread's buffer binding
    // are one-time setup costs, not per-call hot-path work.
    rt.on_call(ObjId(1), site, "x.write", OpKind::Write);

    audit::reset();
    for i in 0..1_000u64 {
        rt.on_call(ObjId(1 + (i % 16)), site, "x.write", OpKind::Write);
    }
    assert_eq!(
        rt.thread_buffered_events(),
        1_001,
        "everything must still be buffered (no flush happened mid-loop)"
    );
    assert_eq!(
        audit::lock_acquisitions(),
        0,
        "zero-trap batched path must acquire no locks"
    );
    assert_eq!(
        audit::shared_writes(),
        0,
        "zero-trap batched path must perform no shared-memory writes"
    );

    // Control: the flush itself *does* touch shared structures, so the
    // annotations are demonstrably live in this build.
    rt.flush_thread_events();
    assert!(
        audit::lock_acquisitions() > 0,
        "flushing must be visible to the audit"
    );
    assert!(audit::shared_writes() > 0);
}

#[test]
fn inline_path_is_visible_to_the_audit() {
    // Without batching every call takes the inline path, which by design
    // uses locks (near-miss shards, coverage maps) and shared writes
    // (counters, phase ring). The audit must see them.
    let rt = Runtime::tsvd(TsvdConfig::for_testing());
    assert!(!rt.is_batching());
    let site = tsvd_core::site!();
    audit::reset();
    for i in 0..10 {
        rt.on_call(ObjId(i), site, "x.write", OpKind::Write);
    }
    assert!(
        audit::lock_acquisitions() >= 10,
        "inline path locks per call"
    );
    assert!(audit::shared_writes() >= 10);
}
