//! Integration tests for the thread-local batching fast path.
//!
//! The contract under test: batching changes *when* observations reach the
//! shared analysis structures, never *which* observations do — and every
//! buffered observation is delivered before (or because) a trap goes live.

use std::sync::mpsc;
use std::time::Duration;

use tsvd_core::context::{self, ContextId};
use tsvd_core::near_miss::SitePair;
use tsvd_core::trap_file::{PairOrigin, TrapFileData};
use tsvd_core::{ObjId, OpKind, Runtime, SiteId, TsvdConfig};

/// A deterministic profile: no delays (budget zero), no phase gating, no
/// windowing, no HB inference — pair discovery depends only on the access
/// sequence, so batched and unbatched runs must agree exactly.
fn deterministic_config() -> TsvdConfig {
    let mut c = TsvdConfig::for_testing();
    c.max_delay_per_run_ns = 0;
    c.enable_phase_detection = false;
    c.enable_windowing = false;
    c.enable_hb_inference = false;
    c.decay_factor = 0.0;
    c
}

fn armed_pairs(rt: &Runtime) -> Vec<SitePair> {
    let data = rt.export_trap_file().expect("tsvd exports state");
    let mut pairs = data.to_pairs();
    pairs.sort();
    pairs
}

fn drive(rt: &Runtime, sites: &[SiteId; 3]) {
    // Three logical contexts interleave writes over four objects: plenty of
    // conflicting near-miss material, all on one driver thread.
    for round in 0..8u64 {
        for (i, site) in sites.iter().enumerate() {
            let _g = context::enter(ContextId(9_000 + i as u64));
            rt.on_call(ObjId(round % 4), *site, "x.write", OpKind::Write);
        }
    }
}

#[test]
fn batched_replay_discovers_the_same_pairs() {
    let sites = [tsvd_core::site!(), tsvd_core::site!(), tsvd_core::site!()];

    let unbatched = Runtime::tsvd(deterministic_config());
    assert!(!unbatched.is_batching());
    drive(&unbatched, &sites);

    let batched = Runtime::tsvd({
        let mut c = deterministic_config();
        c.batch_capacity = 10_000; // Everything stays local until the flush.
        c
    });
    assert!(batched.is_batching());
    drive(&batched, &sites);
    assert_eq!(
        batched.stats().on_calls(),
        0,
        "quiescent accesses must not touch shared statistics"
    );
    assert!(batched.thread_buffered_events() > 0);
    batched.flush_thread_events();

    assert_eq!(batched.thread_buffered_events(), 0);
    assert_eq!(batched.stats().on_calls(), unbatched.stats().on_calls());
    let expected = armed_pairs(&unbatched);
    assert!(!expected.is_empty(), "the schedule must arm something");
    assert_eq!(
        armed_pairs(&batched),
        expected,
        "batched replay must arm exactly the pairs the inline path armed"
    );
}

#[test]
fn arming_mid_storm_drains_every_live_thread() {
    // Two threads buffer conflicting observations, then a pair is armed
    // while their buffers are still local. The cooperative drain must make
    // every pre-arm near miss visible at each thread's next touch point —
    // including the (site_a, site_b) pair neither thread has flushed yet.
    let mut cfg = deterministic_config();
    cfg.batch_capacity = 1_000;
    // Allow real (tiny) delays so arming actually requests a drain.
    cfg.max_delay_per_run_ns = u64::MAX;
    cfg.delay_ns = 1;
    let rt = Runtime::tsvd(cfg);
    let site_a = tsvd_core::site!();
    let site_b = tsvd_core::site!();
    let seed_x = tsvd_core::site!();
    let seed_y = tsvd_core::site!();

    let (to_t1, t1_step) = mpsc::channel::<()>();
    let (to_t2, t2_step) = mpsc::channel::<()>();
    let (report, progress) = mpsc::channel::<&'static str>();

    std::thread::scope(|scope| {
        let rt1 = &rt;
        let rep1 = report.clone();
        scope.spawn(move || {
            rt1.on_call(ObjId(7), site_a, "x.write", OpKind::Write);
            assert_eq!(rt1.thread_buffered_events(), 1, "quiescent call buffers");
            rep1.send("t1-buffered").expect("main alive");
            t1_step.recv().expect("step signal");
            // Gate is closed now: this call must drain the buffer first.
            rt1.on_call(ObjId(991), site_a, "x.write", OpKind::Write);
            assert_eq!(rt1.thread_buffered_events(), 0, "drain on next touch");
        });
        let rt2 = &rt;
        let rep2 = report;
        scope.spawn(move || {
            rt2.on_call(ObjId(7), site_b, "x.write", OpKind::Write);
            assert_eq!(rt2.thread_buffered_events(), 1);
            rep2.send("t2-buffered").expect("main alive");
            t2_step.recv().expect("step signal");
            rt2.on_call(ObjId(992), site_b, "x.write", OpKind::Write);
            assert_eq!(rt2.thread_buffered_events(), 0);
        });

        for _ in 0..2 {
            progress
                .recv_timeout(Duration::from_secs(10))
                .expect("worker buffered");
        }
        assert_eq!(rt.stats().on_calls(), 0, "the storm is still local");

        // Mid-storm arming: seed an unrelated pair, then trip a delay at it
        // so a live trap requests the force-drain.
        let mut seed = TrapFileData::default();
        seed.push((seed_x.to_string(), seed_y.to_string()), PairOrigin::Static);
        rt.import_trap_file(&seed);
        rt.on_call(ObjId(99), seed_x, "x.write", OpKind::Write);
        assert!(rt.stats().drain_requests() >= 1, "arming requested a drain");

        to_t1.send(()).expect("t1 alive");
        to_t2.send(()).expect("t2 alive");
    });

    assert!(
        rt.stats().on_calls() >= 5,
        "every pre-arm observation must reach the shared stats, got {}",
        rt.stats().on_calls()
    );
    assert!(
        armed_pairs(&rt).contains(&SitePair::new(site_a, site_b)),
        "the near miss both threads had buffered must be armed after the drain"
    );
}

#[test]
fn thread_exit_flushes_the_local_buffer() {
    let mut cfg = deterministic_config();
    cfg.batch_capacity = 1_000;
    let rt = Runtime::tsvd(cfg);
    let site = tsvd_core::site!();
    std::thread::scope(|scope| {
        let rt = &rt;
        scope.spawn(move || {
            for i in 0..5 {
                rt.on_call(ObjId(i), site, "x.write", OpKind::Write);
            }
            assert_eq!(rt.thread_buffered_events(), 5);
            // No explicit flush: the TLS destructor must deliver these.
        });
    });
    assert_eq!(rt.stats().on_calls(), 5, "exit flush delivers every event");
    assert!(rt.stats().thread_exit_flushes() >= 1);
    assert_eq!(rt.stats().batch_events_flushed(), 5);
}

#[test]
fn batched_runtime_still_catches_forced_collision() {
    // End-to-end through the batched fast path: near miss (buffered, then
    // flushed) arms the pair, the armed pair closes the gate, and the
    // subsequent inline collision is caught red-handed.
    let mut c = TsvdConfig::for_testing();
    c.decay_factor = 0.0;
    c.batch_capacity = 64;
    let delay = Duration::from_nanos(c.delay_ns);
    for _attempt in 0..3 {
        let rt = Runtime::tsvd(c.clone());
        let obj = ObjId(0xBA7C4);
        let site_a = tsvd_core::site!();
        let site_b = tsvd_core::site!();
        // (1) Near miss: the spawned thread's access flushes at thread
        // exit; ours needs an explicit flush to complete the pair.
        std::thread::scope(|scope| {
            scope.spawn(|| rt.on_call(obj, site_a, "x.write", OpKind::Write));
        });
        rt.on_call(obj, site_b, "x.write", OpKind::Write);
        rt.flush_thread_events();
        // (2)+(3) The armed pair closed the gate, so both sides now take
        // the inline path: trap, sleep, collide.
        std::thread::scope(|scope| {
            scope.spawn(|| rt.on_call(obj, site_a, "x.write", OpKind::Write));
            std::thread::sleep(delay / 4);
            rt.on_call(obj, site_b, "x.write", OpKind::Write);
        });
        if rt.reports().unique_bugs() >= 1 {
            return;
        }
    }
    panic!("forced collision was not caught in 3 attempts");
}
