//! Hot-path audit: proof-grade counting of locks and shared writes.
//!
//! The batched zero-trap `on_call` path claims to perform *no* lock
//! acquisitions and *no* shared-memory writes. Claims like that rot silently
//! as code evolves, so every lock acquisition and every shared-memory store
//! or RMW on the runtime's access path is annotated with a call to
//! [`note_lock`] or [`note_shared_write`]. With the `hotpath_audit` cargo
//! feature the notes bump thread-local counters a test can assert on; in
//! normal builds they compile to nothing.
//!
//! The counters are thread-local on purpose: an audit of *this thread's*
//! fast path must not be polluted by other test threads, and the counters
//! themselves must not become a shared write.

#[cfg(feature = "hotpath_audit")]
use std::cell::Cell;

#[cfg(feature = "hotpath_audit")]
thread_local! {
    static LOCKS: Cell<u64> = const { Cell::new(0) };
    static SHARED_WRITES: Cell<u64> = const { Cell::new(0) };
}

/// Records one lock acquisition (mutex, rwlock read or write) on the
/// calling thread. No-op unless the `hotpath_audit` feature is enabled.
#[inline(always)]
pub fn note_lock() {
    // `try_with`: notes can fire from thread-exit destructors (the local
    // event buffer flushes on TLS teardown), after the counter TLS may
    // already be gone.
    #[cfg(feature = "hotpath_audit")]
    let _ = LOCKS.try_with(|c| c.set(c.get() + 1));
}

/// Records one shared-memory write (store or read-modify-write on memory
/// reachable by other threads) on the calling thread. No-op unless the
/// `hotpath_audit` feature is enabled.
#[inline(always)]
pub fn note_shared_write() {
    #[cfg(feature = "hotpath_audit")]
    let _ = SHARED_WRITES.try_with(|c| c.set(c.get() + 1));
}

/// Zeroes the calling thread's audit counters.
#[cfg(feature = "hotpath_audit")]
pub fn reset() {
    LOCKS.with(|c| c.set(0));
    SHARED_WRITES.with(|c| c.set(0));
}

/// Lock acquisitions recorded on the calling thread since [`reset`].
#[cfg(feature = "hotpath_audit")]
pub fn lock_acquisitions() -> u64 {
    LOCKS.with(|c| c.get())
}

/// Shared-memory writes recorded on the calling thread since [`reset`].
#[cfg(feature = "hotpath_audit")]
pub fn shared_writes() -> u64 {
    SHARED_WRITES.with(|c| c.get())
}

#[cfg(all(test, feature = "hotpath_audit"))]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        note_lock();
        note_shared_write();
        note_shared_write();
        assert_eq!(lock_acquisitions(), 1);
        assert_eq!(shared_writes(), 2);
        reset();
        assert_eq!(lock_acquisitions(), 0);
        assert_eq!(shared_writes(), 0);
    }

    #[test]
    fn counters_are_thread_local() {
        reset();
        note_lock();
        std::thread::spawn(|| {
            assert_eq!(lock_acquisitions(), 0, "fresh thread starts at zero");
            note_lock();
            note_lock();
            assert_eq!(lock_acquisitions(), 2);
        })
        .join()
        .expect("no panic");
        assert_eq!(lock_acquisitions(), 1, "other threads don't leak in");
    }
}
