//! The trap table: catching threads red-handed (Fig. 5).
//!
//! A thread that decides to delay at a TSVD point first *sets a trap*
//! registering its access triple, then sleeps. Every other thread entering
//! `OnCall` checks the table; if its access conflicts with a live trap —
//! different context, same object, at least one write — both threads are at
//! their respective program counters making the conflicting calls, and the
//! violation is real by construction. The sleeping thread is woken early so
//! a caught trap does not keep paying its full delay.
//!
//! Trap checking runs on every instrumented access, but traps are live only
//! while some thread is sleeping — the overwhelmingly common case is an
//! empty table. The table therefore keeps a global live-trap counter so the
//! empty case is a single atomic load, and stores the (rare) live traps in
//! shards keyed by object id: the conflict predicate requires *the same
//! object*, so a checker only ever needs its own object's shard.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::access::{Access, ObjId};
use crate::audit;
use crate::gate::HotGate;

const DEFAULT_SHARDS: usize = 16;

/// A live trap: one delayed access waiting to be collided with.
pub struct TrapEntry {
    /// The delayed access.
    pub access: Access,
    /// Stack trace captured when the trap was set (if enabled).
    pub stack: Option<Arc<str>>,
    /// When the trap was registered (watchdog cancels oldest-first).
    set_at: Instant,
    state: Mutex<TrapState>,
    wake: Condvar,
}

#[derive(Debug, Default)]
struct TrapState {
    /// Set when a conflicting access hit this trap.
    caught: bool,
    /// Set when the trap owner should stop sleeping (caught or cancelled).
    wake_now: bool,
}

impl TrapEntry {
    fn new(access: Access, stack: Option<Arc<str>>) -> Arc<TrapEntry> {
        Arc::new(TrapEntry {
            access,
            stack,
            set_at: Instant::now(),
            state: Mutex::new(TrapState::default()),
            wake: Condvar::new(),
        })
    }

    /// Marks the trap as hit and wakes its owner.
    ///
    /// The only thread that ever waits on `wake` is the trap's owner, so
    /// one wakeup suffices; `caught` is idempotent, so every concurrent
    /// hitter still observes the hit and reports the violation.
    pub fn catch(&self) {
        let mut st = self.state.lock();
        st.caught = true;
        st.wake_now = true;
        self.wake.notify_one();
    }

    /// Wakes the trap's owner *without* marking the trap caught — the
    /// watchdog's escape hatch for delay-induced starvation. Returns `true`
    /// if this call actually cancelled a still-sleeping trap (a trap that
    /// was already caught or cancelled is left as-is).
    pub fn cancel(&self) -> bool {
        let mut st = self.state.lock();
        if st.wake_now {
            return false;
        }
        st.wake_now = true;
        self.wake.notify_one();
        true
    }

    /// Returns `true` if a conflicting access hit this trap.
    pub fn was_caught(&self) -> bool {
        self.state.lock().caught
    }

    /// How long this trap has been live.
    pub fn age(&self) -> Duration {
        self.set_at.elapsed()
    }

    /// Sleeps for up to `duration`, returning early if the trap is hit.
    /// Returns `true` if the trap was caught during the sleep.
    pub fn sleep(&self, duration: Duration) -> bool {
        let deadline = std::time::Instant::now() + duration;
        let mut st = self.state.lock();
        while !st.wake_now {
            if self.wake.wait_until(&mut st, deadline).timed_out() {
                break;
            }
        }
        st.caught
    }
}

/// The global table of live traps, sharded by object id.
pub struct TrapTable {
    shards: Box<[Mutex<Vec<Arc<TrapEntry>>>]>,
    /// Live traps across all shards. Zero — the common case — makes
    /// [`check_for_trap`](TrapTable::check_for_trap) lock-free.
    live: AtomicUsize,
    /// Optional hot gate mirroring the live count into the batching fast
    /// path's activity word (see [`crate::gate`]).
    gate: OnceLock<Arc<HotGate>>,
}

impl Default for TrapTable {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

impl TrapTable {
    /// Creates an empty table with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty table with `shards` shards (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        TrapTable {
            shards: (0..shards.max(1)).map(|_| Mutex::new(Vec::new())).collect(),
            live: AtomicUsize::new(0),
            gate: OnceLock::new(),
        }
    }

    /// Attaches the runtime's hot gate so every live-trap transition is
    /// mirrored into its activity count. At most one gate per table; later
    /// calls are ignored.
    pub fn attach_gate(&self, gate: Arc<HotGate>) {
        let _ = self.gate.set(gate);
    }

    /// The shard holding traps for `obj`. A conflict requires the same
    /// object, so a trap is only ever relevant to exactly one shard.
    fn shard(&self, obj: ObjId) -> &Mutex<Vec<Arc<TrapEntry>>> {
        let h = obj.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Registers a trap for `access` and returns its handle.
    pub fn set_trap(&self, access: Access, stack: Option<Arc<str>>) -> Arc<TrapEntry> {
        let entry = TrapEntry::new(access, stack);
        // Publish the count before the entry becomes findable: a checker
        // that loads 0 and skips can only miss a trap whose owner has not
        // finished arming it, which is indistinguishable from the access
        // having happened just before the trap was set.
        audit::note_shared_write();
        self.live.fetch_add(1, Ordering::SeqCst);
        if let Some(gate) = self.gate.get() {
            gate.add_activity(1);
        }
        audit::note_lock();
        self.shard(entry.access.obj).lock().push(entry.clone());
        entry
    }

    /// Removes `entry` from the table (the owner woke up).
    pub fn clear_trap(&self, entry: &Arc<TrapEntry>) {
        audit::note_lock();
        let mut shard = self.shard(entry.access.obj).lock();
        let before = shard.len();
        shard.retain(|t| !Arc::ptr_eq(t, entry));
        let removed = before - shard.len();
        drop(shard);
        if removed > 0 {
            audit::note_shared_write();
            self.live.fetch_sub(removed, Ordering::SeqCst);
            if let Some(gate) = self.gate.get() {
                gate.sub_activity(removed as u64);
            }
        }
    }

    /// Checks `access` against all live traps, marking and returning every
    /// trap it collides with. The paper's conflict predicate: different
    /// context, same object, at least one write.
    pub fn check_for_trap(&self, access: &Access) -> Vec<Arc<TrapEntry>> {
        if self.live.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        audit::note_lock();
        let shard = self.shard(access.obj).lock();
        let mut hit = Vec::new();
        for t in shard.iter() {
            if t.access.conflicts_with(access) {
                t.catch();
                hit.push(t.clone());
            }
        }
        hit
    }

    /// Number of live traps (stats).
    pub fn live_count(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Snapshot of every live trap, across all shards.
    fn live_traps(&self) -> Vec<Arc<TrapEntry>> {
        if self.live.load(Ordering::SeqCst) == 0 {
            return Vec::new();
        }
        let mut all = Vec::new();
        for shard in self.shards.iter() {
            all.extend(shard.lock().iter().cloned());
        }
        all
    }

    /// Cancels (wakes without marking caught) the `n` oldest live traps.
    /// Returns how many sleeping owners were actually woken. The owners
    /// clear their own entries on wake-up, so the table empties through the
    /// normal path.
    pub fn cancel_oldest(&self, n: usize) -> usize {
        let mut traps = self.live_traps();
        traps.sort_by_key(|t| std::cmp::Reverse(t.age()));
        traps.iter().take(n).filter(|t| t.cancel()).count()
    }

    /// Cancels every live trap. Returns how many owners were woken.
    pub fn cancel_all(&self) -> usize {
        self.live_traps().iter().filter(|t| t.cancel()).count()
    }
}

/// RAII ownership of a live trap: guarantees the entry is removed from the
/// table — and the global live counter restored — even if a panic unwinds
/// through the owner's sleep, the strategy's `on_delay_complete`, or the
/// trapped wrapper call. A leaked entry would otherwise permanently disable
/// the zero-trap fast path and leave a phantom trap for hitters to collide
/// with.
pub struct TrapGuard<'a> {
    table: &'a TrapTable,
    entry: Arc<TrapEntry>,
}

impl<'a> TrapGuard<'a> {
    /// Takes ownership of `entry`'s presence in `table`.
    pub fn new(table: &'a TrapTable, entry: Arc<TrapEntry>) -> TrapGuard<'a> {
        TrapGuard { table, entry }
    }

    /// The guarded entry.
    pub fn entry(&self) -> &Arc<TrapEntry> {
        &self.entry
    }
}

impl Drop for TrapGuard<'_> {
    fn drop(&mut self) {
        self.table.clear_trap(&self.entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;

    fn acc(ctx: u64, obj: u64, kind: OpKind) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: crate::site!(),
            op_name: "t.op",
            kind,
            time_ns: 0,
        }
    }

    #[test]
    fn conflicting_access_hits_trap() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let hits = table.check_for_trap(&acc(2, 7, OpKind::Read));
        assert_eq!(hits.len(), 1);
        assert!(trap.was_caught());
    }

    #[test]
    fn non_conflicting_access_misses() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Read), None);
        assert!(table.check_for_trap(&acc(2, 7, OpKind::Read)).is_empty());
        assert!(table.check_for_trap(&acc(2, 8, OpKind::Write)).is_empty());
        assert!(table.check_for_trap(&acc(1, 7, OpKind::Write)).is_empty());
        assert!(!trap.was_caught());
    }

    #[test]
    fn cleared_trap_cannot_be_hit() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        table.clear_trap(&trap);
        assert_eq!(table.live_count(), 0);
        assert!(table.check_for_trap(&acc(2, 7, OpKind::Write)).is_empty());
    }

    #[test]
    fn multiple_traps_can_hit_one_access() {
        let table = TrapTable::new();
        table.set_trap(acc(1, 7, OpKind::Write), None);
        table.set_trap(acc(3, 7, OpKind::Write), None);
        let hits = table.check_for_trap(&acc(2, 7, OpKind::Write));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn live_count_spans_all_shards() {
        // Traps on different objects land in different shards; the global
        // counter (and with it the zero-trap fast path) must track them all.
        let table = TrapTable::with_shards(4);
        let traps: Vec<_> = (0..8)
            .map(|obj| table.set_trap(acc(1, obj, OpKind::Write), None))
            .collect();
        assert_eq!(table.live_count(), 8);
        for (obj, trap) in traps.iter().enumerate() {
            assert_eq!(
                table
                    .check_for_trap(&acc(2, obj as u64, OpKind::Write))
                    .len(),
                1
            );
            table.clear_trap(trap);
        }
        assert_eq!(table.live_count(), 0);
        assert!(table.check_for_trap(&acc(2, 3, OpKind::Write)).is_empty());
    }

    #[test]
    fn single_shard_table_still_works() {
        let table = TrapTable::with_shards(1);
        table.set_trap(acc(1, 7, OpKind::Write), None);
        table.set_trap(acc(1, 8, OpKind::Write), None);
        assert_eq!(table.check_for_trap(&acc(2, 7, OpKind::Write)).len(), 1);
    }

    #[test]
    fn sleep_times_out_when_not_caught() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let start = std::time::Instant::now();
        let caught = trap.sleep(Duration::from_millis(5));
        assert!(!caught);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn sleep_wakes_early_when_caught() {
        let table = Arc::new(TrapTable::new());
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let t2 = {
            let table = table.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                table.check_for_trap(&acc(2, 7, OpKind::Write))
            })
        };
        let start = std::time::Instant::now();
        let caught = trap.sleep(Duration::from_millis(500));
        assert!(caught, "collision must be observed by the sleeper");
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "sleeper must wake early"
        );
        assert_eq!(t2.join().expect("no panic").len(), 1);
    }

    #[test]
    fn cancel_wakes_owner_without_catching() {
        let table = Arc::new(TrapTable::new());
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let canceller = {
            let trap = trap.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                trap.cancel()
            })
        };
        let start = std::time::Instant::now();
        let caught = trap.sleep(Duration::from_millis(500));
        assert!(!caught, "a cancelled trap is not a violation");
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "cancel must wake the sleeper early"
        );
        assert!(canceller.join().expect("no panic"));
        // A second cancel is a no-op.
        assert!(!trap.cancel());
    }

    #[test]
    fn cancel_oldest_prefers_the_longest_sleeper() {
        let table = TrapTable::with_shards(4);
        let old = table.set_trap(acc(1, 7, OpKind::Write), None);
        std::thread::sleep(Duration::from_millis(2));
        let young = table.set_trap(acc(2, 8, OpKind::Write), None);
        assert_eq!(table.cancel_oldest(1), 1);
        assert!(!old.cancel(), "oldest was already cancelled");
        assert!(young.cancel(), "youngest was left alone");
    }

    #[test]
    fn cancel_all_sweeps_every_shard() {
        let table = TrapTable::with_shards(4);
        let traps: Vec<_> = (0..8)
            .map(|obj| table.set_trap(acc(1, obj, OpKind::Write), None))
            .collect();
        assert_eq!(table.cancel_all(), 8);
        for t in &traps {
            assert!(!t.cancel(), "every trap was cancelled exactly once");
        }
        assert_eq!(table.cancel_all(), 0);
    }

    #[test]
    fn attached_gate_tracks_live_traps() {
        let table = TrapTable::new();
        let gate = Arc::new(HotGate::new());
        table.attach_gate(gate.clone());
        let seen = HotGate::epoch(gate.load());
        assert!(HotGate::is_quiescent(gate.load(), seen));
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        assert!(
            !HotGate::is_quiescent(gate.load(), seen),
            "a live trap must close the gate"
        );
        table.clear_trap(&trap);
        assert!(
            HotGate::is_quiescent(gate.load(), seen),
            "clearing the last trap must reopen the gate"
        );
    }

    #[test]
    fn guard_clears_trap_on_panic_unwind() {
        let table = TrapTable::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let entry = table.set_trap(acc(1, 7, OpKind::Write), None);
            let _guard = TrapGuard::new(&table, entry);
            panic!("unwind through a live trap");
        }));
        assert!(result.is_err());
        assert_eq!(
            table.live_count(),
            0,
            "unwind must restore the zero-trap fast path"
        );
        assert!(table.check_for_trap(&acc(2, 7, OpKind::Write)).is_empty());
    }

    #[test]
    fn guard_double_clear_is_harmless() {
        // The owner may clear explicitly before the guard drops (the
        // non-panic path); the counter must not underflow.
        let table = TrapTable::new();
        let entry = table.set_trap(acc(1, 7, OpKind::Write), None);
        {
            let guard = TrapGuard::new(&table, entry.clone());
            table.clear_trap(&entry);
            drop(guard);
        }
        assert_eq!(table.live_count(), 0);
        table.set_trap(acc(1, 8, OpKind::Write), None);
        assert_eq!(table.live_count(), 1);
    }

    #[test]
    fn concurrent_hitters_both_get_the_report() {
        // `catch` wakes with notify_one because only the owner waits on the
        // condvar; hitters never wait, they just mark. Two simultaneous
        // hitters must therefore *both* see the collision.
        let table = Arc::new(TrapTable::new());
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let barrier = Arc::new(std::sync::Barrier::new(2));
        let hitters: Vec<_> = [2u64, 3]
            .into_iter()
            .map(|ctx| {
                let table = table.clone();
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    barrier.wait();
                    table.check_for_trap(&acc(ctx, 7, OpKind::Write)).len()
                })
            })
            .collect();
        let caught = trap.sleep(Duration::from_millis(500));
        for h in hitters {
            assert_eq!(
                h.join().expect("no panic"),
                1,
                "every concurrent hitter reports the collision"
            );
        }
        assert!(caught, "the owner still wakes caught");
    }
}
