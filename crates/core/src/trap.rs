//! The trap table: catching threads red-handed (Fig. 5).
//!
//! A thread that decides to delay at a TSVD point first *sets a trap*
//! registering its access triple, then sleeps. Every other thread entering
//! `OnCall` checks the table; if its access conflicts with a live trap —
//! different context, same object, at least one write — both threads are at
//! their respective program counters making the conflicting calls, and the
//! violation is real by construction. The sleeping thread is woken early so
//! a caught trap does not keep paying its full delay.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::access::Access;

/// A live trap: one delayed access waiting to be collided with.
pub struct TrapEntry {
    /// The delayed access.
    pub access: Access,
    /// Stack trace captured when the trap was set (if enabled).
    pub stack: Option<Arc<str>>,
    state: Mutex<TrapState>,
    wake: Condvar,
}

#[derive(Debug, Default)]
struct TrapState {
    /// Set when a conflicting access hit this trap.
    caught: bool,
    /// Set when the trap owner should stop sleeping (caught or cancelled).
    wake_now: bool,
}

impl TrapEntry {
    fn new(access: Access, stack: Option<Arc<str>>) -> Arc<TrapEntry> {
        Arc::new(TrapEntry {
            access,
            stack,
            state: Mutex::new(TrapState::default()),
            wake: Condvar::new(),
        })
    }

    /// Marks the trap as hit and wakes its owner.
    pub fn catch(&self) {
        let mut st = self.state.lock();
        st.caught = true;
        st.wake_now = true;
        self.wake.notify_all();
    }

    /// Returns `true` if a conflicting access hit this trap.
    pub fn was_caught(&self) -> bool {
        self.state.lock().caught
    }

    /// Sleeps for up to `duration`, returning early if the trap is hit.
    /// Returns `true` if the trap was caught during the sleep.
    pub fn sleep(&self, duration: Duration) -> bool {
        let deadline = std::time::Instant::now() + duration;
        let mut st = self.state.lock();
        while !st.wake_now {
            if self.wake.wait_until(&mut st, deadline).timed_out() {
                break;
            }
        }
        st.caught
    }
}

/// The global table of live traps.
#[derive(Default)]
pub struct TrapTable {
    traps: Mutex<Vec<Arc<TrapEntry>>>,
}

impl TrapTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trap for `access` and returns its handle.
    pub fn set_trap(&self, access: Access, stack: Option<Arc<str>>) -> Arc<TrapEntry> {
        let entry = TrapEntry::new(access, stack);
        self.traps.lock().push(entry.clone());
        entry
    }

    /// Removes `entry` from the table (the owner woke up).
    pub fn clear_trap(&self, entry: &Arc<TrapEntry>) {
        let mut traps = self.traps.lock();
        traps.retain(|t| !Arc::ptr_eq(t, entry));
    }

    /// Checks `access` against all live traps, marking and returning every
    /// trap it collides with. The paper's conflict predicate: different
    /// context, same object, at least one write.
    pub fn check_for_trap(&self, access: &Access) -> Vec<Arc<TrapEntry>> {
        let traps = self.traps.lock();
        let mut hit = Vec::new();
        for t in traps.iter() {
            if t.access.conflicts_with(access) {
                t.catch();
                hit.push(t.clone());
            }
        }
        hit
    }

    /// Number of live traps (stats).
    pub fn live_count(&self) -> usize {
        self.traps.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;

    fn acc(ctx: u64, obj: u64, kind: OpKind) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: crate::site!(),
            op_name: "t.op",
            kind,
            time_ns: 0,
        }
    }

    #[test]
    fn conflicting_access_hits_trap() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let hits = table.check_for_trap(&acc(2, 7, OpKind::Read));
        assert_eq!(hits.len(), 1);
        assert!(trap.was_caught());
    }

    #[test]
    fn non_conflicting_access_misses() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Read), None);
        assert!(table.check_for_trap(&acc(2, 7, OpKind::Read)).is_empty());
        assert!(table.check_for_trap(&acc(2, 8, OpKind::Write)).is_empty());
        assert!(table.check_for_trap(&acc(1, 7, OpKind::Write)).is_empty());
        assert!(!trap.was_caught());
    }

    #[test]
    fn cleared_trap_cannot_be_hit() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        table.clear_trap(&trap);
        assert_eq!(table.live_count(), 0);
        assert!(table.check_for_trap(&acc(2, 7, OpKind::Write)).is_empty());
    }

    #[test]
    fn multiple_traps_can_hit_one_access() {
        let table = TrapTable::new();
        table.set_trap(acc(1, 7, OpKind::Write), None);
        table.set_trap(acc(3, 7, OpKind::Write), None);
        let hits = table.check_for_trap(&acc(2, 7, OpKind::Write));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn sleep_times_out_when_not_caught() {
        let table = TrapTable::new();
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let start = std::time::Instant::now();
        let caught = trap.sleep(Duration::from_millis(5));
        assert!(!caught);
        assert!(start.elapsed() >= Duration::from_millis(4));
    }

    #[test]
    fn sleep_wakes_early_when_caught() {
        let table = Arc::new(TrapTable::new());
        let trap = table.set_trap(acc(1, 7, OpKind::Write), None);
        let t2 = {
            let table = table.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                table.check_for_trap(&acc(2, 7, OpKind::Write))
            })
        };
        let start = std::time::Instant::now();
        let caught = trap.sleep(Duration::from_millis(500));
        assert!(caught, "collision must be observed by the sleeper");
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "sleeper must wake early"
        );
        assert_eq!(t2.join().expect("no panic").len(), 1);
    }
}
