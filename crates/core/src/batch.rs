//! Thread-local event batching for the zero-trap `OnCall` fast path.
//!
//! While the runtime is *quiescent* — no trap live, no dangerous pair armed
//! — an instrumented access cannot collide with anything and the strategy
//! cannot want to delay it. The only work left is observation: near-miss
//! history, phase evidence, coverage. None of it has to happen inline, so
//! the fast path appends the access to a buffer owned by the calling thread
//! and returns. The buffered observations reach the shared analysis
//! structures at well-defined flush points:
//!
//! - **gate closed** — the thread's next `on_call` notices the runtime is no
//!   longer quiescent (a trap went live, a pair armed, or a drain was
//!   requested) and drains its buffer before taking the inline path;
//! - **buffer full** — the buffer reached `batch_capacity` events;
//! - **synchronization** — `on_sync` flushes first, so fork/join/lock
//!   ordering evidence is never observed before the accesses preceding it;
//! - **thread exit** — the buffer's TLS destructor flushes what remains.
//!
//! Draining is *cooperative*: a trap-arming thread cannot reach into other
//! threads' buffers, so it bumps the gate's drain epoch instead and every
//! buffering thread drains at its next touch point. The quiescence check
//! compares both the activity count and the drain epoch (see
//! [`crate::gate`]), so even a trap that was set and cleared entirely
//! between two of a thread's accesses still forces that thread to flush.
//!
//! The buffer binds to one runtime at a time (keyed by address, held as a
//! `Weak` so a dead runtime is never revived). When a thread starts calling
//! into a different runtime, the old owner's events are flushed first.

use std::cell::RefCell;
use std::sync::Weak;

use crate::access::Access;
use crate::gate::HotGate;
use crate::runtime::Runtime;

/// Outcome of offering an access to the calling thread's local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Offer {
    /// Captured locally (the buffer may have flushed itself if it filled
    /// up); the hot path is done with this access.
    Buffered,
    /// The runtime is not quiescent: any buffered events were drained and
    /// the caller must run this access through the inline path.
    Inline,
}

struct LocalBuffer {
    /// Owning runtime; `Weak` so a leaked TLS slot cannot keep it alive.
    runtime: Weak<Runtime>,
    /// The owner's address — cheap identity check without upgrading.
    runtime_ptr: usize,
    events: Vec<Access>,
    /// Last gate drain-epoch this thread has caught up with.
    seen_epoch: u32,
}

impl LocalBuffer {
    /// Delivers the buffered events to the owning runtime, if it is still
    /// alive.
    fn flush_to_owner(&mut self, thread_exit: bool) {
        if self.events.is_empty() {
            return;
        }
        let Some(rt) = self.runtime.upgrade() else {
            self.events.clear();
            return;
        };
        let events = std::mem::take(&mut self.events);
        rt.apply_batch(&events, thread_exit);
    }
}

impl Drop for LocalBuffer {
    fn drop(&mut self) {
        self.flush_to_owner(true);
    }
}

thread_local! {
    static BUFFER: RefCell<Option<LocalBuffer>> = const { RefCell::new(None) };
}

/// Offers `access` to the calling thread's buffer for runtime `rt`.
///
/// This is the zero-trap fast path: when the gate is quiescent the cost is
/// one relaxed atomic load plus an append to a thread-local `Vec` — no lock,
/// no shared-memory write.
pub(crate) fn offer(rt: &Runtime, access: &Access) -> Offer {
    BUFFER
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            let rt_ptr = rt as *const Runtime as usize;
            let bound = matches!(slot.as_ref(), Some(buf) if buf.runtime_ptr == rt_ptr);
            if !bound {
                // Rebind: flush whatever the previous owner was owed.
                if let Some(mut old) = slot.take() {
                    drop(slot);
                    old.flush_to_owner(false);
                    slot = cell.borrow_mut();
                }
                *slot = Some(LocalBuffer {
                    runtime: rt.weak_self(),
                    runtime_ptr: rt_ptr,
                    // Reserve up front: growth inside `push` would make the
                    // fast path's cost lumpy.
                    events: Vec::with_capacity(rt.batch_capacity()),
                    seen_epoch: HotGate::epoch(rt.gate().load()),
                });
            }
            let buf = slot.as_mut().expect("buffer bound above");
            let word = rt.gate().load();
            if !HotGate::is_quiescent(word, buf.seen_epoch) {
                buf.seen_epoch = HotGate::epoch(word);
                let events = std::mem::take(&mut buf.events);
                drop(slot); // Release the borrow before re-entering the runtime.
                if !events.is_empty() {
                    rt.apply_batch(&events, false);
                }
                return Offer::Inline;
            }
            buf.events.push(*access);
            if buf.events.len() >= rt.batch_capacity() {
                let events = std::mem::take(&mut buf.events);
                drop(slot);
                rt.apply_batch(&events, false);
            }
            Offer::Buffered
        })
        // TLS already torn down (runtime call from a thread destructor):
        // nothing can be buffered, take the inline path.
        .unwrap_or(Offer::Inline)
}

/// Flushes the calling thread's buffer if it is bound to `rt`.
pub(crate) fn flush_current(rt: &Runtime) {
    let _ = BUFFER.try_with(|cell| {
        let mut slot = cell.borrow_mut();
        let rt_ptr = rt as *const Runtime as usize;
        let Some(buf) = slot.as_mut() else { return };
        if buf.runtime_ptr != rt_ptr || buf.events.is_empty() {
            return;
        }
        let events = std::mem::take(&mut buf.events);
        drop(slot);
        rt.apply_batch(&events, false);
    });
}

/// Number of events currently buffered on the calling thread for `rt`
/// (tests and stats).
pub(crate) fn buffered_len(rt: &Runtime) -> usize {
    BUFFER
        .try_with(|cell| {
            let slot = cell.borrow();
            let rt_ptr = rt as *const Runtime as usize;
            slot.as_ref()
                .filter(|b| b.runtime_ptr == rt_ptr)
                .map_or(0, |b| b.events.len())
        })
        .unwrap_or(0)
}
