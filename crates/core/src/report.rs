//! Violation reports and their aggregation.
//!
//! Each report carries the two conflicting accesses — static locations,
//! contexts, operation names, and (optionally) stack traces — which is what
//! made the paper's reports "sufficiently actionable" for developers. The
//! sink deduplicates by the unordered pair of static program locations, the
//! paper's conservative unique-bug key, while also tracking distinct
//! stack-trace pairs and per-bug occurrence counts (Table 1 statistics).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::access::OpKind;
use crate::near_miss::SitePair;
use crate::site::SiteId;

/// One side of a caught violation.
#[derive(Debug, Clone)]
pub struct Party {
    /// Static program location of the call.
    pub site: SiteId,
    /// Execution context that made the call.
    pub context: crate::context::ContextId,
    /// Operation name, e.g. `"Dictionary.add"`.
    pub op_name: &'static str,
    /// Read/write classification.
    pub kind: OpKind,
    /// Stack trace, if capture was enabled.
    pub stack: Option<Arc<str>>,
}

/// A thread-safety violation caught red-handed.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The trap side (the delayed thread).
    pub trapped: Party,
    /// The side that walked into the trap.
    pub hitter: Party,
    /// The object both sides were accessing.
    pub obj: crate::access::ObjId,
    /// When the collision was observed, nanoseconds.
    pub time_ns: u64,
}

impl Violation {
    /// The unordered static-location pair identifying this bug.
    pub fn pair(&self) -> SitePair {
        SitePair::new(self.trapped.site, self.hitter.site)
    }

    /// Returns `true` if exactly one side is a read (a read-write bug —
    /// 48 % of the paper's corpus).
    pub fn is_read_write(&self) -> bool {
        (self.trapped.kind == OpKind::Read) != (self.hitter.kind == OpKind::Read)
    }

    /// Returns `true` if both sides are the same static location (34 % of
    /// the paper's corpus).
    pub fn is_same_location(&self) -> bool {
        self.trapped.site == self.hitter.site
    }
}

/// A pair of captured stack traces (trapped side, hitter side).
type StackPair = (Arc<str>, Arc<str>);

#[derive(Default)]
struct SinkInner {
    all: Vec<Violation>,
    occurrences: HashMap<SitePair, usize>,
    stack_pairs: HashMap<SitePair, std::collections::HashSet<StackPair>>,
}

/// Collects violations and aggregates unique-bug statistics.
#[derive(Default, Clone)]
pub struct ReportSink {
    inner: Arc<Mutex<SinkInner>>,
}

impl ReportSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a violation. Returns `true` if its location pair is new
    /// (a newly discovered unique bug).
    pub fn report(&self, v: Violation) -> bool {
        let mut inner = self.inner.lock();
        let pair = v.pair();
        if let (Some(a), Some(b)) = (&v.trapped.stack, &v.hitter.stack) {
            inner
                .stack_pairs
                .entry(pair)
                .or_default()
                .insert((a.clone(), b.clone()));
        }
        let count = inner.occurrences.entry(pair).or_insert(0);
        *count += 1;
        let is_new = *count == 1;
        inner.all.push(v);
        is_new
    }

    /// Number of unique bugs (distinct location pairs).
    pub fn unique_bugs(&self) -> usize {
        self.inner.lock().occurrences.len()
    }

    /// Number of distinct static locations involved in any bug.
    pub fn unique_locations(&self) -> usize {
        let inner = self.inner.lock();
        let mut sites = std::collections::HashSet::new();
        for pair in inner.occurrences.keys() {
            sites.insert(pair.first);
            sites.insert(pair.second);
        }
        sites.len()
    }

    /// Total violations observed, counting repeats.
    pub fn total_occurrences(&self) -> usize {
        self.inner.lock().all.len()
    }

    /// Distinct (stack, stack) pairs across all bugs (needs stack capture).
    pub fn stack_trace_pairs(&self) -> usize {
        self.inner
            .lock()
            .stack_pairs
            .values()
            .map(|s| s.len())
            .sum()
    }

    /// The set of unique bug pairs.
    pub fn bug_pairs(&self) -> Vec<SitePair> {
        self.inner.lock().occurrences.keys().copied().collect()
    }

    /// Occurrence count per unique bug.
    pub fn occurrence_counts(&self) -> Vec<(SitePair, usize)> {
        let inner = self.inner.lock();
        inner.occurrences.iter().map(|(&p, &c)| (p, c)).collect()
    }

    /// Snapshot of every violation observed.
    pub fn violations(&self) -> Vec<Violation> {
        self.inner.lock().all.clone()
    }

    /// Fraction of unique bugs that are read-write conflicts.
    pub fn read_write_fraction(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.occurrences.is_empty() {
            return 0.0;
        }
        let mut seen = std::collections::HashSet::new();
        let mut rw = 0usize;
        for v in &inner.all {
            if seen.insert(v.pair()) && v.is_read_write() {
                rw += 1;
            }
        }
        rw as f64 / inner.occurrences.len() as f64
    }

    /// Fraction of unique bugs whose two locations coincide.
    pub fn same_location_fraction(&self) -> f64 {
        let inner = self.inner.lock();
        if inner.occurrences.is_empty() {
            return 0.0;
        }
        let same = inner
            .occurrences
            .keys()
            .filter(|p| p.first == p.second)
            .count();
        same as f64 / inner.occurrences.len() as f64
    }

    /// Serializable summary of every unique bug, for the build system's
    /// report log (the deployed tool logs bug locations, operation names,
    /// and stack traces; §4).
    pub fn export(&self) -> ReportExport {
        let inner = self.inner.lock();
        let mut seen = std::collections::HashSet::new();
        let mut bugs = Vec::new();
        for v in &inner.all {
            let pair = v.pair();
            if !seen.insert(pair) {
                continue;
            }
            bugs.push(BugExport {
                location_a: pair.first.to_string(),
                location_b: pair.second.to_string(),
                op_a: v.trapped.op_name.to_string(),
                op_b: v.hitter.op_name.to_string(),
                read_write: v.is_read_write(),
                same_location: v.is_same_location(),
                occurrences: inner.occurrences.get(&pair).copied().unwrap_or(1),
                stack_a: v.trapped.stack.as_deref().map(str::to_owned),
                stack_b: v.hitter.stack.as_deref().map(str::to_owned),
            });
        }
        bugs.sort_by(|a, b| (&a.location_a, &a.location_b).cmp(&(&b.location_a, &b.location_b)));
        ReportExport {
            unique_bugs: bugs.len(),
            total_occurrences: inner.all.len(),
            bugs,
        }
    }
}

/// Machine-readable dump of a sink's unique bugs.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ReportExport {
    /// Number of unique bugs (distinct location pairs).
    pub unique_bugs: usize,
    /// Total violations observed, repeats included.
    pub total_occurrences: usize,
    /// One entry per unique bug.
    pub bugs: Vec<BugExport>,
}

/// One exported bug.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct BugExport {
    /// First static location of the pair (normalized order).
    pub location_a: String,
    /// Second static location of the pair.
    pub location_b: String,
    /// Operation name on the trapped side of the first catch.
    pub op_a: String,
    /// Operation name on the hitter side of the first catch.
    pub op_b: String,
    /// `true` if exactly one side reads.
    pub read_write: bool,
    /// `true` if both sides are one static location.
    pub same_location: bool,
    /// How many times this bug was caught.
    pub occurrences: usize,
    /// Stack trace of the trapped side, if capture was enabled.
    pub stack_a: Option<String>,
    /// Stack trace of the hitter side, if capture was enabled.
    pub stack_b: Option<String>,
}

impl ReportExport {
    /// Writes the export as pretty JSON.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads an export from JSON.
    pub fn load(path: &std::path::Path) -> std::io::Result<ReportExport> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::ObjId;
    use crate::context::ContextId;
    use crate::site::{SiteData, SiteId};

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "report_test.rs",
            line: n,
            column: 1,
        })
    }

    fn violation(a: u32, b: u32, ka: OpKind, kb: OpKind) -> Violation {
        Violation {
            trapped: Party {
                site: site(a),
                context: ContextId(1),
                op_name: "x.a",
                kind: ka,
                stack: None,
            },
            hitter: Party {
                site: site(b),
                context: ContextId(2),
                op_name: "x.b",
                kind: kb,
                stack: None,
            },
            obj: ObjId(7),
            time_ns: 0,
        }
    }

    #[test]
    fn dedup_by_unordered_pair() {
        let sink = ReportSink::new();
        assert!(sink.report(violation(1, 2, OpKind::Write, OpKind::Write)));
        assert!(!sink.report(violation(2, 1, OpKind::Write, OpKind::Write)));
        assert_eq!(sink.unique_bugs(), 1);
        assert_eq!(sink.total_occurrences(), 2);
        assert_eq!(sink.unique_locations(), 2);
    }

    #[test]
    fn distinct_pairs_are_distinct_bugs() {
        let sink = ReportSink::new();
        sink.report(violation(1, 2, OpKind::Write, OpKind::Write));
        sink.report(violation(1, 3, OpKind::Write, OpKind::Write));
        assert_eq!(sink.unique_bugs(), 2);
        assert_eq!(sink.unique_locations(), 3);
    }

    #[test]
    fn read_write_classification() {
        let v = violation(1, 2, OpKind::Read, OpKind::Write);
        assert!(v.is_read_write());
        let v = violation(1, 2, OpKind::Write, OpKind::Write);
        assert!(!v.is_read_write());
    }

    #[test]
    fn fractions() {
        let sink = ReportSink::new();
        sink.report(violation(1, 1, OpKind::Write, OpKind::Write)); // same-loc, ww
        sink.report(violation(2, 3, OpKind::Read, OpKind::Write)); // rw
        assert!((sink.same_location_fraction() - 0.5).abs() < 1e-9);
        assert!((sink.read_write_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn export_round_trips_and_orders() {
        let sink = ReportSink::new();
        sink.report(violation(5, 4, OpKind::Read, OpKind::Write));
        sink.report(violation(1, 2, OpKind::Write, OpKind::Write));
        sink.report(violation(2, 1, OpKind::Write, OpKind::Write)); // repeat
        let export = sink.export();
        assert_eq!(export.unique_bugs, 2);
        assert_eq!(export.total_occurrences, 3);
        assert!(export.bugs[0].location_a <= export.bugs[1].location_a);
        let repeat = export
            .bugs
            .iter()
            .find(|b| b.occurrences == 2)
            .expect("one bug caught twice");
        assert!(!repeat.read_write);

        let dir = std::env::temp_dir().join(format!("tsvd_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("report.json");
        export.save(&path).expect("save");
        let back = ReportExport::load(&path).expect("load");
        assert_eq!(back.unique_bugs, export.unique_bugs);
        assert_eq!(back.bugs.len(), export.bugs.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stack_pairs_counted_when_present() {
        let sink = ReportSink::new();
        let mut v = violation(1, 2, OpKind::Write, OpKind::Write);
        v.trapped.stack = Some(Arc::from("stackA"));
        v.hitter.stack = Some(Arc::from("stackB"));
        sink.report(v.clone());
        sink.report(v); // Identical stacks: still one pair.
        let mut v2 = violation(1, 2, OpKind::Write, OpKind::Write);
        v2.trapped.stack = Some(Arc::from("stackC"));
        v2.hitter.stack = Some(Arc::from("stackB"));
        sink.report(v2);
        assert_eq!(sink.unique_bugs(), 1);
        assert_eq!(sink.stack_trace_pairs(), 2);
    }
}
