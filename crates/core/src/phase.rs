//! Concurrent-phase inference (§3.4.3).
//!
//! Synchronization such as forks, joins, barriers, and locks creates
//! sequential phases (initialization, clean-up, join-after-fork) in which a
//! TSVD point can never race. TSVD infers whether the program is currently
//! in a concurrent phase *without monitoring any synchronization*: it keeps a
//! global ring buffer of the contexts that executed the most recent TSVD
//! points, and calls the execution concurrent iff that buffer contains more
//! than one distinct context.

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::context::ContextId;

/// Ring buffer of the contexts behind the most recent TSVD points.
pub struct PhaseBuffer {
    inner: Mutex<VecDeque<ContextId>>,
    capacity: usize,
}

impl PhaseBuffer {
    /// Creates a buffer holding the last `capacity` TSVD points.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        PhaseBuffer {
            inner: Mutex::new(VecDeque::with_capacity(capacity)),
            capacity,
        }
    }

    /// Records that `context` just executed a TSVD point and returns whether
    /// the execution is currently in a concurrent phase.
    pub fn record_and_check(&self, context: ContextId) -> bool {
        let mut buf = self.inner.lock();
        buf.push_back(context);
        while buf.len() > self.capacity {
            buf.pop_front();
        }
        let first = buf[0];
        buf.iter().any(|&c| c != first)
    }

    /// Returns whether the buffer currently indicates a concurrent phase,
    /// without recording anything.
    pub fn is_concurrent(&self) -> bool {
        let buf = self.inner.lock();
        match buf.front() {
            None => false,
            Some(&first) => buf.iter().any(|&c| c != first),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_is_sequential() {
        let b = PhaseBuffer::new(4);
        assert!(!b.is_concurrent());
    }

    #[test]
    fn single_context_is_sequential() {
        let b = PhaseBuffer::new(4);
        for _ in 0..10 {
            assert!(!b.record_and_check(ContextId(1)));
        }
    }

    #[test]
    fn two_contexts_are_concurrent() {
        let b = PhaseBuffer::new(4);
        b.record_and_check(ContextId(1));
        assert!(b.record_and_check(ContextId(2)));
        assert!(b.is_concurrent());
    }

    #[test]
    fn old_context_scrolls_out() {
        // A burst from one context flushes the other out of the window: the
        // execution has gone sequential again (e.g. after a join).
        let b = PhaseBuffer::new(4);
        b.record_and_check(ContextId(1));
        b.record_and_check(ContextId(2));
        for _ in 0..3 {
            b.record_and_check(ContextId(2));
        }
        assert!(
            !b.is_concurrent(),
            "context 1 should have scrolled out of the 4-entry window"
        );
    }

    #[test]
    fn capacity_bounds_memory() {
        let b = PhaseBuffer::new(8);
        for i in 0..100 {
            b.record_and_check(ContextId(i % 2));
        }
        assert!(b.inner.lock().len() <= 8);
    }

    #[test]
    fn minimum_capacity_is_two() {
        // A buffer of one could never see two contexts; the constructor
        // clamps so phase detection stays meaningful.
        let b = PhaseBuffer::new(0);
        b.record_and_check(ContextId(1));
        assert!(b.record_and_check(ContextId(2)));
    }
}
