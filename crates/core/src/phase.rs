//! Concurrent-phase inference (§3.4.3).
//!
//! Synchronization such as forks, joins, barriers, and locks creates
//! sequential phases (initialization, clean-up, join-after-fork) in which a
//! TSVD point can never race. TSVD infers whether the program is currently
//! in a concurrent phase *without monitoring any synchronization*: it keeps a
//! global ring buffer of the contexts that executed the most recent TSVD
//! points, and calls the execution concurrent iff that buffer contains more
//! than one distinct context.
//!
//! The buffer sits on the `OnCall` hot path of every detector, so it is a
//! fixed array of atomic slots rather than a locked deque: recording is one
//! `fetch_add` on the cursor plus one store, and the concurrency check is a
//! bounded scan — no allocation, no lock, no parking. Slots race benignly:
//! an overlapping writer can only make the window a little fresher or a
//! little staler than a serialized one, which is within the precision the
//! heuristic needs.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::audit;
use crate::context::ContextId;

/// Slot value meaning "never written". Context ids are small dense counters,
/// so `u64::MAX` can never collide with a real context.
const EMPTY: u64 = u64::MAX;

/// Ring buffer of the contexts behind the most recent TSVD points.
pub struct PhaseBuffer {
    slots: Box<[AtomicU64]>,
    cursor: AtomicUsize,
}

impl PhaseBuffer {
    /// Creates a buffer holding the last `capacity` TSVD points.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2);
        PhaseBuffer {
            slots: (0..capacity).map(|_| AtomicU64::new(EMPTY)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// Records that `context` just executed a TSVD point and returns whether
    /// the execution is currently in a concurrent phase.
    pub fn record_and_check(&self, context: ContextId) -> bool {
        audit::note_shared_write();
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        self.slots[slot].store(context.0, Ordering::Relaxed);
        self.scan()
    }

    /// Returns whether the buffer currently indicates a concurrent phase,
    /// without recording anything.
    pub fn is_concurrent(&self) -> bool {
        self.scan()
    }

    /// Number of slots written so far (bounded by the capacity).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::Relaxed) != EMPTY)
            .count()
    }

    /// Returns `true` if no TSVD point has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Concurrent iff two distinct contexts appear among the written slots.
    fn scan(&self) -> bool {
        let mut first = EMPTY;
        for slot in self.slots.iter() {
            let v = slot.load(Ordering::Relaxed);
            if v == EMPTY {
                continue;
            }
            if first == EMPTY {
                first = v;
            } else if v != first {
                return true;
            }
        }
        false
    }
}

/// Time-based concurrency estimation for *replayed* (batched) events.
///
/// The count-based [`PhaseBuffer`] assumes events arrive roughly in real
/// time: a burst replay of one thread's local buffer would flood the ring
/// with a single context and make genuinely concurrent execution look
/// sequential. For flushed events the question is therefore asked against
/// wall-clock instead: *was a different context active within the window
/// around this event's timestamp?* The table keeps the last-seen timestamp
/// per recent context in a small fixed array of atomic slots; races are
/// benign for the same reason the phase ring's are.
pub struct ContextRecency {
    slots: Box<[RecencySlot]>,
    horizon_ns: u64,
}

struct RecencySlot {
    context: AtomicU64,
    at_ns: AtomicU64,
}

impl ContextRecency {
    /// Creates a table of `capacity` recent contexts; two events of
    /// different contexts within `horizon_ns` of each other count as
    /// concurrent. `u64::MAX` disables the window (ablation parity with
    /// `enable_windowing = false`).
    pub fn new(capacity: usize, horizon_ns: u64) -> Self {
        ContextRecency {
            slots: (0..capacity.max(2))
                .map(|_| RecencySlot {
                    context: AtomicU64::new(EMPTY),
                    at_ns: AtomicU64::new(0),
                })
                .collect(),
            horizon_ns,
        }
    }

    /// Records that `context` executed a TSVD point at `time_ns` and
    /// returns whether another context was active within the horizon.
    pub fn note_and_check(&self, context: ContextId, time_ns: u64) -> bool {
        audit::note_shared_write();
        let mut other_recent = false;
        let mut own_slot = None;
        let mut oldest = (0usize, u64::MAX);
        for (i, slot) in self.slots.iter().enumerate() {
            let c = slot.context.load(Ordering::Relaxed);
            let t = slot.at_ns.load(Ordering::Relaxed);
            if c == EMPTY {
                // Empty slots are the preferred landing spot.
                if oldest.1 > 0 {
                    oldest = (i, 0);
                }
                continue;
            }
            if c == context.0 {
                own_slot = Some(i);
            } else if time_ns.abs_diff(t) <= self.horizon_ns {
                other_recent = true;
            }
            if t < oldest.1 {
                oldest = (i, t);
            }
        }
        let idx = own_slot.unwrap_or(oldest.0);
        self.slots[idx].context.store(context.0, Ordering::Relaxed);
        self.slots[idx].at_ns.store(time_ns, Ordering::Relaxed);
        other_recent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer_is_sequential() {
        let b = PhaseBuffer::new(4);
        assert!(!b.is_concurrent());
    }

    #[test]
    fn single_context_is_sequential() {
        let b = PhaseBuffer::new(4);
        for _ in 0..10 {
            assert!(!b.record_and_check(ContextId(1)));
        }
    }

    #[test]
    fn two_contexts_are_concurrent() {
        let b = PhaseBuffer::new(4);
        b.record_and_check(ContextId(1));
        assert!(b.record_and_check(ContextId(2)));
        assert!(b.is_concurrent());
    }

    #[test]
    fn old_context_scrolls_out() {
        // A burst from one context flushes the other out of the window: the
        // execution has gone sequential again (e.g. after a join).
        let b = PhaseBuffer::new(4);
        b.record_and_check(ContextId(1));
        b.record_and_check(ContextId(2));
        for _ in 0..3 {
            b.record_and_check(ContextId(2));
        }
        assert!(
            !b.is_concurrent(),
            "context 1 should have scrolled out of the 4-entry window"
        );
    }

    #[test]
    fn capacity_bounds_memory() {
        let b = PhaseBuffer::new(8);
        for i in 0..100 {
            b.record_and_check(ContextId(i % 2));
        }
        assert!(b.len() <= 8);
    }

    #[test]
    fn minimum_capacity_is_two() {
        // A buffer of one could never see two contexts; the constructor
        // clamps so phase detection stays meaningful.
        let b = PhaseBuffer::new(0);
        b.record_and_check(ContextId(1));
        assert!(b.record_and_check(ContextId(2)));
    }

    #[test]
    fn recency_single_context_is_sequential() {
        let r = ContextRecency::new(8, 1_000);
        for t in 0..10 {
            assert!(!r.note_and_check(ContextId(1), t * 100));
        }
    }

    #[test]
    fn recency_two_contexts_within_horizon_are_concurrent() {
        let r = ContextRecency::new(8, 1_000);
        assert!(!r.note_and_check(ContextId(1), 5_000));
        assert!(r.note_and_check(ContextId(2), 5_500));
        // Replay order doesn't matter: an *older* timestamp within the
        // horizon of a recorded one is also concurrent.
        assert!(r.note_and_check(ContextId(3), 4_800));
    }

    #[test]
    fn recency_distant_contexts_are_sequential() {
        let r = ContextRecency::new(8, 1_000);
        assert!(!r.note_and_check(ContextId(1), 0));
        assert!(
            !r.note_and_check(ContextId(2), 10_000),
            "gap exceeds horizon"
        );
    }

    #[test]
    fn recency_infinite_horizon_matches_windowing_ablation() {
        let r = ContextRecency::new(8, u64::MAX);
        assert!(!r.note_and_check(ContextId(1), 0));
        assert!(r.note_and_check(ContextId(2), u64::MAX / 2));
    }

    #[test]
    fn recency_evicts_oldest_context() {
        let r = ContextRecency::new(2, 100);
        r.note_and_check(ContextId(1), 1_000);
        r.note_and_check(ContextId(2), 2_000);
        r.note_and_check(ContextId(3), 3_000); // evicts ctx 1 (oldest)
                                               // ctx 1's trace is gone: an event near its old timestamp sees only
                                               // contexts 2 and 3, both outside the horizon.
        assert!(!r.note_and_check(ContextId(4), 1_010));
    }

    #[test]
    fn context_zero_is_a_real_context() {
        // The empty sentinel is u64::MAX, not 0: the first context id must
        // count as an occupant, not an empty slot.
        let b = PhaseBuffer::new(4);
        assert!(!b.record_and_check(ContextId(0)));
        assert_eq!(b.len(), 1);
        assert!(b.record_and_check(ContextId(1)));
    }
}
