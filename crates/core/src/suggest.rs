//! Fix-suggestion records: the durable output of `repro fix`.
//!
//! The repair pass (in `tsvd-analyze`) joins confirmed dynamic violations
//! against the static site database and emits one record per suggested
//! fix: a classified pattern, a span anchor in the source, a rendered
//! unified diff (never applied), and a confidence grade. This module owns
//! the record schema so the harness, the analyzer, and CI baselines all
//! round-trip the same shape — one JSON object per line, append-only,
//! torn-tail tolerant like the violation sink it derives from.

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// Bumped when the suggestion record shape changes incompatibly.
pub const SUGGESTION_SCHEMA_VERSION: u32 = 1;

/// One span-anchored fix suggestion.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SuggestionRecord {
    /// Schema version ([`SUGGESTION_SCHEMA_VERSION`]).
    #[serde(default)]
    pub schema: u32,
    /// Fix pattern: `extend-existing-guard`, `adopt-safe-collection`,
    /// `order-by-join`, `channel-transfer`, `narrow-critical-section`,
    /// `wrap-in-mutex`, or `generic` when the sites miss the static
    /// database.
    pub pattern: String,
    /// One-line human summary ("wrap site B in the mutex guarding A").
    pub title: String,
    /// File the primary edit lands in (workspace-relative, `/`-separated).
    pub file: String,
    /// Anchor line of the primary edit (1-based).
    pub line: u32,
    /// First line of the suggested edit span (1-based, inclusive).
    #[serde(default)]
    pub span_start: u32,
    /// Last line of the suggested edit span (1-based, inclusive).
    #[serde(default)]
    pub span_end: u32,
    /// Normalized violation pair: first site (`file:line:column`).
    pub first: String,
    /// Normalized violation pair: second site.
    pub second: String,
    /// The shared receiver both sites touch (root binding name, or "?").
    #[serde(default)]
    pub receiver: String,
    /// Suggestion confidence in (0, 1]: the static pair's confidence
    /// scaled by the guard-evidence quality of the chosen pattern.
    pub confidence: f64,
    /// Why this pattern was chosen (guard evidence, reason, provenance).
    #[serde(default)]
    pub rationale: String,
    /// Rendered unified diff of the suggested edit; empty for `generic`
    /// degraded suggestions that have no span to anchor.
    #[serde(default)]
    pub diff: String,
}

impl SuggestionRecord {
    /// Deterministic identity for dedup and baseline joins: the pattern
    /// plus the violation pair it repairs.
    pub fn key(&self) -> (String, String, String) {
        (
            self.pattern.clone(),
            self.first.clone(),
            self.second.clone(),
        )
    }
}

/// Ranks suggestions in place: highest confidence first, ties broken by
/// content (pattern, file, anchor line, pair) so the rendered report and
/// the JSONL baseline are byte-stable across runs and merge orders.
pub fn rank(records: &mut [SuggestionRecord]) {
    records.sort_by(|a, b| {
        b.confidence
            .partial_cmp(&a.confidence)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.pattern.cmp(&b.pattern))
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.first.cmp(&b.first))
            .then_with(|| a.second.cmp(&b.second))
    });
}

/// Serializes records as JSONL (one JSON object per line).
pub fn to_jsonl(records: &[SuggestionRecord]) -> String {
    let mut out = String::new();
    for r in records {
        if let Ok(line) = serde_json::to_string(r) {
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

/// Writes records to `path` as JSONL.
pub fn save(records: &[SuggestionRecord], path: &Path) -> io::Result<()> {
    std::fs::write(path, to_jsonl(records))
}

/// Loads a suggestions JSONL file. Unparseable lines (a torn tail from a
/// crashed writer, a stray log line) are skipped, mirroring the violation
/// sink's durability contract: one bad line must not poison the report.
pub fn load(path: &Path) -> io::Result<Vec<SuggestionRecord>> {
    let text = std::fs::read_to_string(path)?;
    Ok(text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| serde_json::from_str::<SuggestionRecord>(l).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pattern: &str, conf: f64, file: &str, line: u32) -> SuggestionRecord {
        SuggestionRecord {
            schema: SUGGESTION_SCHEMA_VERSION,
            pattern: pattern.to_string(),
            title: format!("fix {pattern}"),
            file: file.to_string(),
            line,
            span_start: line,
            span_end: line,
            first: format!("{file}:{line}:5"),
            second: format!("{file}:{}:5", line + 1),
            receiver: "cache".to_string(),
            confidence: conf,
            rationale: "test".to_string(),
            diff: "--- a\n+++ b\n".to_string(),
        }
    }

    #[test]
    fn records_round_trip_through_jsonl() {
        let dir = std::env::temp_dir().join(format!("tsvd_suggest_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("suggestions.jsonl");
        let records = vec![
            rec("extend-existing-guard", 0.8, "a.rs", 10),
            rec("order-by-join", 0.5, "b.rs", 20),
        ];
        save(&records, &path).expect("save");
        let back = load(&path).expect("load");
        assert_eq!(back, records);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = std::env::temp_dir().join(format!("tsvd_suggest_torn_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("suggestions.jsonl");
        let mut text = to_jsonl(&[rec("wrap-in-mutex", 0.7, "a.rs", 3)]);
        text.push_str("{\"pattern\": \"torn-mid-wri");
        std::fs::write(&path, text).expect("write");
        let back = load(&path).expect("torn tail must not error");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].pattern, "wrap-in-mutex");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_orders_by_confidence_then_content() {
        let mut records = vec![
            rec("order-by-join", 0.5, "b.rs", 20),
            rec("adopt-safe-collection", 0.5, "a.rs", 10),
            rec("extend-existing-guard", 0.9, "z.rs", 99),
        ];
        rank(&mut records);
        assert_eq!(records[0].pattern, "extend-existing-guard");
        assert_eq!(records[1].pattern, "adopt-safe-collection");
        assert_eq!(records[2].pattern, "order-by-join");
        // A permutation ranks identically.
        let mut permuted = vec![records[2].clone(), records[0].clone(), records[1].clone()];
        rank(&mut permuted);
        assert_eq!(permuted, records);
    }
}
