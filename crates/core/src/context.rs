//! Execution-context identities.
//!
//! The paper's `thread_id` distinguishes concurrent executors. In a
//! task-parallel program the natural unit is the *task*, not the OS thread:
//! two tasks multiplexed onto one pool thread never overlap in time, while
//! fork/join happens-before edges connect tasks. The task substrate
//! (`tsvd-tasks`) therefore installs a logical context id for the duration of
//! each task; code running outside any task gets a per-OS-thread id.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of an execution context (an OS thread or a logical task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContextId(pub u64);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_DEFAULT: ContextId = ContextId(NEXT_ID.fetch_add(1, Ordering::Relaxed));
    static CURRENT: Cell<Option<ContextId>> = const { Cell::new(None) };
}

/// Allocates a fresh context id (used by the task substrate for each task).
pub fn fresh_id() -> ContextId {
    ContextId(NEXT_ID.fetch_add(1, Ordering::Relaxed))
}

/// Returns the context id of the calling thread: the installed task context
/// if inside [`enter`], otherwise this OS thread's stable default id.
pub fn current() -> ContextId {
    CURRENT.with(|c| match c.get() {
        Some(id) => id,
        None => THREAD_DEFAULT.with(|d| *d),
    })
}

/// Installs `id` as the current context until the returned guard drops.
///
/// Nested entries restore the previous context on drop, so a task that
/// synchronously runs a child task keeps correct attribution.
pub fn enter(id: ContextId) -> ContextGuard {
    let prev = CURRENT.with(|c| c.replace(Some(id)));
    ContextGuard { prev }
}

/// Guard restoring the previous context id on drop. See [`enter`].
pub struct ContextGuard {
    prev: Option<ContextId>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_default_is_stable() {
        assert_eq!(current(), current());
    }

    #[test]
    fn distinct_threads_get_distinct_defaults() {
        let here = current();
        let there = std::thread::spawn(current).join().expect("no panic");
        assert_ne!(here, there);
    }

    #[test]
    fn enter_overrides_and_restores() {
        let outer = current();
        let task = fresh_id();
        {
            let _g = enter(task);
            assert_eq!(current(), task);
            let nested = fresh_id();
            {
                let _g2 = enter(nested);
                assert_eq!(current(), nested);
            }
            assert_eq!(current(), task, "nested guard restores enclosing task");
        }
        assert_eq!(current(), outer, "outer guard restores thread default");
    }

    #[test]
    fn fresh_ids_are_unique() {
        let a = fresh_id();
        let b = fresh_id();
        assert_ne!(a, b);
    }
}
