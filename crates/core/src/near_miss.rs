//! Near-miss tracking (§3.4.2).
//!
//! TSVD keeps, per object, a short history of recent accesses. An incoming
//! access that conflicts with a history entry from a different context within
//! the physical window `T_nm` is a *near miss*: the pair of static program
//! locations involved becomes a dangerous-pair candidate that delay injection
//! will later try to convert into a real, caught violation.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::access::{Access, ObjId, OpKind};
use crate::context::ContextId;
use crate::site::SiteId;

/// An unordered pair of static program locations.
///
/// This is the paper's unit of bug identity and of trap-set membership: the
/// pair is normalized so `{a, b}` and `{b, a}` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SitePair {
    /// The smaller site of the pair.
    pub first: SiteId,
    /// The larger site of the pair (may equal `first`: 34 % of the paper's
    /// bugs are two threads executing the *same* location).
    pub second: SiteId,
}

impl SitePair {
    /// Builds a normalized pair.
    pub fn new(a: SiteId, b: SiteId) -> SitePair {
        if a <= b {
            SitePair {
                first: a,
                second: b,
            }
        } else {
            SitePair {
                first: b,
                second: a,
            }
        }
    }

    /// Returns `true` if `site` is one of the endpoints.
    pub fn contains(&self, site: SiteId) -> bool {
        self.first == site || self.second == site
    }

    /// Returns the endpoint other than `site` (or `site` itself for a
    /// same-location pair).
    pub fn other(&self, site: SiteId) -> SiteId {
        if self.first == site {
            self.second
        } else {
            self.first
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HistEntry {
    context: ContextId,
    site: SiteId,
    kind: OpKind,
    time_ns: u64,
}

/// Per-object bounded access history with near-miss extraction.
pub struct NearMissTracker {
    per_obj: Mutex<HashMap<ObjId, VecDeque<HistEntry>>>,
    /// `N_nm`: entries kept per object.
    history: usize,
    /// `T_nm` in nanoseconds; `None` disables windowing (Table 3 ablation).
    window_ns: Option<u64>,
    /// Bound on distinct objects tracked.
    max_objects: usize,
}

impl NearMissTracker {
    /// Creates a tracker keeping `history` entries per object and treating
    /// conflicting accesses within `window_ns` as near misses. Passing
    /// `None` for `window_ns` disables the window (ablation mode): any two
    /// conflicting accesses in the retained history form a near miss.
    pub fn new(history: usize, window_ns: Option<u64>, max_objects: usize) -> Self {
        NearMissTracker {
            per_obj: Mutex::new(HashMap::new()),
            history: history.max(1),
            window_ns,
            max_objects: max_objects.max(1),
        }
    }

    /// Records `access` and returns the dangerous pairs it forms with
    /// retained history entries (deduplicated within this call).
    pub fn record(&self, access: &Access) -> Vec<SitePair> {
        let mut per_obj = self.per_obj.lock();
        // Memory bound: drop everything if the object table grows past the
        // cap. Near misses are short-lived, so a reset only costs a few
        // rediscoveries.
        if per_obj.len() >= self.max_objects && !per_obj.contains_key(&access.obj) {
            per_obj.clear();
        }
        let entry = match per_obj.entry(access.obj) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(e) => e.insert(VecDeque::with_capacity(self.history)),
        };

        let mut pairs = Vec::new();
        for prev in entry.iter() {
            if prev.context == access.context {
                continue;
            }
            if !prev.kind.conflicts_with(access.kind) {
                continue;
            }
            if let Some(window) = self.window_ns {
                if access.time_ns.abs_diff(prev.time_ns) > window {
                    continue;
                }
            }
            let pair = SitePair::new(prev.site, access.site);
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }

        entry.push_back(HistEntry {
            context: access.context,
            site: access.site,
            kind: access.kind,
            time_ns: access.time_ns,
        });
        while entry.len() > self.history {
            entry.pop_front();
        }
        pairs
    }

    /// Approximate number of bytes retained (for the §5.5 resource report).
    pub fn approx_bytes(&self) -> usize {
        let per_obj = self.per_obj.lock();
        per_obj.len() * std::mem::size_of::<(ObjId, VecDeque<HistEntry>)>()
            + per_obj
                .values()
                .map(|v| v.capacity() * std::mem::size_of::<HistEntry>())
                .sum::<usize>()
    }

    /// Number of objects currently tracked.
    pub fn tracked_objects(&self) -> usize {
        self.per_obj.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{SiteData, SiteId};

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "near_miss_test.rs",
            line: n,
            column: 1,
        })
    }

    fn acc(ctx: u64, obj: u64, s: SiteId, kind: OpKind, t_ms: u64) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: s,
            op_name: "t.op",
            kind,
            time_ns: t_ms * 1_000_000,
        }
    }

    fn tracker() -> NearMissTracker {
        NearMissTracker::new(5, Some(100 * 1_000_000), 1024)
    }

    #[test]
    fn conflicting_accesses_within_window_pair_up() {
        let t = tracker();
        assert!(t.record(&acc(1, 7, site(1), OpKind::Write, 0)).is_empty());
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Read, 50));
        assert_eq!(pairs, vec![SitePair::new(site(1), site(2))]);
    }

    #[test]
    fn outside_window_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 500));
        assert!(pairs.is_empty());
    }

    #[test]
    fn same_context_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        assert!(t.record(&acc(1, 7, site(2), OpKind::Write, 1)).is_empty());
    }

    #[test]
    fn read_read_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Read, 0));
        assert!(t.record(&acc(2, 7, site(2), OpKind::Read, 1)).is_empty());
    }

    #[test]
    fn different_objects_do_not_pair() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        assert!(t.record(&acc(2, 8, site(2), OpKind::Write, 1)).is_empty());
    }

    #[test]
    fn same_site_pair_is_allowed() {
        // 34 % of the paper's bugs are two threads at one location.
        let t = tracker();
        t.record(&acc(1, 7, site(9), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(9), OpKind::Write, 1));
        assert_eq!(pairs, vec![SitePair::new(site(9), site(9))]);
    }

    #[test]
    fn history_is_bounded() {
        let t = NearMissTracker::new(2, Some(100 * 1_000_000), 1024);
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        t.record(&acc(1, 7, site(2), OpKind::Write, 1));
        t.record(&acc(1, 7, site(3), OpKind::Write, 2));
        // site(1) has been evicted (history = 2), so only 2 pairs form.
        let pairs = t.record(&acc(2, 7, site(4), OpKind::Write, 3));
        assert_eq!(pairs.len(), 2);
        assert!(!pairs.contains(&SitePair::new(site(1), site(4))));
    }

    #[test]
    fn windowless_mode_pairs_regardless_of_age() {
        let t = NearMissTracker::new(5, None, 1024);
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 60_000));
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn multiple_history_hits_dedup_within_call() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        t.record(&acc(1, 7, site(1), OpKind::Write, 1));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 2));
        assert_eq!(pairs.len(), 1, "same pair reported once per call");
    }

    #[test]
    fn object_table_is_bounded() {
        let t = NearMissTracker::new(5, Some(100 * 1_000_000), 4);
        for obj in 0..16u64 {
            t.record(&acc(1, obj, site(1), OpKind::Write, 0));
        }
        assert!(t.tracked_objects() <= 4);
    }

    #[test]
    fn pair_normalization() {
        let p1 = SitePair::new(site(2), site(1));
        let p2 = SitePair::new(site(1), site(2));
        assert_eq!(p1, p2);
        assert!(p1.contains(site(1)));
        assert_eq!(p1.other(site(1)), site(2));
        assert_eq!(p1.other(site(2)), site(1));
    }
}
