//! Near-miss tracking (§3.4.2).
//!
//! TSVD keeps, per object, a short history of recent accesses. An incoming
//! access that conflicts with a history entry from a different context within
//! the physical window `T_nm` is a *near miss*: the pair of static program
//! locations involved becomes a dangerous-pair candidate that delay injection
//! will later try to convert into a real, caught violation.
//!
//! The tracker is written to on every instrumented access, so the object
//! table is lock-striped by object id: concurrent accesses to different
//! objects take different locks. The memory bound is likewise per shard —
//! when a shard is full, a clock (second-chance) hand evicts its own
//! coldest object. Filling the table with fresh objects therefore never
//! wipes the histories of hot objects in other shards, and repeatedly
//! accessed objects in the *same* shard survive a pass of the hand.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::access::{Access, ObjId, OpKind};
use crate::context::ContextId;
use crate::site::SiteId;

const DEFAULT_SHARDS: usize = 16;

/// An unordered pair of static program locations.
///
/// This is the paper's unit of bug identity and of trap-set membership: the
/// pair is normalized so `{a, b}` and `{b, a}` compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SitePair {
    /// The smaller site of the pair.
    pub first: SiteId,
    /// The larger site of the pair (may equal `first`: 34 % of the paper's
    /// bugs are two threads executing the *same* location).
    pub second: SiteId,
}

impl SitePair {
    /// Builds a normalized pair.
    pub fn new(a: SiteId, b: SiteId) -> SitePair {
        if a <= b {
            SitePair {
                first: a,
                second: b,
            }
        } else {
            SitePair {
                first: b,
                second: a,
            }
        }
    }

    /// Returns `true` if `site` is one of the endpoints.
    pub fn contains(&self, site: SiteId) -> bool {
        self.first == site || self.second == site
    }

    /// Returns the endpoint other than `site` (or `site` itself for a
    /// same-location pair).
    pub fn other(&self, site: SiteId) -> SiteId {
        if self.first == site {
            self.second
        } else {
            self.first
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct HistEntry {
    context: ContextId,
    site: SiteId,
    kind: OpKind,
    time_ns: u64,
}

struct ObjHistory {
    hist: VecDeque<HistEntry>,
    /// Second-chance bit: set on every access, cleared when the clock hand
    /// passes over the object.
    hot: bool,
}

#[derive(Default)]
struct Shard {
    map: HashMap<ObjId, ObjHistory>,
    /// Clock order over this shard's objects.
    order: VecDeque<ObjId>,
}

/// Per-object bounded access history with near-miss extraction.
pub struct NearMissTracker {
    shards: Box<[Mutex<Shard>]>,
    /// `N_nm`: entries kept per object.
    history: usize,
    /// `T_nm` in nanoseconds; `None` disables windowing (Table 3 ablation).
    window_ns: Option<u64>,
    /// Bound on distinct objects tracked per shard.
    per_shard_objects: usize,
}

impl NearMissTracker {
    /// Creates a tracker keeping `history` entries per object and treating
    /// conflicting accesses within `window_ns` as near misses. Passing
    /// `None` for `window_ns` disables the window (ablation mode): any two
    /// conflicting accesses in the retained history form a near miss.
    pub fn new(history: usize, window_ns: Option<u64>, max_objects: usize) -> Self {
        Self::with_shards(history, window_ns, max_objects, DEFAULT_SHARDS)
    }

    /// Like [`NearMissTracker::new`] with an explicit lock-stripe count.
    /// The stripe count is clamped to `max_objects` so the total object
    /// bound (`max_objects`, split evenly across stripes) always holds.
    pub fn with_shards(
        history: usize,
        window_ns: Option<u64>,
        max_objects: usize,
        shards: usize,
    ) -> Self {
        let max_objects = max_objects.max(1);
        let shards = shards.clamp(1, max_objects);
        NearMissTracker {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            history: history.max(1),
            window_ns,
            per_shard_objects: (max_objects / shards).max(1),
        }
    }

    fn shard_index(&self, obj: ObjId) -> usize {
        let h = obj.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize % self.shards.len()
    }

    /// Records `access` and returns the dangerous pairs it forms with
    /// retained history entries (deduplicated within this call).
    pub fn record(&self, access: &Access) -> Vec<SitePair> {
        crate::audit::note_lock();
        let mut guard = self.shards[self.shard_index(access.obj)].lock();
        Self::record_in_shard(
            &mut guard,
            access,
            self.history,
            self.window_ns,
            self.per_shard_objects,
        )
    }

    /// Records a batch of accesses, locking each stripe once per batch
    /// instead of once per event. Events are bucketed by stripe and replayed
    /// in original order within each bucket; per-object history outcomes are
    /// identical to calling [`NearMissTracker::record`] event by event,
    /// because an object's history lives entirely in one stripe and the
    /// near-miss window compares recorded timestamps, not arrival order.
    ///
    /// `sink(index, pairs)` is invoked for every event (by its index in
    /// `events`) that formed at least one dangerous pair.
    pub fn record_batch(&self, events: &[Access], mut sink: impl FnMut(usize, Vec<SitePair>)) {
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (index, access) in events.iter().enumerate() {
            buckets[self.shard_index(access.obj)].push(index);
        }
        for (shard_index, bucket) in buckets.into_iter().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            crate::audit::note_lock();
            let mut guard = self.shards[shard_index].lock();
            for index in bucket {
                let pairs = Self::record_in_shard(
                    &mut guard,
                    &events[index],
                    self.history,
                    self.window_ns,
                    self.per_shard_objects,
                );
                if !pairs.is_empty() {
                    sink(index, pairs);
                }
            }
        }
    }

    fn record_in_shard(
        shard: &mut Shard,
        access: &Access,
        history: usize,
        window_ns: Option<u64>,
        per_shard_objects: usize,
    ) -> Vec<SitePair> {
        // Single map lookup on the hot (existing-object) path: with many
        // live objects the lookup is a cache miss, so a `contains_key` +
        // `get_mut` sequence would double the dominant cost of recording.
        let shard = &mut *shard;
        let mut is_new = false;
        let entry = match shard.map.entry(access.obj) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let entry = e.into_mut();
                entry.hot = true;
                entry
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                // New objects start cold so a churn of one-shot objects
                // cannot strip proven-hot ones of their second chance
                // within one pass of the clock hand (eviction runs below,
                // once this entry's borrow is released).
                is_new = true;
                shard.order.push_back(access.obj);
                v.insert(ObjHistory {
                    hist: VecDeque::with_capacity(history),
                    hot: false,
                })
            }
        };

        let mut pairs = Vec::new();
        for prev in entry.hist.iter() {
            if prev.context == access.context {
                continue;
            }
            if !prev.kind.conflicts_with(access.kind) {
                continue;
            }
            if let Some(window) = window_ns {
                if access.time_ns.abs_diff(prev.time_ns) > window {
                    continue;
                }
            }
            let pair = SitePair::new(prev.site, access.site);
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }

        entry.hist.push_back(HistEntry {
            context: access.context,
            site: access.site,
            kind: access.kind,
            time_ns: access.time_ns,
        });
        while entry.hist.len() > history {
            entry.hist.pop_front();
        }

        if is_new {
            // Per-shard memory bound: the clock hand evicts this shard's
            // coldest object, giving recently touched ones a second chance.
            // The just-inserted object is exempt (it is cold by design and
            // must survive its own insertion).
            while shard.map.len() > per_shard_objects {
                let Some(victim) = shard.order.pop_front() else {
                    break;
                };
                if victim == access.obj {
                    shard.order.push_back(victim);
                    continue;
                }
                match shard.map.get_mut(&victim) {
                    Some(e) if e.hot => {
                        e.hot = false;
                        shard.order.push_back(victim);
                    }
                    _ => {
                        shard.map.remove(&victim);
                    }
                }
            }
        }
        pairs
    }

    /// Approximate number of bytes retained (for the §5.5 resource report).
    pub fn approx_bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let s = s.lock();
                s.map.len() * std::mem::size_of::<(ObjId, ObjHistory)>()
                    + s.map
                        .values()
                        .map(|v| v.hist.capacity() * std::mem::size_of::<HistEntry>())
                        .sum::<usize>()
            })
            .sum()
    }

    /// Number of objects currently tracked.
    pub fn tracked_objects(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{SiteData, SiteId};

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "near_miss_test.rs",
            line: n,
            column: 1,
        })
    }

    fn acc(ctx: u64, obj: u64, s: SiteId, kind: OpKind, t_ms: u64) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: s,
            op_name: "t.op",
            kind,
            time_ns: t_ms * 1_000_000,
        }
    }

    fn tracker() -> NearMissTracker {
        NearMissTracker::new(5, Some(100 * 1_000_000), 1024)
    }

    #[test]
    fn conflicting_accesses_within_window_pair_up() {
        let t = tracker();
        assert!(t.record(&acc(1, 7, site(1), OpKind::Write, 0)).is_empty());
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Read, 50));
        assert_eq!(pairs, vec![SitePair::new(site(1), site(2))]);
    }

    #[test]
    fn outside_window_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 500));
        assert!(pairs.is_empty());
    }

    #[test]
    fn same_context_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        assert!(t.record(&acc(1, 7, site(2), OpKind::Write, 1)).is_empty());
    }

    #[test]
    fn read_read_is_not_a_near_miss() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Read, 0));
        assert!(t.record(&acc(2, 7, site(2), OpKind::Read, 1)).is_empty());
    }

    #[test]
    fn different_objects_do_not_pair() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        assert!(t.record(&acc(2, 8, site(2), OpKind::Write, 1)).is_empty());
    }

    #[test]
    fn same_site_pair_is_allowed() {
        // 34 % of the paper's bugs are two threads at one location.
        let t = tracker();
        t.record(&acc(1, 7, site(9), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(9), OpKind::Write, 1));
        assert_eq!(pairs, vec![SitePair::new(site(9), site(9))]);
    }

    #[test]
    fn history_is_bounded() {
        let t = NearMissTracker::new(2, Some(100 * 1_000_000), 1024);
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        t.record(&acc(1, 7, site(2), OpKind::Write, 1));
        t.record(&acc(1, 7, site(3), OpKind::Write, 2));
        // site(1) has been evicted (history = 2), so only 2 pairs form.
        let pairs = t.record(&acc(2, 7, site(4), OpKind::Write, 3));
        assert_eq!(pairs.len(), 2);
        assert!(!pairs.contains(&SitePair::new(site(1), site(4))));
    }

    #[test]
    fn windowless_mode_pairs_regardless_of_age() {
        let t = NearMissTracker::new(5, None, 1024);
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 60_000));
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn multiple_history_hits_dedup_within_call() {
        let t = tracker();
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        t.record(&acc(1, 7, site(1), OpKind::Write, 1));
        let pairs = t.record(&acc(2, 7, site(2), OpKind::Write, 2));
        assert_eq!(pairs.len(), 1, "same pair reported once per call");
    }

    #[test]
    fn object_table_is_bounded() {
        let t = NearMissTracker::new(5, Some(100 * 1_000_000), 4);
        for obj in 0..16u64 {
            t.record(&acc(1, obj, site(1), OpKind::Write, 0));
        }
        assert!(t.tracked_objects() <= 4);
    }

    #[test]
    fn full_table_still_pairs_unrelated_hot_objects() {
        // Regression: the old eviction cleared the WHOLE table when the
        // object cap was reached, wiping hot objects' histories. With
        // per-shard eviction, flooding other shards must leave a hot
        // object's history intact so its near miss still pairs.
        let t = NearMissTracker::with_shards(5, Some(100 * 1_000_000), 8, 4);
        let hot = ObjId(0);
        let hot_shard = t.shard_index(hot);
        t.record(&acc(1, 0, site(1), OpKind::Write, 0));
        let mut flooded = 0;
        let mut candidate = 1u64;
        while flooded < 32 {
            if t.shard_index(ObjId(candidate)) != hot_shard {
                t.record(&acc(1, candidate, site(2), OpKind::Write, 1));
                flooded += 1;
            }
            candidate += 1;
        }
        let pairs = t.record(&acc(2, 0, site(3), OpKind::Read, 2));
        assert_eq!(pairs, vec![SitePair::new(site(1), site(3))]);
    }

    #[test]
    fn hot_object_survives_in_shard_eviction() {
        // One stripe, tiny cap: a stream of one-shot objects churns through
        // the shard, but the clock hand's second chance keeps the
        // repeatedly-touched object alive.
        let t = NearMissTracker::with_shards(5, Some(100 * 1_000_000), 4, 1);
        t.record(&acc(1, 7, site(1), OpKind::Write, 0));
        for obj in 100..116u64 {
            t.record(&acc(1, obj, site(2), OpKind::Write, 1));
            t.record(&acc(1, 7, site(1), OpKind::Write, 1)); // Keep 7 hot.
        }
        assert!(t.tracked_objects() <= 4);
        let pairs = t.record(&acc(2, 7, site(3), OpKind::Read, 2));
        assert!(
            pairs.contains(&SitePair::new(site(1), site(3))),
            "hot object's history must survive the churn"
        );
    }

    #[test]
    fn batch_recording_matches_sequential() {
        // The same event stream through `record_batch` must attribute
        // exactly the pairs `record` attributes, event by event, even
        // though the batch path visits stripes out of event order.
        let seq = tracker();
        let bat = tracker();
        let events: Vec<Access> = (0..48u64)
            .map(|i| {
                let kind = if i % 2 == 0 {
                    OpKind::Write
                } else {
                    OpKind::Read
                };
                acc(1 + i % 3, i % 7, site((i % 5) as u32), kind, i)
            })
            .collect();
        let mut expected = Vec::new();
        for (index, access) in events.iter().enumerate() {
            let pairs = seq.record(access);
            if !pairs.is_empty() {
                expected.push((index, pairs));
            }
        }
        assert!(!expected.is_empty(), "the stream must form pairs");
        let mut got = Vec::new();
        bat.record_batch(&events, |index, pairs| got.push((index, pairs)));
        got.sort_by_key(|(index, _)| *index);
        assert_eq!(got, expected);
    }

    #[test]
    fn pair_normalization() {
        let p1 = SitePair::new(site(2), site(1));
        let p2 = SitePair::new(site(1), site(2));
        assert_eq!(p1, p2);
        assert!(p1.contains(site(1)));
        assert_eq!(p1.other(site(1)), site(2));
        assert_eq!(p1.other(site(2)), site(1));
    }
}
