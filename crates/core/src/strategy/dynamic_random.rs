//! DynamicRandom (§3.2): the simplest baseline.
//!
//! Every TSVD point is an eligible delay location; each dynamic execution
//! delays with a small fixed probability (the paper uses 0.05 in Table 2)
//! for a random duration. Dynamic sampling over-delays hot paths and wastes
//! most delays in sequential phases — which is exactly what Table 2 shows.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::Access;
use crate::config::TsvdConfig;
use crate::strategy::Strategy;

/// The DynamicRandom strategy.
pub struct DynamicRandom {
    probability: f64,
    delay_ns: u64,
    rng: Mutex<SmallRng>,
}

impl DynamicRandom {
    /// Creates the strategy from `config` (`dynamic_random_p`, `delay_ns`).
    pub fn new(config: &TsvdConfig) -> Self {
        DynamicRandom {
            probability: config.dynamic_random_p,
            delay_ns: config.delay_ns,
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed)),
        }
    }
}

impl Strategy for DynamicRandom {
    fn name(&self) -> &'static str {
        "dynamic-random"
    }

    fn on_access(&self, _access: &Access) -> Option<u64> {
        let mut rng = self.rng.lock();
        if rng.gen::<f64>() < self.probability {
            // "The thread sleeps for a random amount of time" (§3.2).
            Some(rng.gen_range(self.delay_ns / 2..=self.delay_ns))
        } else {
            None
        }
    }

    fn on_delay_complete(&self, _access: &Access, _start_ns: u64, _end_ns: u64, _caught: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;

    fn access() -> Access {
        Access {
            context: ContextId(1),
            obj: ObjId(1),
            site: crate::site!(),
            op_name: "t.op",
            kind: OpKind::Write,
            time_ns: 0,
        }
    }

    #[test]
    fn fires_at_roughly_configured_rate() {
        let mut cfg = TsvdConfig::for_testing();
        cfg.dynamic_random_p = 0.2;
        let s = DynamicRandom::new(&cfg);
        let fires = (0..10_000)
            .filter(|_| s.on_access(&access()).is_some())
            .count();
        assert!(
            (1_500..2_500).contains(&fires),
            "expected ~2000 fires out of 10000, got {fires}"
        );
    }

    #[test]
    fn zero_probability_never_fires() {
        let mut cfg = TsvdConfig::for_testing();
        cfg.dynamic_random_p = 0.0;
        let s = DynamicRandom::new(&cfg);
        assert!((0..1_000).all(|_| s.on_access(&access()).is_none()));
    }

    #[test]
    fn delay_length_is_bounded() {
        let mut cfg = TsvdConfig::for_testing();
        cfg.dynamic_random_p = 1.0;
        let s = DynamicRandom::new(&cfg);
        for _ in 0..100 {
            let d = s.on_access(&access()).expect("p = 1 always fires");
            assert!(d >= cfg.delay_ns / 2 && d <= cfg.delay_ns);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let mut cfg = TsvdConfig::for_testing();
        cfg.dynamic_random_p = 0.5;
        let a = DynamicRandom::new(&cfg);
        let b = DynamicRandom::new(&cfg);
        let seq_a: Vec<Option<u64>> = (0..50).map(|_| a.on_access(&access())).collect();
        let seq_b: Vec<Option<u64>> = (0..50).map(|_| b.on_access(&access())).collect();
        assert_eq!(seq_a, seq_b);
    }
}
