//! Focused reproduction: confirm one reported violation on demand.
//!
//! After TSVD reports a bug, developers want to *see it again* (the paper's
//! §5.2 validation: product teams confirmed every reported bug as real).
//! This strategy is the single-pair, always-delay mode that RaceFuzzer-style
//! tools use for their targeted runs (§3.5): it delays only at the two
//! locations of one given pair, with probability 1 and a generous delay, so
//! a single re-run of the module reproduces the caught interleaving with
//! high probability. No discovery machinery runs at all.

use crate::access::Access;
use crate::config::TsvdConfig;
use crate::near_miss::SitePair;
use crate::strategy::Strategy;

/// The focused single-pair reproduction strategy.
pub struct Focused {
    pair: SitePair,
    delay_ns: u64,
}

impl Focused {
    /// Creates a strategy that hunts exactly `pair`, delaying with
    /// `reproduce_factor × delay_ns` (longer-than-normal delays make the
    /// reproduction robust to scheduling noise).
    pub fn new(config: &TsvdConfig, pair: SitePair, reproduce_factor: u32) -> Self {
        Focused {
            pair,
            delay_ns: config.delay_ns * u64::from(reproduce_factor.max(1)),
        }
    }

    /// The pair being reproduced.
    pub fn pair(&self) -> SitePair {
        self.pair
    }
}

impl Strategy for Focused {
    fn name(&self) -> &'static str {
        "focused"
    }

    fn on_access(&self, access: &Access) -> Option<u64> {
        self.pair.contains(access.site).then_some(self.delay_ns)
    }

    fn on_delay_complete(&self, _access: &Access, _start_ns: u64, _end_ns: u64, _caught: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;
    use crate::site::{SiteData, SiteId};

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "focused_test.rs",
            line: n,
            column: 1,
        })
    }

    fn acc(s: SiteId) -> Access {
        Access {
            context: ContextId(1),
            obj: ObjId(1),
            site: s,
            op_name: "t.op",
            kind: OpKind::Write,
            time_ns: 0,
        }
    }

    #[test]
    fn delays_only_at_the_target_pair() {
        let cfg = TsvdConfig::for_testing();
        let f = Focused::new(&cfg, SitePair::new(site(1), site(2)), 3);
        assert_eq!(f.on_access(&acc(site(1))), Some(cfg.delay_ns * 3));
        assert_eq!(f.on_access(&acc(site(2))), Some(cfg.delay_ns * 3));
        assert_eq!(f.on_access(&acc(site(3))), None);
    }

    #[test]
    fn same_location_pair_fires_at_its_site() {
        let cfg = TsvdConfig::for_testing();
        let f = Focused::new(&cfg, SitePair::new(site(9), site(9)), 1);
        assert_eq!(f.on_access(&acc(site(9))), Some(cfg.delay_ns));
    }

    #[test]
    fn factor_is_clamped_to_at_least_one() {
        let cfg = TsvdConfig::for_testing();
        let f = Focused::new(&cfg, SitePair::new(site(1), site(2)), 0);
        assert_eq!(f.on_access(&acc(site(1))), Some(cfg.delay_ns));
    }
}
