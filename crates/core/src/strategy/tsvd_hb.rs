//! TSVD-HB (§3.5): the happens-before-analysis comparison variant.
//!
//! Follows the RaceFuzzer approach: monitor synchronization operations
//! (forks, joins, locks), compute the happens-before relation with vector
//! clocks, and arm a pair of locations only when two conflicting accesses
//! are provably *concurrent*. Delay injection and decay then work exactly
//! as in TSVD — in the same run, multiple threads at once.
//!
//! The three optimizations of §3.5 are implemented directly:
//!
//! 1. local timestamps are incremented at **accesses** (TSVD points), not at
//!    the far more frequent synchronization operations;
//! 2. clocks are **immutable AVL tree-maps** ([`tsvd_vc::ImmutableVc`]), so a
//!    message send (fork, lock release) is an `O(1)` by-reference copy;
//! 3. a join whose source clock is reference-equal to the receiver skips the
//!    element-wise max (`join` short-circuits on pointer equality).

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tsvd_vc::ImmutableVc;

use crate::access::{Access, ObjId, OpKind};
use crate::config::TsvdConfig;
use crate::context::ContextId;
use crate::decay::DecayTable;
use crate::near_miss::SitePair;
use crate::site::SiteId;
use crate::strategy::{Strategy, SyncEvent};
use crate::trap_file::TrapFileData;
use crate::trapset::TrapSet;

/// One remembered access for the race check: context, its local timestamp
/// at the access, the location, and the read/write kind.
#[derive(Debug, Clone)]
struct ObjAccess {
    context: ContextId,
    stamp: u64,
    site: SiteId,
    kind: OpKind,
}

/// Bound on retained final clocks of completed contexts. Joining a task
/// whose final clock was evicted falls back to its (identical) live clock
/// or, at worst, loses an ordering edge — which can only add spurious
/// dangerous pairs, never false reports (the trap still requires a real
/// collision).
const MAX_FINAL_CLOCKS: usize = 8_192;

#[derive(Default)]
struct ClockState {
    clocks: HashMap<ContextId, ImmutableVc>,
    final_clocks: HashMap<ContextId, ImmutableVc>,
    /// Insertion order of `final_clocks`, for FIFO eviction.
    final_order: VecDeque<ContextId>,
    lock_clocks: HashMap<u64, ImmutableVc>,
    obj_hist: HashMap<ObjId, VecDeque<ObjAccess>>,
}

/// The TSVD-HB strategy.
pub struct TsvdHb {
    state: Mutex<ClockState>,
    traps: TrapSet,
    decay: DecayTable,
    delay_ns: u64,
    history: usize,
    /// Cap on pairs armed from imported trap files (see
    /// [`TsvdConfig::trap_import_budget`]).
    import_budget: usize,
    rng: Mutex<SmallRng>,
}

impl TsvdHb {
    /// Creates the strategy from `config` (`hb_access_history`, decay
    /// parameters, `delay_ns`).
    pub fn new(config: &TsvdConfig) -> Self {
        TsvdHb {
            state: Mutex::new(ClockState::default()),
            traps: TrapSet::new(),
            decay: DecayTable::new(config.decay_factor, config.decay_floor),
            delay_ns: config.delay_ns,
            history: config.hb_access_history.max(1),
            import_budget: config.trap_import_budget,
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed ^ 0x4B48)),
        }
    }

    /// Current number of dangerous pairs (stats / tests).
    pub fn trap_set_len(&self) -> usize {
        self.traps.len()
    }

    /// Returns `true` if `pair` is currently armed.
    pub fn is_armed(&self, pair: SitePair) -> bool {
        self.traps.contains(pair)
    }
}

impl Strategy for TsvdHb {
    fn name(&self) -> &'static str {
        "tsvd-hb"
    }

    fn on_access(&self, access: &Access) -> Option<u64> {
        let mut armed_any = false;
        {
            let mut st = self.state.lock();
            // Optimization 1: increment the local component here, at the
            // (infrequent) TSVD point.
            let vc = st
                .clocks
                .entry(access.context)
                .or_default()
                .increment(access.context.0);
            let stamp = vc.get(access.context.0);
            st.clocks.insert(access.context, vc.clone());

            // Race check against remembered accesses: a prior access by
            // context C with stamp s is ordered before us iff our clock has
            // caught up to it (vc[C] >= s); otherwise the two are concurrent.
            let hist = st.obj_hist.entry(access.obj).or_default();
            let mut new_pairs = Vec::new();
            for prev in hist.iter() {
                if prev.context == access.context {
                    continue;
                }
                if !prev.kind.conflicts_with(access.kind) {
                    continue;
                }
                if vc.get(prev.context.0) < prev.stamp {
                    new_pairs.push(SitePair::new(prev.site, access.site));
                }
            }
            hist.push_back(ObjAccess {
                context: access.context,
                stamp,
                site: access.site,
                kind: access.kind,
            });
            while hist.len() > self.history {
                hist.pop_front();
            }
            for pair in new_pairs {
                if self.traps.add(pair) {
                    self.decay.arm(pair.first);
                    self.decay.arm(pair.second);
                    armed_any = true;
                }
            }
        }
        let _ = armed_any;

        if self.traps.contains_site(access.site) {
            let p = self.decay.probability(access.site);
            if p >= 1.0 || self.rng.lock().gen::<f64>() < p {
                return Some(self.delay_ns);
            }
        }
        None
    }

    fn on_delay_complete(&self, access: &Access, _start_ns: u64, _end_ns: u64, caught: bool) {
        if !caught {
            // Per-location decay, as in TSVD (see tsvd.rs for why the
            // partner is not punished for this site's fruitless delays).
            if self.decay.decay(access.site) {
                self.traps.remove_site(access.site);
            }
        }
    }

    fn on_sync(&self, event: &SyncEvent) {
        let mut st = self.state.lock();
        match *event {
            SyncEvent::Fork { parent, child } => {
                // Optimization 2: an O(1) by-reference copy of the parent
                // clock; no increments at synchronization operations.
                let parent_vc = st.clocks.entry(parent).or_default().clone();
                st.clocks.insert(child, parent_vc);
            }
            SyncEvent::TaskEnd { context } => {
                let vc = st.clocks.get(&context).cloned().unwrap_or_default();
                if st.final_clocks.insert(context, vc).is_none() {
                    st.final_order.push_back(context);
                }
                while st.final_clocks.len() > MAX_FINAL_CLOCKS {
                    if let Some(old) = st.final_order.pop_front() {
                        st.final_clocks.remove(&old);
                        // The live clock is also dead weight once the task
                        // ended and its final clock aged out.
                        st.clocks.remove(&old);
                    } else {
                        break;
                    }
                }
            }
            SyncEvent::Join { waiter, target } => {
                let target_vc = st
                    .final_clocks
                    .get(&target)
                    .or_else(|| st.clocks.get(&target))
                    .cloned()
                    .unwrap_or_default();
                let waiter_vc = st.clocks.entry(waiter).or_default().clone();
                // Optimization 3: `join` short-circuits on pointer equality,
                // the common fork/join-without-TSVD-points case.
                st.clocks.insert(waiter, waiter_vc.join(&target_vc));
            }
            SyncEvent::LockAcquire { context, lock } => {
                if let Some(lock_vc) = st.lock_clocks.get(&lock).cloned() {
                    let vc = st.clocks.entry(context).or_default().clone();
                    st.clocks.insert(context, vc.join(&lock_vc));
                }
            }
            SyncEvent::LockRelease { context, lock } => {
                let vc = st.clocks.entry(context).or_default().clone();
                st.lock_clocks.insert(lock, vc);
            }
        }
    }

    fn on_violation(&self, pair: SitePair) {
        self.traps.mark_found(pair);
    }

    fn export_trap_file(&self) -> Option<TrapFileData> {
        Some(TrapFileData::from_pairs(&self.traps.pairs()))
    }

    fn import_trap_file(&self, data: &TrapFileData) {
        // Same confidence-first rationing as the flagship strategy.
        for index in data.arming_order() {
            if self.traps.len() >= self.import_budget {
                break;
            }
            let Some(pair) = data.pair_at(index) else {
                continue;
            };
            if self.traps.add(pair) {
                self.decay.arm(pair.first);
                self.decay.arm(pair.second);
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        let st = self.state.lock();
        let clock_bytes = |n: usize| n * (std::mem::size_of::<ContextId>() + 48);
        clock_bytes(st.clocks.len())
            + clock_bytes(st.final_clocks.len())
            + clock_bytes(st.lock_clocks.len())
            + st.obj_hist
                .values()
                .map(|h| h.len() * std::mem::size_of::<ObjAccess>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "tsvd_hb_test.rs",
            line: n,
            column: 1,
        })
    }

    fn acc(ctx: u64, obj: u64, s: SiteId, kind: OpKind) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: s,
            op_name: "t.op",
            kind,
            time_ns: 0,
        }
    }

    fn strategy() -> TsvdHb {
        TsvdHb::new(&TsvdConfig::paper())
    }

    #[test]
    fn concurrent_conflicting_accesses_arm_pair() {
        let s = strategy();
        // Two unrelated contexts (no fork edge): concurrent by definition.
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        let d = s.on_access(&acc(2, 7, site(2), OpKind::Write));
        assert_eq!(s.trap_set_len(), 1);
        assert!(d.is_some(), "armed site delays in the same run");
    }

    #[test]
    fn fork_edge_orders_parent_prefix() {
        let s = strategy();
        // Parent (1) accesses, then forks child (2): the child inherits the
        // parent's clock, so the accesses are HB-ordered — no pair.
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        s.on_sync(&SyncEvent::Fork {
            parent: ContextId(1),
            child: ContextId(2),
        });
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        assert_eq!(s.trap_set_len(), 0, "fork-ordered accesses must not arm");
    }

    #[test]
    fn parent_access_after_fork_is_concurrent_with_child() {
        let s = strategy();
        s.on_sync(&SyncEvent::Fork {
            parent: ContextId(1),
            child: ContextId(2),
        });
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        assert_eq!(s.trap_set_len(), 1);
    }

    #[test]
    fn join_edge_orders_child_accesses() {
        let s = strategy();
        s.on_sync(&SyncEvent::Fork {
            parent: ContextId(1),
            child: ContextId(2),
        });
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        s.on_sync(&SyncEvent::TaskEnd {
            context: ContextId(2),
        });
        s.on_sync(&SyncEvent::Join {
            waiter: ContextId(1),
            target: ContextId(2),
        });
        // Parent accesses after joining the child: ordered, no pair.
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        assert_eq!(s.trap_set_len(), 0, "join-ordered accesses must not arm");
    }

    #[test]
    fn lock_transfer_orders_critical_sections() {
        let s = strategy();
        // Context 1 accesses under the lock, releases; context 2 acquires
        // the same lock, then accesses: release→acquire is an HB edge.
        s.on_sync(&SyncEvent::LockAcquire {
            context: ContextId(1),
            lock: 99,
        });
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        s.on_sync(&SyncEvent::LockRelease {
            context: ContextId(1),
            lock: 99,
        });
        s.on_sync(&SyncEvent::LockAcquire {
            context: ContextId(2),
            lock: 99,
        });
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        s.on_sync(&SyncEvent::LockRelease {
            context: ContextId(2),
            lock: 99,
        });
        assert_eq!(
            s.trap_set_len(),
            0,
            "consistently locked accesses must not arm (no false positives)"
        );
    }

    #[test]
    fn different_locks_do_not_order() {
        let s = strategy();
        s.on_sync(&SyncEvent::LockAcquire {
            context: ContextId(1),
            lock: 1,
        });
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        s.on_sync(&SyncEvent::LockRelease {
            context: ContextId(1),
            lock: 1,
        });
        s.on_sync(&SyncEvent::LockAcquire {
            context: ContextId(2),
            lock: 2,
        });
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        assert_eq!(s.trap_set_len(), 1, "distinct locks do not synchronize");
    }

    #[test]
    fn read_read_never_arms() {
        let s = strategy();
        s.on_access(&acc(1, 7, site(1), OpKind::Read));
        s.on_access(&acc(2, 7, site(2), OpKind::Read));
        assert_eq!(s.trap_set_len(), 0);
    }

    #[test]
    fn history_is_bounded() {
        let mut cfg = TsvdConfig::paper();
        cfg.hb_access_history = 2;
        let s = TsvdHb::new(&cfg);
        for i in 0..10u64 {
            s.on_access(&acc(1, 7, site(10 + i as u32), OpKind::Write));
        }
        let st = s.state.lock();
        assert!(st.obj_hist.get(&ObjId(7)).expect("tracked").len() <= 2);
    }

    #[test]
    fn violation_prunes_pair() {
        let s = strategy();
        s.on_access(&acc(1, 7, site(1), OpKind::Write));
        s.on_access(&acc(2, 7, site(2), OpKind::Write));
        let pair = SitePair::new(site(1), site(2));
        assert!(s.is_armed(pair));
        s.on_violation(pair);
        assert!(!s.is_armed(pair));
    }

    #[test]
    fn final_clock_table_is_bounded() {
        let s = strategy();
        for i in 0..(MAX_FINAL_CLOCKS as u64 + 500) {
            let ctx = ContextId(10_000 + i);
            s.on_sync(&SyncEvent::Fork {
                parent: ContextId(1),
                child: ctx,
            });
            s.on_sync(&SyncEvent::TaskEnd { context: ctx });
        }
        let st = s.state.lock();
        assert!(st.final_clocks.len() <= MAX_FINAL_CLOCKS);
        assert_eq!(st.final_clocks.len(), st.final_order.len());
    }

    #[test]
    fn evicted_final_clock_degrades_safely() {
        // Joining a context whose final clock aged out must not panic and
        // must not order anything incorrectly (it simply loses the edge).
        let s = strategy();
        s.on_sync(&SyncEvent::Fork {
            parent: ContextId(1),
            child: ContextId(2),
        });
        s.on_access(&acc(2, 7, site(40), OpKind::Write));
        s.on_sync(&SyncEvent::TaskEnd {
            context: ContextId(2),
        });
        // Flood the table so context 2's final clock is evicted.
        for i in 0..(MAX_FINAL_CLOCKS as u64 + 10) {
            let ctx = ContextId(20_000 + i);
            s.on_sync(&SyncEvent::TaskEnd { context: ctx });
        }
        s.on_sync(&SyncEvent::Join {
            waiter: ContextId(1),
            target: ContextId(2),
        });
        // The lost edge means this access *may* arm a pair — allowed — but
        // nothing panics and the trap set stays consistent.
        s.on_access(&acc(1, 7, site(41), OpKind::Write));
        assert!(s.trap_set_len() <= 1);
    }

    #[test]
    fn trap_file_round_trip() {
        let s1 = strategy();
        s1.on_access(&acc(1, 7, site(1), OpKind::Write));
        s1.on_access(&acc(2, 7, site(2), OpKind::Write));
        let file = s1.export_trap_file().expect("persists");
        let s2 = strategy();
        s2.import_trap_file(&file);
        assert!(s2.is_armed(SitePair::new(site(1), site(2))));
    }
}
