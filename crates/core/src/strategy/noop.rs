//! The do-nothing strategy: instrumented but passive.
//!
//! Used to measure pure instrumentation overhead (the baseline in the
//! paper's overhead numbers is an *uninstrumented* run; `Noop` additionally
//! lets the harness separate wrapper cost from delay cost).

use crate::access::Access;
use crate::strategy::Strategy;

/// A strategy that never injects delays.
#[derive(Debug, Default)]
pub struct Noop;

impl Strategy for Noop {
    fn name(&self) -> &'static str {
        "noop"
    }

    fn on_access(&self, _access: &Access) -> Option<u64> {
        None
    }

    fn on_delay_complete(&self, _access: &Access, _start_ns: u64, _end_ns: u64, _caught: bool) {}

    fn supports_batching(&self) -> bool {
        true
    }

    fn on_batch(&self, _events: &[Access]) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;

    #[test]
    fn never_delays() {
        let s = Noop;
        let access = Access {
            context: ContextId(1),
            obj: ObjId(1),
            site: crate::site!(),
            op_name: "t.op",
            kind: OpKind::Write,
            time_ns: 0,
        };
        for _ in 0..100 {
            assert_eq!(s.on_access(&access), None);
        }
    }
}
