//! The TSVD strategy (§3.4): the paper's contribution.
//!
//! *Where to delay:* at members of a dynamically maintained trap set of
//! dangerous pairs. A pair enters the set when its two locations form a
//! near miss (§3.4.2) while the program is in a concurrent phase (§3.4.3).
//! A pair leaves the set when a likely happens-before relation is inferred
//! between its locations (§3.4.4) or a violation was already caught there.
//!
//! *When to delay:* with probability `P_loc`, which starts at 1 when a
//! dangerous pair containing `loc` is armed and decays after every delay
//! that catches nothing (§3.4.5). Planning and injection happen in the same
//! run (§3.4.6); the trap set additionally persists to a trap file so a
//! second run can trap pairs on their first occurrence.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::Access;
use crate::config::TsvdConfig;
use crate::decay::DecayTable;
use crate::gate::HotGate;
use crate::hb_infer::{DelayRecord, HbInference};
use crate::near_miss::{NearMissTracker, SitePair};
use crate::phase::{ContextRecency, PhaseBuffer};
use crate::strategy::Strategy;
use crate::trap_file::TrapFileData;
use crate::trapset::TrapSet;

/// The TSVD delay-injection strategy.
pub struct Tsvd {
    near_miss: NearMissTracker,
    phase: PhaseBuffer,
    /// Time-based phase estimate for *replayed* (batched) events: a burst
    /// flush of one thread's buffer would flood the count-based ring with a
    /// single context, so batched events consult event timestamps instead.
    recency: ContextRecency,
    hb: Option<HbInference>,
    decay: DecayTable,
    traps: TrapSet,
    delay_ns: u64,
    phase_detection: bool,
    /// Extension: per-site delay multipliers (see
    /// [`TsvdConfig::adaptive_delay`]). `None` when the extension is off.
    adaptive: Option<Mutex<std::collections::HashMap<crate::site::SiteId, u32>>>,
    adaptive_cap: u32,
    /// Cap on pairs armed from imported trap files (see
    /// [`TsvdConfig::trap_import_budget`]). Dynamically discovered pairs
    /// are never budgeted — the cap only rations *seeded* candidates.
    import_budget: usize,
    rng: Mutex<SmallRng>,
}

impl Tsvd {
    /// Creates the strategy from `config`, honouring the Table-3 ablation
    /// switches (`enable_hb_inference`, `enable_windowing`,
    /// `enable_phase_detection`).
    pub fn new(config: &TsvdConfig) -> Self {
        let window = config
            .enable_windowing
            .then_some(config.near_miss_window_ns);
        Tsvd {
            near_miss: NearMissTracker::with_shards(
                config.near_miss_history,
                window,
                config.max_tracked_objects,
                config.near_miss_shards,
            ),
            phase: PhaseBuffer::new(config.phase_buffer),
            recency: ContextRecency::new(config.phase_buffer, window.unwrap_or(u64::MAX)),
            hb: config.enable_hb_inference.then(|| {
                HbInference::new(
                    config.hb_gap_ns(),
                    config.hb_inference_window,
                    config.hb_delay_history,
                )
            }),
            decay: DecayTable::new(config.decay_factor, config.decay_floor),
            traps: TrapSet::new(),
            delay_ns: config.delay_ns,
            phase_detection: config.enable_phase_detection,
            adaptive: config
                .adaptive_delay
                .then(|| Mutex::new(std::collections::HashMap::new())),
            adaptive_cap: config.adaptive_delay_cap.max(1.0) as u32,
            import_budget: config.trap_import_budget,
            rng: Mutex::new(SmallRng::seed_from_u64(config.seed ^ 0x7547)),
        }
    }

    /// Current number of dangerous pairs (stats / tests).
    pub fn trap_set_len(&self) -> usize {
        self.traps.len()
    }

    /// Returns `true` if `pair` is currently armed.
    pub fn is_armed(&self, pair: SitePair) -> bool {
        self.traps.contains(pair)
    }

    /// Number of HB edges inferred so far (stats / tests).
    pub fn inferred_hb_edges(&self) -> usize {
        self.hb.as_ref().map_or(0, |hb| hb.inferred_count())
    }
}

impl Strategy for Tsvd {
    fn name(&self) -> &'static str {
        "tsvd"
    }

    fn on_access(&self, access: &Access) -> Option<u64> {
        // Concurrent-phase inference: record every TSVD point; with the
        // ablation switch off, every phase counts as concurrent.
        let concurrent = self.phase.record_and_check(access.context) || !self.phase_detection;

        // HB inference: prune pairs whose locations this access proves (by
        // delay propagation) to be ordered.
        if let Some(hb) = &self.hb {
            for pair in hb.on_access(access.context, access.site, access.time_ns) {
                self.traps.remove(pair);
            }
        }

        // Near-miss tracking: discover new dangerous pairs.
        for pair in self.near_miss.record(access) {
            if !concurrent {
                continue;
            }
            if self.hb.as_ref().is_some_and(|hb| hb.is_inferred(pair)) {
                continue;
            }
            if self.traps.add(pair) {
                self.decay.arm(pair.first);
                self.decay.arm(pair.second);
            }
        }

        // should_delay: members of the trap set delay with probability P_loc.
        if self.traps.contains_site(access.site) {
            let p = self.decay.probability(access.site);
            if p >= 1.0 || self.rng.lock().gen::<f64>() < p {
                // Extension: lengthen repeatedly fruitless delays.
                let multiplier = self
                    .adaptive
                    .as_ref()
                    .map_or(1, |m| m.lock().get(&access.site).copied().unwrap_or(1));
                return Some(self.delay_ns * u64::from(multiplier));
            }
        }
        None
    }

    fn on_delay_complete(&self, access: &Access, start_ns: u64, end_ns: u64, caught: bool) {
        if let Some(hb) = &self.hb {
            hb.record_delay(DelayRecord {
                site: access.site,
                context: access.context,
                start_ns,
                end_ns,
            });
        }
        if let Some(m) = &self.adaptive {
            let mut m = m.lock();
            let e = m.entry(access.site).or_insert(1);
            if caught {
                *e = 1; // This length works; stop escalating.
            } else {
                *e = (*e * 2).min(self.adaptive_cap);
            }
        }
        if !caught {
            // Decay the delayed location (§3.4.5); when its probability
            // hits the floor, evict its pairs. The decay is deliberately
            // per-location, not per-pair-endpoint: punishing the *partner*
            // for this site's fruitless delays would kill exactly the
            // asymmetric pairs the tool exists for (a hot reader paired
            // with a rare writer — the Table 4 singleton-init races).
            if self.decay.decay(access.site) {
                self.traps.remove_site(access.site);
            }
        }
    }

    fn supports_batching(&self) -> bool {
        // Near-miss discovery, phase inference, and HB pruning all work on
        // recorded timestamps; nothing delays during quiescence, so replay
        // order-with-timestamps is as good as inline delivery.
        true
    }

    fn on_batch(&self, events: &[Access]) {
        // Batched events arrive in bursts per thread, which would flood the
        // count-based phase ring with a single context; the time-based
        // recency table consults event timestamps instead. It is
        // order-sensitive within a context, so flags are computed in event
        // order before the shard-grouped near-miss pass below reorders
        // delivery across objects.
        let concurrent: Vec<bool> = events
            .iter()
            .map(|a| self.recency.note_and_check(a.context, a.time_ns) || !self.phase_detection)
            .collect();

        if let Some(hb) = &self.hb {
            for access in events {
                for pair in hb.on_access(access.context, access.site, access.time_ns) {
                    self.traps.remove(pair);
                }
            }
        }

        // Shard-grouped recording: each near-miss stripe is locked once per
        // batch instead of once per event. Relative order of HB pruning and
        // pair discovery *within one batch* shifts, which is harmless —
        // near misses rediscover pairs continuously and HB prunes re-fire
        // on later accesses, so the steady state is unchanged.
        self.near_miss.record_batch(events, |index, pairs| {
            if !concurrent[index] {
                return;
            }
            for pair in pairs {
                if self.hb.as_ref().is_some_and(|hb| hb.is_inferred(pair)) {
                    continue;
                }
                if self.traps.add(pair) {
                    self.decay.arm(pair.first);
                    self.decay.arm(pair.second);
                }
            }
        });
        // No should_delay: by construction nothing was armed while these
        // events were being buffered, and any pair armed *by* this replay
        // takes effect for the very next inline access.
    }

    fn attach_gate(&self, gate: &Arc<HotGate>) {
        self.traps.attach_gate(gate.clone());
    }

    fn on_violation(&self, pair: SitePair) {
        // "A violation is already found at the pair" — prune it for good.
        self.traps.mark_found(pair);
    }

    fn export_trap_file(&self) -> Option<TrapFileData> {
        Some(TrapFileData::from_pairs(&self.traps.pairs()))
    }

    fn import_trap_file(&self, data: &TrapFileData) {
        // Highest-confidence pairs first: under a finite import budget the
        // static analyzer's best-graded candidates get the delay budget.
        // Bulk insertion publishes one trap-set snapshot and one decay-table
        // snapshot no matter how many pairs the file carries.
        let candidates: Vec<SitePair> = data
            .arming_order()
            .into_iter()
            .filter_map(|index| data.pair_at(index))
            .collect();
        let inserted = self.traps.add_many(&candidates, self.import_budget);
        if !inserted.is_empty() {
            self.decay
                .arm_many(inserted.iter().flat_map(|p| [p.first, p.second]));
        }
    }

    fn memory_bytes(&self) -> usize {
        // Near-miss histories dominate; trap set and decay table are tiny.
        self.near_miss.approx_bytes()
            + self.traps.len() * std::mem::size_of::<SitePair>()
            + self.decay.armed_count() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::clock::ms_to_ns;
    use crate::context::ContextId;
    use crate::site::{SiteData, SiteId};

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "tsvd_strategy_test.rs",
            line: n,
            column: 1,
        })
    }

    fn acc(ctx: u64, obj: u64, s: SiteId, kind: OpKind, t_ms: u64) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: s,
            op_name: "t.op",
            kind,
            time_ns: ms_to_ns(t_ms),
        }
    }

    /// Paper defaults (100 ms scale) with no probabilistic noise.
    fn config() -> TsvdConfig {
        let mut c = TsvdConfig::paper();
        c.decay_factor = 0.5;
        c
    }

    #[test]
    fn near_miss_in_concurrent_phase_arms_pair_and_delays() {
        let s = Tsvd::new(&config());
        // Two contexts interleave: concurrent phase.
        assert!(s.on_access(&acc(1, 7, site(1), OpKind::Write, 0)).is_none());
        // Near miss at t = 1 ms: pair armed; the *current* access's site is
        // in the trap set, so TSVD may delay right now (same-run injection).
        let d = s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        assert!(d.is_some(), "newly armed site should delay immediately");
        assert_eq!(s.trap_set_len(), 1);
        assert!(s.is_armed(SitePair::new(site(1), site(2))));
    }

    #[test]
    fn sequential_phase_blocks_arming() {
        let mut c = config();
        c.phase_buffer = 4;
        let s = Tsvd::new(&c);
        // Only context 1 executes for a while: sequential phase.
        for i in 0..8 {
            s.on_access(&acc(1, 7, site(1), OpKind::Write, i));
        }
        // Context 2 arrives; the pair *does* arm because its own access
        // makes the buffer concurrent (two distinct contexts in window).
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 8));
        assert_eq!(s.trap_set_len(), 1);
    }

    #[test]
    fn phase_ablation_treats_everything_concurrent() {
        let mut c = config();
        c.enable_phase_detection = false;
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        assert_eq!(s.trap_set_len(), 1);
    }

    #[test]
    fn no_pair_without_conflict() {
        let s = Tsvd::new(&config());
        s.on_access(&acc(1, 7, site(1), OpKind::Read, 0));
        assert!(s.on_access(&acc(2, 7, site(2), OpKind::Read, 1)).is_none());
        assert_eq!(s.trap_set_len(), 0);
    }

    #[test]
    fn violation_prunes_pair_permanently() {
        let s = Tsvd::new(&config());
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        let pair = SitePair::new(site(1), site(2));
        assert!(s.is_armed(pair));
        s.on_violation(pair);
        assert!(!s.is_armed(pair));
        // Rediscovery of the same near miss must not re-arm it.
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 10));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 11));
        assert!(!s.is_armed(pair));
    }

    #[test]
    fn failed_delays_decay_to_eviction() {
        let mut c = config();
        c.decay_factor = 0.5;
        c.decay_floor = 0.3;
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        assert_eq!(s.trap_set_len(), 1);
        let a = acc(1, 7, site(1), OpKind::Write, 2);
        // Two fruitless delays at site(1): 1.0 → 0.5 → 0.25 < 0.3 → evict.
        s.on_delay_complete(&a, 0, 1, false);
        assert_eq!(s.trap_set_len(), 1);
        s.on_delay_complete(&a, 2, 3, false);
        assert_eq!(s.trap_set_len(), 0, "decayed location evicts its pairs");
    }

    #[test]
    fn successful_delay_does_not_decay() {
        let mut c = config();
        c.decay_floor = 0.9;
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        let a = acc(1, 7, site(1), OpKind::Write, 2);
        for _ in 0..10 {
            s.on_delay_complete(&a, 0, 1, true);
        }
        assert_eq!(s.trap_set_len(), 1, "catching delays never decay");
    }

    #[test]
    fn hb_inference_prunes_pair() {
        let s = Tsvd::new(&config()); // gap = 50 ms, k_hb = 5
                                      // Arm the pair {site(1), site(2)} via a near miss.
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        assert!(s.is_armed(SitePair::new(site(1), site(2))));
        // Context 1 delays at site(1) from 10 ms to 110 ms...
        s.on_delay_complete(
            &acc(1, 7, site(1), OpKind::Write, 10),
            ms_to_ns(10),
            ms_to_ns(110),
            false,
        );
        // ...and context 2's next access (gap 109 ms ≥ 50 ms, overlapping
        // the delay) is at site(2): HB inferred, pair pruned.
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 110));
        assert!(
            !s.is_armed(SitePair::new(site(1), site(2))),
            "HB-inferred pair must leave the trap set"
        );
        assert!(s.inferred_hb_edges() >= 1);
        // And the near miss does not re-arm it.
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 111));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 112));
        assert!(!s.is_armed(SitePair::new(site(1), site(2))));
    }

    #[test]
    fn hb_ablation_keeps_pair_armed() {
        let mut c = config();
        c.enable_hb_inference = false;
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        s.on_delay_complete(
            &acc(1, 7, site(1), OpKind::Write, 10),
            ms_to_ns(10),
            ms_to_ns(110),
            false,
        );
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 110));
        assert!(s.is_armed(SitePair::new(site(1), site(2))));
        assert_eq!(s.inferred_hb_edges(), 0);
    }

    #[test]
    fn trap_file_round_trip_prearms_pairs() {
        let s1 = Tsvd::new(&config());
        s1.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s1.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        let file = s1.export_trap_file().expect("tsvd persists state");
        let s2 = Tsvd::new(&config());
        s2.import_trap_file(&file);
        assert!(s2.is_armed(SitePair::new(site(1), site(2))));
        // Imported pairs delay on their very first occurrence.
        let d = s2.on_access(&acc(9, 99, site(1), OpKind::Write, 0));
        assert!(d.is_some());
    }

    #[test]
    fn import_budget_arms_highest_confidence_first() {
        use crate::trap_file::PairOrigin;
        let mut file = TrapFileData::default();
        file.push_with_confidence(
            (site(60).to_string(), site(61).to_string()),
            PairOrigin::Static,
            0.4,
        );
        file.push_with_confidence(
            (site(62).to_string(), site(63).to_string()),
            PairOrigin::Static,
            0.9,
        );
        file.push_with_confidence(
            (site(64).to_string(), site(65).to_string()),
            PairOrigin::Static,
            0.7,
        );

        let mut c = config();
        c.trap_import_budget = 2;
        let s = Tsvd::new(&c);
        s.import_trap_file(&file);
        assert_eq!(s.trap_set_len(), 2);
        assert!(s.is_armed(SitePair::new(site(62), site(63))), "0.9 arms");
        assert!(s.is_armed(SitePair::new(site(64), site(65))), "0.7 arms");
        assert!(
            !s.is_armed(SitePair::new(site(60), site(61))),
            "the lowest-confidence pair is the one the budget drops"
        );

        // Without a budget everything arms, regardless of grade.
        let s_all = Tsvd::new(&config());
        s_all.import_trap_file(&file);
        assert_eq!(s_all.trap_set_len(), 3);
    }

    #[test]
    fn import_budget_arms_identical_sets_across_loads() {
        // Satellite regression: equal-confidence ties under a finite budget
        // must arm the same pairs on every load of the same trap file —
        // including a permuted spelling of it, the shape a fleet merge over
        // hash-map iteration produces.
        use crate::trap_file::PairOrigin;
        let dir =
            std::env::temp_dir().join(format!("tsvd_import_determinism_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");

        let texts: Vec<(String, String)> = (80..86)
            .map(|n| (site(n).to_string(), site(n + 10).to_string()))
            .collect();
        let mut file = TrapFileData::default();
        for t in &texts {
            file.push_with_confidence(t.clone(), PairOrigin::Static, 0.5);
        }
        file.save(&path).expect("save");

        let armed_set = |data: &TrapFileData| -> Vec<SitePair> {
            let mut c = config();
            c.trap_import_budget = 3;
            let s = Tsvd::new(&c);
            s.import_trap_file(data);
            let mut armed: Vec<SitePair> = (0..data.pairs.len())
                .filter_map(|i| data.pair_at(i))
                .filter(|&p| s.is_armed(p))
                .collect();
            armed.sort();
            armed
        };

        let first = armed_set(&TrapFileData::load(&path).expect("load 1"));
        let second = armed_set(&TrapFileData::load(&path).expect("load 2"));
        assert_eq!(first.len(), 3, "budget caps the import");
        assert_eq!(first, second, "two loads must arm identical sets");

        // Same pair set, reversed on-disk order: still the identical set.
        let mut permuted = TrapFileData::default();
        for t in texts.iter().rev() {
            permuted.push_with_confidence(t.clone(), PairOrigin::Static, 0.5);
        }
        assert_eq!(
            armed_set(&permuted),
            first,
            "arming must not depend on pair order in the file"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_budget_never_caps_dynamic_discovery() {
        let mut c = config();
        c.trap_import_budget = 1;
        let s = Tsvd::new(&c);
        let mut file = TrapFileData::default();
        file.push(
            (site(70).to_string(), site(71).to_string()),
            crate::trap_file::PairOrigin::Static,
        );
        file.push(
            (site(72).to_string(), site(73).to_string()),
            crate::trap_file::PairOrigin::Static,
        );
        s.import_trap_file(&file);
        assert_eq!(s.trap_set_len(), 1, "budget caps the import");
        // A run-time near miss still arms a second pair: the budget rations
        // seeds, not discovery.
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        s.on_access(&acc(2, 7, site(2), OpKind::Write, 1));
        assert_eq!(s.trap_set_len(), 2);
    }

    #[test]
    fn adaptive_delay_escalates_and_resets() {
        let mut c = config();
        c.adaptive_delay = true;
        c.adaptive_delay_cap = 4.0;
        c.decay_factor = 0.0; // Keep P at 1 so every hit delays.
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        let base = s
            .on_access(&acc(2, 7, site(2), OpKind::Write, 1))
            .expect("armed");
        // Two fruitless delays double the site's next delay, capped at 4x.
        let a = acc(2, 7, site(2), OpKind::Write, 2);
        s.on_delay_complete(&a, 0, 1, false);
        assert_eq!(s.on_access(&a), Some(base * 2));
        s.on_delay_complete(&a, 2, 3, false);
        assert_eq!(s.on_access(&a), Some(base * 4));
        s.on_delay_complete(&a, 4, 5, false);
        assert_eq!(s.on_access(&a), Some(base * 4), "cap holds");
        // A catch resets the multiplier.
        s.on_delay_complete(&a, 6, 7, true);
        assert_eq!(s.on_access(&a), Some(base));
    }

    #[test]
    fn adaptive_off_keeps_constant_delay() {
        let mut c = config();
        c.decay_factor = 0.0;
        let s = Tsvd::new(&c);
        s.on_access(&acc(1, 7, site(1), OpKind::Write, 0));
        let a = acc(2, 7, site(2), OpKind::Write, 1);
        let base = s.on_access(&a).expect("armed");
        s.on_delay_complete(&a, 0, 1, false);
        assert_eq!(s.on_access(&a), Some(base));
    }

    #[test]
    fn unknown_site_never_delays() {
        let s = Tsvd::new(&config());
        for i in 0..100 {
            assert!(s
                .on_access(&acc(1, i, site(50), OpKind::Write, i))
                .is_none());
        }
    }
}
