//! Delay-injection strategies: the design points of Fig. 2.
//!
//! Every variant shares the trap framework (Fig. 5) provided by the
//! [`Runtime`](crate::Runtime); a [`Strategy`] only answers the two design
//! questions of §3.1 — *where* to inject delays and *when* to inject them —
//! plus whatever bookkeeping that answer needs:
//!
//! | Variant | Where | When | Analysis cost |
//! |---|---|---|---|
//! | [`DynamicRandom`] | every TSVD point | small fixed probability | none |
//! | [`StaticRandom`] | every TSVD point | uniform over *static* sites (DataCollider) | none |
//! | [`Tsvd`] | trap-set members | decaying probability | near-miss + HB inference |
//! | [`TsvdHb`] | trap-set members | decaying probability | full vector-clock HB analysis |
//! | [`Noop`] | nowhere | never | none (instrumentation baseline) |
//! | [`Focused`] | one given pair | always | none (single-bug reproduction) |

mod dynamic_random;
mod focused;
mod noop;
mod static_random;
mod tsvd;
mod tsvd_hb;

pub use dynamic_random::DynamicRandom;
pub use focused::Focused;
pub use noop::Noop;
pub use static_random::StaticRandom;
pub use tsvd::Tsvd;
pub use tsvd_hb::TsvdHb;

use std::sync::Arc;

use crate::access::Access;
use crate::context::ContextId;
use crate::gate::HotGate;
use crate::near_miss::SitePair;
use crate::trap_file::TrapFileData;

/// A synchronization event, visible only to strategies that ask for it.
///
/// TSVD's defining property is that it *ignores* these events — only the
/// TSVD-HB comparison variant consumes them. The task substrate emits them
/// for every fork, join, task completion, and instrumented-lock transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// `parent` forked `child` (task spawn, thread spawn).
    Fork {
        /// The forking context.
        parent: ContextId,
        /// The new context.
        child: ContextId,
    },
    /// `context` finished executing; its final clock becomes joinable.
    TaskEnd {
        /// The finished context.
        context: ContextId,
    },
    /// `waiter` joined with (blocked on) `target`.
    Join {
        /// The waiting context.
        waiter: ContextId,
        /// The context whose completion was awaited.
        target: ContextId,
    },
    /// `context` acquired the lock identified by `lock`.
    LockAcquire {
        /// The acquiring context.
        context: ContextId,
        /// Stable identity of the lock object.
        lock: u64,
    },
    /// `context` released the lock identified by `lock`.
    LockRelease {
        /// The releasing context.
        context: ContextId,
        /// Stable identity of the lock object.
        lock: u64,
    },
}

/// A delay-injection strategy: answers *where* and *when* to delay.
pub trait Strategy: Send + Sync {
    /// Short name for reports ("tsvd", "datacollider", ...).
    fn name(&self) -> &'static str;

    /// Called on every TSVD point, after the trap check. Returns the delay
    /// to inject right before the access, or `None` to proceed immediately.
    fn on_access(&self, access: &Access) -> Option<u64>;

    /// Called after an injected delay finished. `caught` reports whether a
    /// conflicting access collided with the trap during the sleep.
    fn on_delay_complete(&self, access: &Access, start_ns: u64, end_ns: u64, caught: bool);

    /// Whether the runtime may buffer quiescent-phase accesses thread-locally
    /// and deliver them later through [`on_batch`](Strategy::on_batch).
    ///
    /// Only strategies whose analysis is insensitive to *when* an observation
    /// arrives — as long as it arrives before the next trap is armed — can
    /// opt in. Strategies that decide delays probabilistically per access
    /// (DynamicRandom, StaticRandom) must keep the inline path.
    fn supports_batching(&self) -> bool {
        false
    }

    /// Delivers a flushed thread-local buffer of accesses recorded while the
    /// runtime was quiescent (no trap armed, no armed pair), in recording
    /// order. Delays are never requested for replayed events — by
    /// construction nothing was armed when they were recorded.
    ///
    /// Default: replay through [`on_access`](Strategy::on_access), dropping
    /// any delay decision.
    fn on_batch(&self, events: &[Access]) {
        for access in events {
            let _ = self.on_access(access);
        }
    }

    /// Hands the strategy the runtime's [`HotGate`] so it can mirror armed
    /// state (trap-set pairs, live traps) into the gate's activity count.
    /// Default: ignored — correct for strategies that never arm anything.
    fn attach_gate(&self, _gate: &Arc<HotGate>) {}

    /// Called for every synchronization event. Default: ignored (the whole
    /// point of TSVD).
    fn on_sync(&self, _event: &SyncEvent) {}

    /// Called when a violation is confirmed at `pair`, so the strategy can
    /// prune it (§3.4.1: "a violation is already found at the pair").
    fn on_violation(&self, _pair: SitePair) {}

    /// Exports persistent state for the next run's trap file (§3.4.6).
    fn export_trap_file(&self) -> Option<TrapFileData> {
        None
    }

    /// Imports a previous run's trap file.
    fn import_trap_file(&self, _data: &TrapFileData) {}

    /// Approximate bytes of tracking state the strategy retains (for the
    /// §5.5 resource report). Default: none.
    fn memory_bytes(&self) -> usize {
        0
    }
}
