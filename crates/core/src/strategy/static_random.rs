//! StaticRandom (§3.3): the DataCollider emulation.
//!
//! DataCollider observed that dynamic sampling concentrates delays on hot
//! paths, so it samples *static* program locations uniformly, irrespective
//! of how often each location executes. We emulate its code-breakpoint
//! scheme: a small set of sites is "armed"; the next execution of an armed
//! site fires a delay, after which a new site is drawn uniformly from all
//! sites seen so far.
//!
//! One divergence from the original, documented in DESIGN.md: DataCollider
//! knows the full static site list from binary analysis, whereas here a site
//! becomes eligible the first time it executes.

use std::collections::HashSet;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::access::Access;
use crate::config::TsvdConfig;
use crate::site::SiteId;
use crate::strategy::Strategy;

struct Inner {
    seen: Vec<SiteId>,
    seen_set: HashSet<SiteId>,
    armed: HashSet<SiteId>,
    rng: SmallRng,
}

/// The StaticRandom / DataCollider strategy.
pub struct StaticRandom {
    inner: Mutex<Inner>,
    delay_ns: u64,
    slots: usize,
}

impl StaticRandom {
    /// Creates the strategy from `config` (`armed_sites`, `delay_ns`).
    pub fn new(config: &TsvdConfig) -> Self {
        StaticRandom {
            inner: Mutex::new(Inner {
                seen: Vec::new(),
                seen_set: HashSet::new(),
                armed: HashSet::new(),
                rng: SmallRng::seed_from_u64(config.seed ^ 0xDA7A),
            }),
            delay_ns: config.delay_ns,
            slots: config.armed_sites.max(1),
        }
    }

    fn arm_random(inner: &mut Inner, slots: usize) {
        while inner.armed.len() < slots && inner.armed.len() < inner.seen.len() {
            let idx = inner.rng.gen_range(0..inner.seen.len());
            inner.armed.insert(inner.seen[idx]);
        }
    }
}

impl Strategy for StaticRandom {
    fn name(&self) -> &'static str {
        "datacollider"
    }

    fn on_access(&self, access: &Access) -> Option<u64> {
        let mut inner = self.inner.lock();
        if inner.seen_set.insert(access.site) {
            inner.seen.push(access.site);
        }
        if inner.armed.remove(&access.site) {
            // Fire: delay here, then arm a fresh uniformly drawn site.
            Self::arm_random(&mut inner, self.slots);
            Some(self.delay_ns)
        } else {
            Self::arm_random(&mut inner, self.slots);
            None
        }
    }

    fn on_delay_complete(&self, _access: &Access, _start_ns: u64, _end_ns: u64, _caught: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "static_random_test.rs",
            line: n,
            column: 1,
        })
    }

    fn access(s: SiteId) -> Access {
        Access {
            context: ContextId(1),
            obj: ObjId(1),
            site: s,
            op_name: "t.op",
            kind: OpKind::Write,
            time_ns: 0,
        }
    }

    fn cfg() -> TsvdConfig {
        TsvdConfig::for_testing()
    }

    #[test]
    fn fires_only_on_armed_sites() {
        let s = StaticRandom::new(&cfg());
        // First ever access arms (post-registration), never fires.
        assert!(s.on_access(&access(site(1))).is_none());
        // With one known site and one slot, site(1) must now be armed.
        assert!(s.on_access(&access(site(1))).is_some());
    }

    #[test]
    fn sampling_is_static_not_dynamic() {
        // A site hit 1000× and a site hit 10× should fire a comparable
        // number of delays (uniform over static locations).
        let s = StaticRandom::new(&cfg());
        let hot = site(10);
        let cold = site(11);
        let mut hot_fires = 0u32;
        let mut cold_fires = 0u32;
        s.on_access(&access(hot));
        s.on_access(&access(cold));
        for i in 0..2_000u32 {
            if s.on_access(&access(hot)).is_some() {
                hot_fires += 1;
            }
            if i % 100 == 0 && s.on_access(&access(cold)).is_some() {
                cold_fires += 1;
            }
        }
        // The hot site executes 100× more but must not fire 100× more:
        // each firing re-arms a uniformly drawn site, and with 2 sites the
        // hot site is armed about half the time.
        assert!(
            hot_fires <= 50 * cold_fires.max(1),
            "hot {hot_fires} vs cold {cold_fires}: static sampling broken"
        );
        assert!(hot_fires > 0);
    }

    #[test]
    fn multiple_slots_arm_multiple_sites() {
        let mut c = cfg();
        c.armed_sites = 3;
        let s = StaticRandom::new(&c);
        for n in 0..5u32 {
            s.on_access(&access(site(20 + n)));
        }
        assert_eq!(s.inner.lock().armed.len(), 3);
    }
}
