//! Trap-set persistence across test runs (§3.4.6).
//!
//! During the first run TSVD records its trap set in a persistent trap file;
//! at the start of the second run the trap set is initialized from the file,
//! allowing delays to be injected at dangerous pairs even on their *first*
//! occurrence — which is how TSVD catches bugs whose TSVD point executes
//! only once per test (11 of the 53 Table-2 bugs).

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::near_miss::SitePair;
use crate::site::SiteId;

/// Serializable snapshot of a trap set.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct TrapFileData {
    /// Dangerous pairs, as textual site locations (`file:line:column`).
    pub pairs: Vec<(String, String)>,
}

impl TrapFileData {
    /// Builds a snapshot from in-memory pairs.
    pub fn from_pairs(pairs: &[SitePair]) -> Self {
        TrapFileData {
            pairs: pairs
                .iter()
                .map(|p| (p.first.to_string(), p.second.to_string()))
                .collect(),
        }
    }

    /// Re-interns the stored pairs. Pairs whose text cannot be parsed are
    /// skipped — a corrupt line must not poison the whole run.
    pub fn to_pairs(&self) -> Vec<SitePair> {
        self.pairs
            .iter()
            .filter_map(|(a, b)| Some(SitePair::new(SiteId::parse(a)?, SiteId::parse(b)?)))
            .collect()
    }

    /// Writes the snapshot as JSON, crash-safely: the JSON goes to a
    /// temporary file in the same directory first and is atomically renamed
    /// over `path`, so a crash mid-save leaves either the old trap file or
    /// the new one — never a truncated hybrid.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "trap file has no name"))?;
        // Same directory as the target: rename(2) is only atomic within a
        // filesystem. The pid suffix keeps concurrent savers from clobbering
        // each other's temporaries.
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads a snapshot from JSON. A *missing* file is an error (callers
    /// distinguish first runs from later ones), but an unreadable or
    /// corrupt file — a crash mid-write by an older, non-atomic saver, a
    /// truncated copy — degrades to an empty trap set with a warning:
    /// losing one run's head start must not fail the whole test suite.
    pub fn load(path: &Path) -> io::Result<TrapFileData> {
        let text = std::fs::read_to_string(path)?;
        match serde_json::from_str(&text) {
            Ok(data) => Ok(data),
            Err(e) => {
                eprintln!(
                    "tsvd: trap file {} is corrupt ({e}); starting with an empty trap set",
                    path.display()
                );
                Ok(TrapFileData::default())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "trap_file_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn pairs_round_trip_in_memory() {
        let pairs = vec![
            SitePair::new(site(1), site(2)),
            SitePair::new(site(3), site(3)),
        ];
        let data = TrapFileData::from_pairs(&pairs);
        let mut back = data.to_pairs();
        back.sort();
        let mut want = pairs.clone();
        want.sort();
        assert_eq!(back, want);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        let pairs = vec![SitePair::new(site(10), site(11))];
        let data = TrapFileData::from_pairs(&pairs);
        data.save(&path).expect("save");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded, data);
        assert_eq!(loaded.to_pairs(), pairs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_skipped() {
        let data = TrapFileData {
            pairs: vec![
                ("not-a-site".into(), "also:bad".into()),
                (site(20).to_string(), site(21).to_string()),
            ],
        };
        let pairs = data.to_pairs();
        assert_eq!(pairs, vec![SitePair::new(site(20), site(21))]);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TrapFileData::load(Path::new("/nonexistent/tsvd.json")).is_err());
    }

    #[test]
    fn load_corrupt_file_degrades_to_empty() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        // A truncated save from a crashed, non-atomic writer.
        std::fs::write(&path, "{\"pairs\": [[\"a:1:1\", \"b:2").expect("write");
        let loaded = TrapFileData::load(&path).expect("corrupt file must not error");
        assert!(loaded.pairs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        TrapFileData::from_pairs(&[SitePair::new(site(30), site(31))])
            .save(&path)
            .expect("first save");
        // Overwrite with different content: the rename path.
        let second = TrapFileData::from_pairs(&[SitePair::new(site(32), site(33))]);
        second.save(&path).expect("second save");
        assert_eq!(TrapFileData::load(&path).expect("load"), second);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a save");
        std::fs::remove_dir_all(&dir).ok();
    }
}
