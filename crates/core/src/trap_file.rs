//! Trap-set persistence across test runs (§3.4.6).
//!
//! During the first run TSVD records its trap set in a persistent trap file;
//! at the start of the second run the trap set is initialized from the file,
//! allowing delays to be injected at dangerous pairs even on their *first*
//! occurrence — which is how TSVD catches bugs whose TSVD point executes
//! only once per test (11 of the 53 Table-2 bugs).

use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::near_miss::SitePair;
use crate::site::SiteId;

/// Where a persisted dangerous pair came from.
///
/// The dynamic detector discovers pairs through near misses at run time;
/// the static front end (`tsvd-analyze`) predicts them from source before
/// any run. Tagging the origin keeps statically seeded priors
/// distinguishable in reports and lets a later run measure how much each
/// source contributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PairOrigin {
    /// Discovered by the runtime (near-miss tracking). The default: trap
    /// files written before the tag existed deserialize as dynamic.
    #[default]
    Dynamic,
    /// Predicted by the static analyzer.
    Static,
}

impl PairOrigin {
    /// Stable textual form used in the file format.
    pub fn as_str(self) -> &'static str {
        match self {
            PairOrigin::Dynamic => "dynamic",
            PairOrigin::Static => "static",
        }
    }
}

// The vendored serde derive covers named-field structs only, so the enum
// carries hand-written impls (string-valued; unknown text degrades to the
// back-compat default rather than poisoning the whole file).
impl Serialize for PairOrigin {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for PairOrigin {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        Ok(match value {
            serde::Value::Str(s) if s == "static" => PairOrigin::Static,
            _ => PairOrigin::Dynamic,
        })
    }
}

/// Serializable snapshot of a trap set.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct TrapFileData {
    /// Dangerous pairs, as textual site locations (`file:line:column`).
    pub pairs: Vec<(String, String)>,
    /// Per-pair origin, parallel to `pairs`. May be shorter than `pairs`
    /// (files written by older builds have no origins at all); missing
    /// entries are [`PairOrigin::Dynamic`].
    #[serde(default)]
    pub origins: Vec<PairOrigin>,
    /// Per-pair analysis confidence in (0, 1], parallel to `pairs`. May be
    /// shorter than `pairs` (files written before the field existed carry
    /// none); missing entries are `1.0` — a pair with no recorded evidence
    /// grade is trusted fully, which is exactly the pre-confidence
    /// behaviour. Confidence orders trap arming under budget pressure; it
    /// never gates membership by itself.
    #[serde(default)]
    pub confidences: Vec<f64>,
    /// Per-pair happens-before evidence label from the static analyzer
    /// (`window-join:<h>`, `window-scope`, `channel-partial`, ...),
    /// parallel to `pairs`. May be shorter than `pairs` (files written
    /// before the field existed carry none); missing entries are `"none"`.
    /// Purely descriptive today — its confidence effect is already baked
    /// into `confidences` — but repair classification reads it to name the
    /// join handle a fix should use.
    #[serde(default)]
    pub hb_evidence: Vec<String>,
}

impl TrapFileData {
    /// Builds a snapshot from in-memory pairs (dynamic origin).
    pub fn from_pairs(pairs: &[SitePair]) -> Self {
        Self::from_pairs_with_origin(pairs, PairOrigin::Dynamic)
    }

    /// Builds a snapshot from in-memory pairs with an explicit origin.
    pub fn from_pairs_with_origin(pairs: &[SitePair], origin: PairOrigin) -> Self {
        TrapFileData {
            pairs: pairs
                .iter()
                .map(|p| (p.first.to_string(), p.second.to_string()))
                .collect(),
            origins: vec![origin; pairs.len()],
            confidences: Vec::new(),
            hb_evidence: Vec::new(),
        }
    }

    /// The origin of pair `index`; pairs beyond the recorded origins are
    /// dynamic (back-compat with files written before the tag existed).
    pub fn origin(&self, index: usize) -> PairOrigin {
        self.origins.get(index).copied().unwrap_or_default()
    }

    /// The confidence of pair `index`; pairs beyond the recorded
    /// confidences are `1.0` (back-compat with files written before the
    /// field existed).
    pub fn confidence(&self, index: usize) -> f64 {
        self.confidences.get(index).copied().unwrap_or(1.0)
    }

    /// The happens-before evidence label of pair `index`; pairs beyond the
    /// recorded labels are `"none"` (back-compat with files written before
    /// the field existed).
    pub fn hb_evidence(&self, index: usize) -> &str {
        self.hb_evidence.get(index).map_or("none", String::as_str)
    }

    /// Appends a pair in textual form with its origin.
    pub fn push(&mut self, pair: (String, String), origin: PairOrigin) {
        self.push_with_confidence(pair, origin, 1.0);
    }

    /// Appends a pair with an explicit origin and confidence.
    pub fn push_with_confidence(
        &mut self,
        pair: (String, String),
        origin: PairOrigin,
        confidence: f64,
    ) {
        self.push_full(pair, origin, confidence, "none");
    }

    /// Appends a pair with origin, confidence, and happens-before evidence.
    pub fn push_full(
        &mut self,
        pair: (String, String),
        origin: PairOrigin,
        confidence: f64,
        hb: &str,
    ) {
        // Materialize implicit defaults first so the parallel vectors stay
        // aligned once a non-default entry appears. Confidences and HB
        // labels stay lazy until the first non-default value so purely
        // dynamic files keep their pre-confidence shape on disk.
        while self.origins.len() < self.pairs.len() {
            self.origins.push(PairOrigin::Dynamic);
        }
        if confidence != 1.0 || !self.confidences.is_empty() {
            while self.confidences.len() < self.pairs.len() {
                self.confidences.push(1.0);
            }
            self.confidences.push(confidence);
        }
        if hb != "none" || !self.hb_evidence.is_empty() {
            while self.hb_evidence.len() < self.pairs.len() {
                self.hb_evidence.push("none".to_string());
            }
            self.hb_evidence.push(hb.to_string());
        }
        self.pairs.push(pair);
        self.origins.push(origin);
    }

    /// Merges `other` into `self`, deduplicating textual pairs. A pair
    /// present in both keeps `self`'s origin, confidence, and evidence.
    pub fn merge(&mut self, other: &TrapFileData) {
        for (i, pair) in other.pairs.iter().enumerate() {
            if !self.pairs.contains(pair) {
                self.push_full(
                    pair.clone(),
                    other.origin(i),
                    other.confidence(i),
                    other.hb_evidence(i),
                );
            }
        }
    }

    /// Re-interns the pair at `index`, or `None` if its text is corrupt.
    pub fn pair_at(&self, index: usize) -> Option<SitePair> {
        let (a, b) = self.pairs.get(index)?;
        Some(SitePair::new(SiteId::parse(a)?, SiteId::parse(b)?))
    }

    /// Pair indices ordered for arming: highest confidence first. Ties are
    /// broken by content, not position — origin first (a near miss actually
    /// observed at run time outranks a static prediction graded equally),
    /// then the lexicographic site-pair text. Merged trap files are
    /// assembled from per-worker maps whose iteration order varies run to
    /// run; a positional tie-break would arm *different* equal-confidence
    /// pairs under a finite `trap_import_budget` depending on merge order.
    /// Content tie-breaks make the armed set a pure function of the file's
    /// pair set.
    pub fn arming_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.pairs.len()).collect();
        order.sort_by(|&a, &b| {
            self.confidence(b)
                .partial_cmp(&self.confidence(a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| {
                    let rank = |o: PairOrigin| match o {
                        PairOrigin::Dynamic => 0u8,
                        PairOrigin::Static => 1u8,
                    };
                    rank(self.origin(a)).cmp(&rank(self.origin(b)))
                })
                .then_with(|| self.pairs[a].cmp(&self.pairs[b]))
        });
        order
    }

    /// Number of pairs tagged with `origin`.
    pub fn count_origin(&self, origin: PairOrigin) -> usize {
        (0..self.pairs.len())
            .filter(|&i| self.origin(i) == origin)
            .count()
    }

    /// Re-interns the stored pairs. Pairs whose text cannot be parsed are
    /// skipped — a corrupt line must not poison the whole run.
    pub fn to_pairs(&self) -> Vec<SitePair> {
        self.pairs
            .iter()
            .filter_map(|(a, b)| Some(SitePair::new(SiteId::parse(a)?, SiteId::parse(b)?)))
            .collect()
    }

    /// Writes the snapshot as JSON, crash-safely: the JSON goes to a
    /// temporary file in the same directory first and is atomically renamed
    /// over `path`, so a crash mid-save leaves either the old trap file or
    /// the new one — never a truncated hybrid.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
        let file_name = path
            .file_name()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "trap file has no name"))?;
        // Same directory as the target: rename(2) is only atomic within a
        // filesystem. The pid suffix keeps concurrent savers from clobbering
        // each other's temporaries.
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = match dir {
            Some(d) => d.join(&tmp_name),
            None => std::path::PathBuf::from(&tmp_name),
        };
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads a snapshot from JSON. A *missing* file is an error (callers
    /// distinguish first runs from later ones), but an unreadable or
    /// corrupt file — a crash mid-write by an older, non-atomic saver, a
    /// truncated copy — degrades to an empty trap set with a warning:
    /// losing one run's head start must not fail the whole test suite.
    pub fn load(path: &Path) -> io::Result<TrapFileData> {
        let text = std::fs::read_to_string(path)?;
        match serde_json::from_str(&text) {
            Ok(data) => Ok(data),
            Err(e) => {
                eprintln!(
                    "tsvd: trap file {} is corrupt ({e}); starting with an empty trap set",
                    path.display()
                );
                Ok(TrapFileData::default())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "trap_file_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn pairs_round_trip_in_memory() {
        let pairs = vec![
            SitePair::new(site(1), site(2)),
            SitePair::new(site(3), site(3)),
        ];
        let data = TrapFileData::from_pairs(&pairs);
        let mut back = data.to_pairs();
        back.sort();
        let mut want = pairs.clone();
        want.sort();
        assert_eq!(back, want);
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        let pairs = vec![SitePair::new(site(10), site(11))];
        let data = TrapFileData::from_pairs(&pairs);
        data.save(&path).expect("save");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded, data);
        assert_eq!(loaded.to_pairs(), pairs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_entries_are_skipped() {
        let data = TrapFileData {
            pairs: vec![
                ("not-a-site".into(), "also:bad".into()),
                (site(20).to_string(), site(21).to_string()),
            ],
            origins: Vec::new(),
            confidences: Vec::new(),
            hb_evidence: Vec::new(),
        };
        let pairs = data.to_pairs();
        assert_eq!(pairs, vec![SitePair::new(site(20), site(21))]);
    }

    #[test]
    fn origins_round_trip_through_save_and_load() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_origin_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        let mut data = TrapFileData::from_pairs_with_origin(
            &[SitePair::new(site(40), site(41))],
            PairOrigin::Static,
        );
        data.push(
            (site(42).to_string(), site(43).to_string()),
            PairOrigin::Dynamic,
        );
        data.save(&path).expect("save");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded, data);
        assert_eq!(loaded.origin(0), PairOrigin::Static);
        assert_eq!(loaded.origin(1), PairOrigin::Dynamic);
        assert_eq!(loaded.count_origin(PairOrigin::Static), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_origin_field_defaults_to_dynamic() {
        // A file written before the origin tag existed: pairs only.
        let dir =
            std::env::temp_dir().join(format!("tsvd_trapfile_backcompat_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        std::fs::write(&path, r#"{"pairs": [["a.rs:1:1", "b.rs:2:2"]]}"#).expect("write");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded.pairs.len(), 1);
        assert!(loaded.origins.is_empty());
        assert_eq!(loaded.origin(0), PairOrigin::Dynamic);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_dedupes_and_keeps_origins() {
        let mut a = TrapFileData::from_pairs_with_origin(
            &[SitePair::new(site(50), site(51))],
            PairOrigin::Static,
        );
        let mut b = TrapFileData::from_pairs(&[SitePair::new(site(50), site(51))]);
        b.push(
            (site(52).to_string(), site(53).to_string()),
            PairOrigin::Dynamic,
        );
        a.merge(&b);
        assert_eq!(a.pairs.len(), 2, "shared pair must not duplicate");
        assert_eq!(a.origin(0), PairOrigin::Static, "self's origin wins");
        assert_eq!(a.origin(1), PairOrigin::Dynamic);
    }

    #[test]
    fn confidences_round_trip_through_save_and_load() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_conf_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        let mut data = TrapFileData::default();
        data.push_with_confidence(
            (site(60).to_string(), site(61).to_string()),
            PairOrigin::Static,
            0.75,
        );
        data.push(
            (site(62).to_string(), site(63).to_string()),
            PairOrigin::Dynamic,
        );
        data.save(&path).expect("save");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded, data);
        assert!((loaded.confidence(0) - 0.75).abs() < 1e-9);
        assert!((loaded.confidence(1) - 1.0).abs() < 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dynamic_only_files_keep_the_pre_confidence_shape() {
        // Pairs pushed with no explicit confidence must not materialize the
        // confidences vector: the on-disk JSON stays byte-compatible with
        // what PR-3 builds wrote for dynamic trap sets.
        let data = TrapFileData::from_pairs(&[SitePair::new(site(64), site(65))]);
        assert!(data.confidences.is_empty());
        let mut pushed = TrapFileData::default();
        pushed.push(
            (site(66).to_string(), site(67).to_string()),
            PairOrigin::Dynamic,
        );
        assert!(pushed.confidences.is_empty());
        assert!((pushed.confidence(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pre_confidence_file_loads_and_merges() {
        // Acceptance: a trap file written by PR 3 (origins, no confidence
        // field) still loads, defaults every pair to 1.0, and merges into a
        // confidence-carrying set without misaligning the parallel vectors.
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_pr3_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        std::fs::write(
            &path,
            r#"{"pairs": [["a.rs:1:1", "b.rs:2:2"]], "origins": ["static"]}"#,
        )
        .expect("write");
        let loaded = TrapFileData::load(&path).expect("load");
        assert!(loaded.confidences.is_empty());
        assert!((loaded.confidence(0) - 1.0).abs() < 1e-9);

        let mut target = TrapFileData::default();
        target.push_with_confidence(
            ("c.rs:3:3".to_string(), "d.rs:4:4".to_string()),
            PairOrigin::Static,
            0.5,
        );
        target.merge(&loaded);
        assert_eq!(target.pairs.len(), 2);
        assert!((target.confidence(0) - 0.5).abs() < 1e-9);
        assert!(
            (target.confidence(1) - 1.0).abs() < 1e-9,
            "merged pre-confidence pair defaults to full trust"
        );
        assert_eq!(target.origin(1), PairOrigin::Static);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hb_evidence_stays_lazy_and_round_trips() {
        // Default labels never materialize the vector (pre-HB on-disk shape
        // preserved); the first real label backfills and round-trips.
        let mut data = TrapFileData::default();
        data.push_with_confidence(
            (site(90).to_string(), site(91).to_string()),
            PairOrigin::Static,
            0.8,
        );
        assert!(data.hb_evidence.is_empty());
        assert_eq!(data.hb_evidence(0), "none");
        data.push_full(
            (site(92).to_string(), site(93).to_string()),
            PairOrigin::Static,
            0.6,
            "window-join:h",
        );
        assert_eq!(data.hb_evidence.len(), 2, "backfilled then appended");
        assert_eq!(data.hb_evidence(0), "none");
        assert_eq!(data.hb_evidence(1), "window-join:h");

        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_hb_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        data.save(&path).expect("save");
        let loaded = TrapFileData::load(&path).expect("load");
        assert_eq!(loaded, data);
        assert_eq!(loaded.hb_evidence(1), "window-join:h");

        // A pre-HB file (no hb_evidence key) loads with "none" everywhere.
        std::fs::write(
            &path,
            r#"{"pairs": [["a.rs:1:1", "b.rs:2:2"]], "origins": ["static"]}"#,
        )
        .expect("write");
        let old = TrapFileData::load(&path).expect("load");
        assert!(old.hb_evidence.is_empty());
        assert_eq!(old.hb_evidence(0), "none");

        // Merging carries the label across.
        let mut target = old.clone();
        target.merge(&data);
        assert_eq!(target.pairs.len(), 3);
        assert_eq!(target.hb_evidence(2), "window-join:h");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_keeps_self_confidence_for_shared_pairs() {
        let pair = (site(70).to_string(), site(71).to_string());
        let mut a = TrapFileData::default();
        a.push_with_confidence(pair.clone(), PairOrigin::Static, 0.9);
        let mut b = TrapFileData::default();
        b.push_with_confidence(pair, PairOrigin::Static, 0.2);
        b.push_with_confidence(
            (site(72).to_string(), site(73).to_string()),
            PairOrigin::Static,
            0.4,
        );
        a.merge(&b);
        assert_eq!(a.pairs.len(), 2);
        assert!((a.confidence(0) - 0.9).abs() < 1e-9, "self's grade wins");
        assert!(
            (a.confidence(1) - 0.4).abs() < 1e-9,
            "new pair keeps other's"
        );
    }

    #[test]
    fn arming_order_ranks_confidence_then_origin_then_pair_text() {
        let mut data = TrapFileData::default();
        // Two equal-confidence static pairs pushed in reverse textual
        // order, one equal-confidence dynamic pair, one lower-confidence
        // pair pushed first.
        data.push_with_confidence(
            ("z.rs:9:1".to_string(), "z.rs:9:2".to_string()),
            PairOrigin::Static,
            0.5,
        );
        data.push_with_confidence(
            ("b.rs:2:1".to_string(), "b.rs:2:2".to_string()),
            PairOrigin::Static,
            0.8,
        );
        data.push_with_confidence(
            ("a.rs:1:1".to_string(), "a.rs:1:2".to_string()),
            PairOrigin::Static,
            0.8,
        );
        data.push_with_confidence(
            ("y.rs:8:1".to_string(), "y.rs:8:2".to_string()),
            PairOrigin::Dynamic,
            0.8,
        );
        let order = data.arming_order();
        let ranked: Vec<&str> = order.iter().map(|&i| data.pairs[i].0.as_str()).collect();
        // 0.8 ties: the dynamic pair first, then statics by pair text;
        // the 0.5 pair last despite being pushed first.
        assert_eq!(ranked, vec!["y.rs:8:1", "a.rs:1:1", "b.rs:2:1", "z.rs:9:1"]);
    }

    #[test]
    fn arming_order_is_invariant_under_merge_order() {
        // Satellite regression: the same pair set assembled in different
        // orders (as a fleet merge over hash-map iteration would) must
        // produce the identical arming order, so a finite import budget
        // arms the identical set.
        let mk = |n: u32, conf: f64, origin: PairOrigin| {
            let mut d = TrapFileData::default();
            d.push_with_confidence(
                (format!("m{n}.rs:{n}:1"), format!("m{n}.rs:{n}:2")),
                origin,
                conf,
            );
            d
        };
        let parts = [
            mk(1, 0.7, PairOrigin::Static),
            mk(2, 0.7, PairOrigin::Static),
            mk(3, 0.7, PairOrigin::Dynamic),
            mk(4, 0.9, PairOrigin::Static),
            mk(5, 0.7, PairOrigin::Static),
        ];
        let armed_texts = |merge_order: &[usize]| -> Vec<(String, String)> {
            let mut merged = TrapFileData::default();
            for &i in merge_order {
                merged.merge(&parts[i]);
            }
            merged
                .arming_order()
                .into_iter()
                .map(|i| merged.pairs[i].clone())
                .collect()
        };
        let forward = armed_texts(&[0, 1, 2, 3, 4]);
        let reverse = armed_texts(&[4, 3, 2, 1, 0]);
        let shuffled = armed_texts(&[2, 4, 0, 3, 1]);
        assert_eq!(forward, reverse);
        assert_eq!(forward, shuffled);
    }

    #[test]
    fn pair_at_reinterns_and_skips_corrupt_text() {
        let mut data = TrapFileData::default();
        data.push(
            (site(80).to_string(), site(81).to_string()),
            PairOrigin::Dynamic,
        );
        data.push(
            ("garbage".to_string(), "x:y:z".to_string()),
            PairOrigin::Dynamic,
        );
        assert_eq!(data.pair_at(0), Some(SitePair::new(site(80), site(81))));
        assert_eq!(data.pair_at(1), None);
        assert_eq!(data.pair_at(2), None);
    }

    #[test]
    fn unknown_origin_text_degrades_to_dynamic() {
        use serde::Deserialize;
        let v = serde::Value::Str("martian".to_string());
        assert_eq!(PairOrigin::from_value(&v).unwrap(), PairOrigin::Dynamic);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(TrapFileData::load(Path::new("/nonexistent/tsvd.json")).is_err());
    }

    #[test]
    fn load_corrupt_file_degrades_to_empty() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        // A truncated save from a crashed, non-atomic writer.
        std::fs::write(&path, "{\"pairs\": [[\"a:1:1\", \"b:2").expect("write");
        let loaded = TrapFileData::load(&path).expect("corrupt file must not error");
        assert!(loaded.pairs.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_replaces_atomically_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("tsvd_trapfile_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("traps.json");
        TrapFileData::from_pairs(&[SitePair::new(site(30), site(31))])
            .save(&path)
            .expect("first save");
        // Overwrite with different content: the rename path.
        let second = TrapFileData::from_pairs(&[SitePair::new(site(32), site(33))]);
        second.save(&path).expect("second save");
        assert_eq!(TrapFileData::load(&path).expect("load"), second);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("read_dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files must not survive a save");
        std::fs::remove_dir_all(&dir).ok();
    }
}
