//! Epoch-based reclamation for read-mostly pointer-swap structures.
//!
//! The trap set and the decay table are consulted on the `on_call` path of
//! every armed run but mutate rarely (arming, decay, pruning). An `RwLock`
//! makes those reads cheap but not free: every reader performs an atomic
//! RMW on the lock word, which is a shared write that bounces the cache
//! line between cores. This module replaces the pattern with copy-on-write
//! snapshots behind an atomic pointer: readers *pin* the current epoch
//! (one uncontended store to their own slot), load the pointer, and read an
//! immutable snapshot; writers build a new snapshot, swap the pointer, and
//! *retire* the old one to be freed once no reader can still hold it.
//!
//! The vendored crossbeam is a channel-only stub, so the collector is
//! hand-rolled. It is the classic 3-epoch scheme:
//!
//! - a global epoch counter `E`;
//! - one slot per participating thread holding the epoch it pinned, or
//!   [`NOT_PINNED`];
//! - `E` may advance only when every pinned slot equals `E`, so pinned
//!   readers are never more than one epoch behind;
//! - garbage retired at epoch `R` is freed once `E ≥ R + 2`: by then every
//!   reader pinned at `R` or earlier has unpinned, and any later pin can
//!   only observe the new pointer.
//!
//! Writers drive collection (retirement is on the rare path); readers never
//! block and never take a lock. A reader's pin is one store to its own
//! cache line — the only "shared" write on an armed read, and it is flagged
//! to the [`audit`](crate::audit) so the zero-trap path can prove it does
//! not even pay that.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::audit;

/// Slot value meaning "this thread holds no pin".
const NOT_PINNED: u64 = u64::MAX;

/// One registered thread's pin slot.
struct Participant {
    epoch: AtomicU64,
}

/// A retired allocation tagged with the epoch it was retired in.
struct Garbage {
    retired_at: u64,
    /// Dropping the box frees the payload.
    _payload: Box<dyn Send>,
}

/// The process-global epoch collector.
pub struct Collector {
    epoch: AtomicU64,
    participants: Mutex<Vec<Arc<Participant>>>,
    garbage: Mutex<Vec<Garbage>>,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            epoch: AtomicU64::new(0),
            participants: Mutex::new(Vec::new()),
            garbage: Mutex::new(Vec::new()),
        }
    }

    fn register(&self) -> Arc<Participant> {
        let p = Arc::new(Participant {
            epoch: AtomicU64::new(NOT_PINNED),
        });
        self.participants.lock().push(p.clone());
        p
    }

    fn unregister(&self, p: &Arc<Participant>) {
        self.participants
            .lock()
            .retain(|other| !Arc::ptr_eq(other, p));
    }

    /// Defers dropping `payload` until no pinned reader can reference it.
    fn retire(&self, payload: Box<dyn Send>) {
        let retired_at = self.epoch.load(Ordering::SeqCst);
        self.garbage.lock().push(Garbage {
            retired_at,
            _payload: payload,
        });
        self.collect();
    }

    /// Tries to advance the global epoch and frees every retired payload
    /// that is at least two epochs old. Called from the (rare) writer path.
    pub fn collect(&self) {
        let current = self.epoch.load(Ordering::SeqCst);
        let can_advance = {
            let participants = self.participants.lock();
            participants.iter().all(|p| {
                let e = p.epoch.load(Ordering::SeqCst);
                e == NOT_PINNED || e == current
            })
        };
        if can_advance {
            // A lost race just means another writer advanced for us.
            let _ = self.epoch.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            );
        }
        let now = self.epoch.load(Ordering::SeqCst);
        self.garbage.lock().retain(|g| g.retired_at + 2 > now);
    }

    /// Pending retired allocations (tests and diagnostics).
    pub fn garbage_len(&self) -> usize {
        self.garbage.lock().len()
    }
}

static COLLECTOR: OnceLock<Collector> = OnceLock::new();

/// The process-global collector shared by every [`EpochPtr`].
pub fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Removes the calling thread's participant slot when the thread exits, so
/// a dead thread can never stall epoch advancement.
struct Registration(Arc<Participant>);

impl Drop for Registration {
    fn drop(&mut self) {
        collector().unregister(&self.0);
    }
}

thread_local! {
    static REGISTRATION: RefCell<Option<Registration>> = const { RefCell::new(None) };
    static PIN_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// An active pin: while alive, the current epoch cannot advance past this
/// thread, so any pointer loaded under the guard stays allocated.
pub struct Guard {
    participant: Arc<Participant>,
}

impl Drop for Guard {
    fn drop(&mut self) {
        let depth = PIN_DEPTH.with(|d| {
            d.set(d.get() - 1);
            d.get()
        });
        if depth == 0 {
            self.participant.epoch.store(NOT_PINNED, Ordering::Release);
        }
    }
}

/// Pins the calling thread to the current epoch. Re-entrant: nested pins
/// keep the outermost epoch. This is the only shared write a reader pays,
/// and it targets the thread's own slot, so it never contends.
pub fn pin() -> Guard {
    let participant = REGISTRATION.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            *slot = Some(Registration(collector().register()));
        }
        slot.as_ref().expect("just registered").0.clone()
    });
    let depth = PIN_DEPTH.with(|d| {
        d.set(d.get() + 1);
        d.get()
    });
    if depth == 1 {
        audit::note_shared_write();
        let collector = collector();
        loop {
            let e = collector.epoch.load(Ordering::SeqCst);
            participant.epoch.store(e, Ordering::SeqCst);
            // Re-check: if the global epoch moved between the load and the
            // store, the published pin might be one epoch stale; re-pin at
            // the fresh value so the two-epoch reclamation bound holds.
            if collector.epoch.load(Ordering::SeqCst) == e {
                break;
            }
        }
    }
    Guard { participant }
}

/// An atomic pointer to an immutable snapshot, reclaimed through epochs.
///
/// Readers call [`read`](EpochPtr::read) (pin + load + borrow); writers
/// build a replacement value and [`swap`](EpochPtr::swap) it in. Writers
/// must be externally serialized (the owning structure holds a writer
/// mutex); readers need no coordination at all.
pub struct EpochPtr<T: Send + Sync + 'static> {
    ptr: AtomicPtr<T>,
}

impl<T: Send + Sync + 'static> EpochPtr<T> {
    /// Creates the pointer holding `value` as its first snapshot.
    pub fn new(value: T) -> EpochPtr<T> {
        EpochPtr {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Pins, loads the current snapshot, and applies `f` to it.
    pub fn read<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        let _guard = pin();
        let ptr = self.ptr.load(Ordering::Acquire);
        // SAFETY: `ptr` was published by `new` or `swap` and can only be
        // freed two epochs after it is swapped out; the pin taken above
        // holds the current epoch, so the snapshot outlives this borrow.
        f(unsafe { &*ptr })
    }

    /// Publishes `value` as the new snapshot and retires the old one.
    ///
    /// Callers must serialize swaps (e.g. under the structure's writer
    /// mutex): two racing swaps would both retire — and eventually free —
    /// distinct predecessors, which is safe, but the surviving snapshot
    /// would be whichever swap lost the race, losing the other's update.
    pub fn swap(&self, value: T) {
        let fresh = Box::into_raw(Box::new(value));
        let old = self.ptr.swap(fresh, Ordering::AcqRel);
        // SAFETY: `old` came from `Box::into_raw` in `new` or a previous
        // `swap` and is no longer reachable through `self.ptr`; ownership
        // moves to the collector, which frees it after two epochs.
        collector().retire(unsafe { Box::from_raw(old) });
    }
}

impl<T: Default + Send + Sync + 'static> Default for EpochPtr<T> {
    fn default() -> Self {
        EpochPtr::new(T::default())
    }
}

impl<T: Send + Sync + 'static> Drop for EpochPtr<T> {
    fn drop(&mut self) {
        let ptr = *self.ptr.get_mut();
        // SAFETY: dropping the EpochPtr requires exclusive ownership, so no
        // reader can be inside `read` — the final snapshot can be freed
        // directly without going through the collector.
        drop(unsafe { Box::from_raw(ptr) });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Payload whose drop increments a counter, so tests can observe
    /// exactly when reclamation happens.
    struct Tracked(Arc<AtomicUsize>);

    impl Drop for Tracked {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn drain() {
        // Each collect can advance at most one epoch; a few rounds flush
        // everything reclaimable.
        for _ in 0..4 {
            collector().collect();
        }
    }

    /// The collector is process-global, so pins taken by concurrently
    /// running tests can transiently stall advancement; retry instead of
    /// assuming a fixed number of rounds suffices.
    fn drain_until(drops: &Arc<AtomicUsize>, want: usize) {
        for _ in 0..10_000 {
            collector().collect();
            if drops.load(Ordering::SeqCst) >= want {
                return;
            }
            std::thread::yield_now();
        }
    }

    #[test]
    fn read_sees_latest_snapshot() {
        let p = EpochPtr::new(1u64);
        assert_eq!(p.read(|v| *v), 1);
        p.swap(2);
        assert_eq!(p.read(|v| *v), 2);
    }

    #[test]
    fn retired_snapshot_outlives_active_pin() {
        let drops = Arc::new(AtomicUsize::new(0));
        let p = EpochPtr::new(Tracked(drops.clone()));
        let guard = pin();
        p.swap(Tracked(drops.clone()));
        drain();
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "a pinned reader must keep the retired snapshot alive"
        );
        drop(guard);
        drain_until(&drops, 1);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            1,
            "unpinning lets the collector free the old snapshot"
        );
    }

    #[test]
    fn nested_pins_keep_outer_epoch() {
        let outer = pin();
        let inner = pin();
        drop(inner);
        // The outer pin must still be active: a swap retired now must not
        // be reclaimed until `outer` drops.
        let drops = Arc::new(AtomicUsize::new(0));
        let p = EpochPtr::new(Tracked(drops.clone()));
        p.swap(Tracked(drops.clone()));
        drain();
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(outer);
        drain_until(&drops, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_frees_final_snapshot_directly() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let p = EpochPtr::new(Tracked(drops.clone()));
            p.swap(Tracked(drops.clone()));
            drop(p);
        }
        drain_until(&drops, 2);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            2,
            "both the retired and the final snapshot are freed"
        );
    }

    #[test]
    fn thread_exit_unblocks_advancement() {
        // A thread pins, unpins, and exits; its slot must not wedge the
        // epoch afterwards.
        std::thread::spawn(|| {
            let g = pin();
            drop(g);
        })
        .join()
        .expect("no panic");
        let drops = Arc::new(AtomicUsize::new(0));
        let p = EpochPtr::new(Tracked(drops.clone()));
        p.swap(Tracked(drops.clone()));
        drain_until(&drops, 1);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_always_see_consistent_values() {
        // Writer swaps monotonically increasing snapshots; readers must
        // only ever observe values that were actually published, never a
        // freed or torn one.
        let p = Arc::new(EpochPtr::new(0u64));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let p = p.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let v = p.read(|v| *v);
                        assert!(v >= last, "snapshots are monotone: {v} < {last}");
                        last = v;
                    }
                })
            })
            .collect();
        for v in 1..=500u64 {
            p.swap(v);
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(p.read(|v| *v), 500);
    }
}
