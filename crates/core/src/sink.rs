//! Durable write-ahead sink for caught violations.
//!
//! A violation caught moments before the process dies — a crashing bug, a
//! harness abort, a CI timeout killing the run — is exactly the violation
//! worth keeping, and an in-memory [`crate::ReportSink`] loses it. The
//! durable sink appends every catch **write-ahead** as one JSON line: the
//! record reaches the file before the in-memory report is published, so the
//! on-disk log is always a superset of what any survivor observed.
//!
//! Format: JSONL — one [`ViolationRecord`] object per `\n`-terminated line,
//! appended with a single `write` call each. A crash mid-append leaves at
//! most one torn final line, which [`DurableSink::load`] skips (with a
//! warning) instead of discarding the whole file. `durable_sink_fsync`
//! additionally syncs file data after every append for power-loss
//! durability; the default trades that for speed, relying on the OS page
//! cache surviving process death.
//!
//! Creating a sink also installs (once, chained) a process-wide panic hook
//! that syncs every live sink before the panic propagates, so even
//! panic-aborts flush pending data.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use crate::report::Violation;

/// Schema version stamped on every record this build writes. Version 1
/// introduced the field itself; records loaded from files (or wire frames)
/// written before it carry 0, the back-compat default. Readers accept any
/// version at or below their own and must treat unknown *higher* versions
/// as forward data whose known fields are still meaningful — the JSONL
/// object shape only ever grows fields.
pub const VIOLATION_SCHEMA_VERSION: u32 = 1;

/// One durable violation record — the subset of [`Violation`] that survives
/// serialization (sites become rendered location strings). Also the payload
/// the fleet wire protocol streams from workers to the daemon, which is why
/// it carries an explicit schema version.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ViolationRecord {
    /// Serialization schema version (see [`VIOLATION_SCHEMA_VERSION`]);
    /// 0 for records written before the field existed.
    #[serde(default)]
    pub schema: u32,
    /// Rendered static location of the trapped (delayed) side.
    pub location_trapped: String,
    /// Rendered static location of the side that walked into the trap.
    pub location_hitter: String,
    /// Operation name on the trapped side.
    pub op_trapped: String,
    /// Operation name on the hitter side.
    pub op_hitter: String,
    /// Object both sides accessed.
    pub obj: u64,
    /// When the collision was observed, nanoseconds.
    pub time_ns: u64,
    /// `true` if exactly one side is a read.
    pub read_write: bool,
}

impl ViolationRecord {
    /// Builds a record from a caught violation.
    pub fn from_violation(v: &Violation) -> ViolationRecord {
        ViolationRecord {
            schema: VIOLATION_SCHEMA_VERSION,
            location_trapped: v.trapped.site.to_string(),
            location_hitter: v.hitter.site.to_string(),
            op_trapped: v.trapped.op_name.to_string(),
            op_hitter: v.hitter.op_name.to_string(),
            obj: v.obj.0,
            time_ns: v.time_ns,
            read_write: v.is_read_write(),
        }
    }

    /// The unordered location pair identifying this bug, normalized
    /// lexicographically so records and in-memory reports compare equal
    /// regardless of which side was trapped.
    pub fn pair_key(&self) -> (String, String) {
        normalize_pair(&self.location_trapped, &self.location_hitter)
    }
}

/// Orders two rendered locations lexicographically — the textual analogue
/// of [`crate::near_miss::SitePair`]'s normalization, usable on loaded
/// records whose interned sites no longer exist.
pub fn normalize_pair(a: &str, b: &str) -> (String, String) {
    if a <= b {
        (a.to_string(), b.to_string())
    } else {
        (b.to_string(), a.to_string())
    }
}

struct SinkFile {
    file: Mutex<File>,
    fsync: bool,
}

impl SinkFile {
    fn sync(&self) {
        // Best effort: a failed sync during a panic must not double-panic.
        let _ = self.file.lock().sync_data();
    }
}

/// Append-only JSONL violation log (see module docs).
pub struct DurableSink {
    inner: Arc<SinkFile>,
}

impl DurableSink {
    /// Opens `path` for appending, creating it (and any missing parent
    /// directories) if needed, and registers the sink with the panic-hook
    /// flush list.
    pub fn create(path: &Path, fsync: bool) -> std::io::Result<DurableSink> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let inner = Arc::new(SinkFile {
            file: Mutex::new(file),
            fsync,
        });
        register_for_panic_flush(&inner);
        Ok(DurableSink { inner })
    }

    /// Appends one violation as a single JSON line. Errors are returned,
    /// not panicked — the caller decides whether a failed append is fatal
    /// (the runtime logs and keeps detecting).
    pub fn append(&self, v: &Violation) -> std::io::Result<()> {
        self.append_record(&ViolationRecord::from_violation(v))
    }

    /// Appends an already-built record (used by tests and reconciliation).
    pub fn append_record(&self, record: &ViolationRecord) -> std::io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        line.push('\n');
        let mut file = self.inner.file.lock();
        // One write call per record keeps appends atomic with respect to
        // other writers of this handle and bounds crash damage to one line.
        file.write_all(line.as_bytes())?;
        if self.inner.fsync {
            file.sync_data()?;
        }
        Ok(())
    }

    /// Forces buffered data to disk.
    pub fn flush(&self) {
        self.inner.sync();
    }

    /// Reads every intact record from a sink file. A torn (unparseable)
    /// **final** line — the signature of a crash mid-append — is skipped
    /// with a warning; an unparseable line elsewhere is also skipped, so a
    /// partially corrupted log still yields its good records.
    pub fn load(path: &Path) -> std::io::Result<Vec<ViolationRecord>> {
        let text = std::fs::read_to_string(path)?;
        let mut records = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<ViolationRecord>(line) {
                Ok(r) => records.push(r),
                Err(e) => {
                    eprintln!(
                        "tsvd: durable sink {}: skipping unreadable line {}: {}",
                        path.display(),
                        idx + 1,
                        e
                    );
                }
            }
        }
        Ok(records)
    }
}

static FLUSH_REGISTRY: OnceLock<Mutex<Vec<Weak<SinkFile>>>> = OnceLock::new();

/// Installs (once) a chained panic hook that syncs every live sink, then
/// adds `inner` to the flush list.
fn register_for_panic_flush(inner: &Arc<SinkFile>) {
    let registry = FLUSH_REGISTRY.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(registry) = FLUSH_REGISTRY.get() {
                for weak in registry.lock().iter() {
                    if let Some(sink) = weak.upgrade() {
                        sink.sync();
                    }
                }
            }
            previous(info);
        }));
        Mutex::new(Vec::new())
    });
    let mut sinks = registry.lock();
    sinks.retain(|w| w.strong_count() > 0);
    sinks.push(Arc::downgrade(inner));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{ObjId, OpKind};
    use crate::context::ContextId;
    use crate::report::Party;
    use crate::site::{SiteData, SiteId};

    fn site(line: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "sink_test.rs",
            line,
            column: 1,
        })
    }

    fn violation(a: u32, b: u32) -> Violation {
        Violation {
            trapped: Party {
                site: site(a),
                context: ContextId(1),
                op_name: "x.write",
                kind: OpKind::Write,
                stack: None,
            },
            hitter: Party {
                site: site(b),
                context: ContextId(2),
                op_name: "x.read",
                kind: OpKind::Read,
                stack: None,
            },
            obj: ObjId(7),
            time_ns: 42,
        }
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tsvd_sink_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn append_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("violations.jsonl");
        let sink = DurableSink::create(&path, false).expect("create");
        sink.append(&violation(1, 2)).expect("append");
        sink.append(&violation(3, 4)).expect("append");
        let records = DurableSink::load(&path).expect("load");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].obj, 7);
        assert_eq!(records[0].time_ns, 42);
        assert!(records[0].read_write);
        assert_eq!(records[0].op_trapped, "x.write");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_skips_torn_final_line() {
        let dir = temp_dir("torn");
        let path = dir.join("violations.jsonl");
        let sink = DurableSink::create(&path, true).expect("create");
        sink.append(&violation(1, 2)).expect("append");
        // Simulate a crash mid-append: a truncated JSON fragment at EOF.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"location_trapped\":\"sink_te")
                .expect("tear");
        }
        let records = DurableSink::load(&path).expect("load");
        assert_eq!(records.len(), 1, "the intact line must survive");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_reopens_existing_log() {
        let dir = temp_dir("reopen");
        let path = dir.join("violations.jsonl");
        {
            let sink = DurableSink::create(&path, false).expect("create");
            sink.append(&violation(1, 2)).expect("append");
        }
        {
            let sink = DurableSink::create(&path, false).expect("reopen");
            sink.append(&violation(3, 4)).expect("append");
        }
        let records = DurableSink::load(&path).expect("load");
        assert_eq!(records.len(), 2, "reopen must append, not truncate");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_skips_torn_mid_file_frame_and_keeps_later_lines() {
        // A tear need not be final: a crashed writer's partial line gets a
        // newline appended when another handle (a respawned worker, a log
        // concatenation) continues the file. Every intact line around the
        // tear must survive.
        let dir = temp_dir("torn_mid");
        let path = dir.join("violations.jsonl");
        let sink = DurableSink::create(&path, false).expect("create");
        sink.append(&violation(1, 2)).expect("append");
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(b"{\"location_trapped\":\"sink_te\n")
                .expect("tear");
        }
        sink.append(&violation(3, 4)).expect("append after tear");
        sink.append(&violation(5, 6)).expect("append after tear");
        let records = DurableSink::load(&path).expect("load");
        assert_eq!(records.len(), 3, "valid lines after a torn frame survive");
        assert_eq!(records[1].pair_key(), {
            let r = ViolationRecord::from_violation(&violation(3, 4));
            r.pair_key()
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn schema_version_round_trips_and_defaults_on_old_files() {
        let dir = temp_dir("schema");
        let path = dir.join("violations.jsonl");
        let sink = DurableSink::create(&path, false).expect("create");
        sink.append(&violation(1, 2)).expect("append");
        // A line written by a pre-schema build: no `schema` key at all.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(
                b"{\"location_trapped\":\"old.rs:1:1\",\"location_hitter\":\"old.rs:2:2\",\
                  \"op_trapped\":\"x.write\",\"op_hitter\":\"x.read\",\"obj\":3,\
                  \"time_ns\":9,\"read_write\":true}\n",
            )
            .expect("write old-format line");
        }
        let records = DurableSink::load(&path).expect("load");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].schema, VIOLATION_SCHEMA_VERSION);
        assert_eq!(records[1].schema, 0, "pre-schema records load as version 0");
        // And the new record's version survives a full JSON round trip.
        let json = serde_json::to_string(&records[0]).expect("serialize");
        let back: ViolationRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, records[0]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pair_key_is_order_insensitive() {
        let a = ViolationRecord::from_violation(&violation(1, 2));
        let mut b = ViolationRecord::from_violation(&violation(1, 2));
        std::mem::swap(&mut b.location_trapped, &mut b.location_hitter);
        assert_eq!(a.pair_key(), b.pair_key());
    }

    #[test]
    fn load_missing_file_is_an_error() {
        let dir = temp_dir("missing");
        let err = DurableSink::load(&dir.join("nope.jsonl"));
        assert!(err.is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
