//! Detector configuration: every tunable the paper sweeps in Figure 9,
//! plus the ablation switches of Table 3.
//!
//! Defaults are the paper's defaults (§5.4): `N_nm = 5`, `T_nm = 100 ms`,
//! `δ_hb = 0.5`, `k_hb = 5`, phase buffer of 16, 100 ms delays. Because the
//! algorithm depends only on the *ratios* between its time constants,
//! [`TsvdConfig::scaled`] shrinks all of them proportionally so that the full
//! evaluation fits in CI time.

use serde::{Deserialize, Serialize};

use crate::clock::ms_to_ns;

/// Configuration for a [`Runtime`](crate::Runtime) and its strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TsvdConfig {
    // --- Delay injection (shared by all variants) -------------------------
    /// Length of one injected delay (`delay_time`), nanoseconds.
    /// Paper default: 100 ms (Fig. 9 h).
    pub delay_ns: u64,
    /// Cap on the total delay injected into any single context, nanoseconds.
    /// Prevents test timeouts (§4). `u64::MAX` disables the cap.
    pub max_delay_per_context_ns: u64,
    /// Cap on the total delay injected during one run, nanoseconds.
    pub max_delay_per_run_ns: u64,
    /// Workload pacing hint, nanoseconds: one "beat" of scenario time.
    /// Kept separate from `delay_ns` so sweeping the delay (Fig. 9 h) does
    /// not change the workload itself.
    pub beat_ns: u64,
    /// Capture a stack trace on each side of a reported violation.
    /// Costly; off by default, on in the examples.
    pub capture_stacks: bool,
    /// RNG seed for all probabilistic decisions.
    pub seed: u64,

    // --- Near-miss tracking (§3.4.2) --------------------------------------
    /// `N_nm`: accesses remembered per object. Paper default: 5 (Fig. 9 b).
    pub near_miss_history: usize,
    /// `T_nm`: physical window within which two conflicting accesses count
    /// as a near miss, nanoseconds. Paper default: 100 ms (Fig. 9 c).
    pub near_miss_window_ns: u64,
    /// Maximum number of distinct objects tracked at once (memory bound).
    pub max_tracked_objects: usize,

    // --- Concurrent-phase inference (§3.4.3) -------------------------------
    /// Size of the global history buffer of recent TSVD points.
    /// Paper default: 16 (Fig. 9 f).
    pub phase_buffer: usize,

    // --- Hot-path sharding (implementation, not a paper knob) ---------------
    /// Shards in the trap table (keyed by object id).
    pub trap_shards: usize,
    /// Lock stripes in the near-miss tracker (keyed by object id; clamped
    /// to `max_tracked_objects` so the object bound still holds).
    pub near_miss_shards: usize,
    /// Shards in the statistics coverage and per-context delay maps.
    pub stats_shards: usize,

    // --- Happens-before inference (§3.4.4) ---------------------------------
    /// `δ_hb`: causal-delay blocking threshold, as a fraction of
    /// `delay_ns`. Paper default: 0.5 (Fig. 9 d).
    pub hb_blocking_threshold: f64,
    /// `k_hb`: how many subsequent accesses of the blocked thread inherit
    /// the inferred happens-after edge. Paper default: 5 (Fig. 9 e).
    pub hb_inference_window: usize,
    /// Number of recently finished delays kept for causality attribution.
    pub hb_delay_history: usize,

    // --- Probability decay (§3.4.5) ----------------------------------------
    /// Multiplicative decay applied to a location's delay probability after
    /// each injection that catches nothing: `p ← p · (1 − decay_factor)`.
    /// 0 disables decay (the pathological configuration of Fig. 9 g).
    pub decay_factor: f64,
    /// Probability below which a location is dropped from the trap set.
    pub decay_floor: f64,

    // --- Variant-specific ---------------------------------------------------
    /// DynamicRandom: probability of injecting a delay at each TSVD point.
    /// Paper uses 0.05 (Table 2).
    pub dynamic_random_p: f64,
    /// StaticRandom/DataCollider: number of simultaneously armed sites.
    pub armed_sites: usize,
    /// TSVD-HB: accesses remembered per object for the race check.
    pub hb_access_history: usize,

    // --- Extension (beyond the paper) ---------------------------------------
    /// Adaptive delay lengthening: after a fruitless delay at a location,
    /// double that location's next delay (up to `adaptive_delay_cap` ×
    /// `delay_ns`); reset on a catch. Addresses the paper's §5.3
    /// false-negative category 3 (delays too short to bridge the racing
    /// pair). Off by default — it is an extension, not part of TSVD.
    pub adaptive_delay: bool,
    /// Maximum multiplier for adaptive delays.
    pub adaptive_delay_cap: f64,

    // --- Ablation switches (Table 3) ----------------------------------------
    /// Disable happens-before inference ("No HB-inference" row).
    pub enable_hb_inference: bool,
    /// Disable the near-miss time window ("No windowing" row): conflicting
    /// accesses by different threads anywhere in the retained history count
    /// as near misses regardless of age.
    pub enable_windowing: bool,
    /// Disable concurrent-phase detection ("No concurrent phase detection").
    pub enable_phase_detection: bool,

    // --- Robustness: delay watchdog (runtime hardening, not a paper knob) ---
    /// Enable the delay watchdog: a monitor that cancels live traps when
    /// every pool worker is simultaneously delayed/blocked (delay-induced
    /// starvation) or the run exceeds [`run_deadline_ns`], degrading the
    /// runtime to passive monitoring instead of hanging the test.
    ///
    /// [`run_deadline_ns`]: TsvdConfig::run_deadline_ns
    #[serde(default = "default_watchdog")]
    pub watchdog: bool,
    /// Watchdog poll interval, nanoseconds (scaled with the time constants).
    #[serde(default = "default_watchdog_poll_ns")]
    pub watchdog_poll_ns: u64,
    /// Wall-clock deadline for one runtime's lifetime, nanoseconds. When
    /// exceeded, the watchdog cancels every live trap and disables further
    /// injection (detection stays on). `u64::MAX` disables the deadline.
    #[serde(default = "default_run_deadline_ns")]
    pub run_deadline_ns: u64,
    /// Consecutive watchdog polls the starvation condition must persist
    /// before a trap is cancelled (debounces transient all-blocked states).
    #[serde(default = "default_watchdog_grace_polls")]
    pub watchdog_grace_polls: u32,
    /// Starvation cancellations after which injection degrades to passive
    /// monitoring for the rest of the run.
    #[serde(default = "default_watchdog_max_cancellations")]
    pub watchdog_max_cancellations: u64,

    // --- Trap-file import budget --------------------------------------------
    /// Maximum number of pairs armed from an imported trap file. When a
    /// file carries more candidates than the budget allows, the highest-
    /// confidence pairs are armed first (ties broken by file order), so a
    /// statically over-approximated seed spends the delay budget on the
    /// likeliest races. `usize::MAX` (the default) arms everything.
    #[serde(default = "default_trap_import_budget")]
    pub trap_import_budget: usize,

    // --- Hot-path batching (implementation, not a paper knob) ----------------
    /// Capacity of each thread-local event buffer on the zero-trap fast
    /// path. While the runtime is quiescent (no trap armed, no armed pair)
    /// the hot path appends accesses to this buffer instead of touching any
    /// shared structure, flushing at trap checks, synchronization points,
    /// buffer-full, and thread exit. `0` (the default) disables batching:
    /// every access is analyzed inline, exactly the pre-batching behavior.
    #[serde(default)]
    pub batch_capacity: usize,

    // --- Robustness: durable violation sink ---------------------------------
    /// Write-ahead violation log: every caught violation is appended to this
    /// JSONL file the moment it is caught, so a later test-process crash
    /// cannot lose a confirmed TSV. `None` disables the sink.
    #[serde(default)]
    pub durable_sink: Option<std::path::PathBuf>,
    /// `fsync` the durable sink after each appended violation (maximum
    /// durability; slower when violations are frequent).
    #[serde(default)]
    pub durable_sink_fsync: bool,
}

fn default_watchdog() -> bool {
    true
}

fn default_watchdog_poll_ns() -> u64 {
    ms_to_ns(25)
}

fn default_run_deadline_ns() -> u64 {
    u64::MAX
}

fn default_watchdog_grace_polls() -> u32 {
    2
}

fn default_watchdog_max_cancellations() -> u64 {
    16
}

fn default_trap_import_budget() -> usize {
    usize::MAX
}

impl Default for TsvdConfig {
    fn default() -> Self {
        TsvdConfig {
            delay_ns: ms_to_ns(100),
            max_delay_per_context_ns: ms_to_ns(5_000),
            max_delay_per_run_ns: ms_to_ns(30_000),
            beat_ns: ms_to_ns(25),
            capture_stacks: false,
            seed: 0x7365_6564,
            near_miss_history: 5,
            near_miss_window_ns: ms_to_ns(100),
            max_tracked_objects: 1 << 16,
            phase_buffer: 16,
            trap_shards: 16,
            near_miss_shards: 16,
            stats_shards: 16,
            hb_blocking_threshold: 0.5,
            hb_inference_window: 5,
            hb_delay_history: 64,
            decay_factor: 0.5,
            decay_floor: 0.1,
            dynamic_random_p: 0.05,
            armed_sites: 1,
            hb_access_history: 5,
            adaptive_delay: false,
            adaptive_delay_cap: 8.0,
            enable_hb_inference: true,
            enable_windowing: true,
            enable_phase_detection: true,
            watchdog: default_watchdog(),
            watchdog_poll_ns: default_watchdog_poll_ns(),
            run_deadline_ns: default_run_deadline_ns(),
            watchdog_grace_polls: default_watchdog_grace_polls(),
            watchdog_max_cancellations: default_watchdog_max_cancellations(),
            trap_import_budget: default_trap_import_budget(),
            batch_capacity: 0,
            durable_sink: None,
            durable_sink_fsync: false,
        }
    }
}

impl TsvdConfig {
    /// The paper's default configuration (100 ms delays and windows).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A configuration with all time constants multiplied by `factor`.
    ///
    /// `TsvdConfig::paper().scaled(0.02)` gives 2 ms delays and windows —
    /// the profile the harness uses so the whole evaluation runs in minutes
    /// instead of hours. Ratios (`δ_hb`) are untouched.
    pub fn scaled(mut self, factor: f64) -> Self {
        let scale = |ns: u64| -> u64 {
            if ns == u64::MAX {
                return u64::MAX;
            }
            ((ns as f64) * factor).round().max(1.0) as u64
        };
        self.delay_ns = scale(self.delay_ns);
        self.near_miss_window_ns = scale(self.near_miss_window_ns);
        self.max_delay_per_context_ns = scale(self.max_delay_per_context_ns);
        self.max_delay_per_run_ns = scale(self.max_delay_per_run_ns);
        self.beat_ns = scale(self.beat_ns);
        self.watchdog_poll_ns = scale(self.watchdog_poll_ns);
        self.run_deadline_ns = scale(self.run_deadline_ns);
        self
    }

    /// A fast profile for unit/integration tests: 2 ms delays, generous
    /// windows, deterministic seed.
    pub fn for_testing() -> Self {
        Self::default().scaled(0.02)
    }

    /// `δ_hb · delay_time` in nanoseconds — the minimum gap in a thread's
    /// access stream that counts as evidence of blocking (§3.4.4).
    pub fn hb_gap_ns(&self) -> u64 {
        (self.hb_blocking_threshold * self.delay_ns as f64).round() as u64
    }

    /// Validates parameter ranges, returning a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.delay_ns == 0 {
            return Err("delay_ns must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.decay_factor) {
            return Err(format!("decay_factor {} not in [0,1]", self.decay_factor));
        }
        if !(0.0..=1.0).contains(&self.dynamic_random_p) {
            return Err(format!(
                "dynamic_random_p {} not in [0,1]",
                self.dynamic_random_p
            ));
        }
        if self.hb_blocking_threshold < 0.0 {
            return Err("hb_blocking_threshold must be non-negative".into());
        }
        if self.near_miss_history == 0 {
            return Err("near_miss_history must be at least 1".into());
        }
        if self.phase_buffer < 2 {
            return Err("phase_buffer must be at least 2".into());
        }
        if self.trap_shards == 0 || self.near_miss_shards == 0 || self.stats_shards == 0 {
            return Err("shard counts must be at least 1".into());
        }
        if self.adaptive_delay_cap < 1.0 {
            return Err("adaptive_delay_cap must be at least 1".into());
        }
        if self.watchdog_poll_ns == 0 {
            return Err("watchdog_poll_ns must be positive".into());
        }
        if self.watchdog_grace_polls == 0 {
            return Err("watchdog_grace_polls must be at least 1".into());
        }
        if self.trap_import_budget == 0 {
            return Err("trap_import_budget must be at least 1 (usize::MAX disables it)".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = TsvdConfig::paper();
        assert_eq!(c.delay_ns, 100_000_000);
        assert_eq!(c.near_miss_history, 5);
        assert_eq!(c.near_miss_window_ns, 100_000_000);
        assert_eq!(c.phase_buffer, 16);
        assert!((c.hb_blocking_threshold - 0.5).abs() < 1e-9);
        assert_eq!(c.hb_inference_window, 5);
        assert!((c.dynamic_random_p - 0.05).abs() < 1e-9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaling_preserves_ratios() {
        let c = TsvdConfig::paper().scaled(0.01);
        assert_eq!(c.delay_ns, 1_000_000);
        assert_eq!(c.near_miss_window_ns, 1_000_000);
        assert_eq!(
            c.hb_gap_ns(),
            500_000,
            "δ_hb stays a fixed fraction of the delay"
        );
    }

    #[test]
    fn scaling_never_hits_zero() {
        let c = TsvdConfig::paper().scaled(1e-12);
        assert!(c.delay_ns >= 1);
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut c = TsvdConfig::paper();
        c.decay_factor = 1.5;
        assert!(c.validate().is_err());
        c.decay_factor = 0.5;
        c.dynamic_random_p = -0.1;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_sizes() {
        let mut c = TsvdConfig::paper();
        c.near_miss_history = 0;
        assert!(c.validate().is_err());
        c = TsvdConfig::paper();
        c.phase_buffer = 1;
        assert!(c.validate().is_err());
        c = TsvdConfig::paper();
        c.trap_shards = 0;
        assert!(c.validate().is_err());
        c = TsvdConfig::paper();
        c.near_miss_shards = 0;
        assert!(c.validate().is_err());
        c = TsvdConfig::paper();
        c.stats_shards = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_degenerate_watchdog() {
        let mut c = TsvdConfig::paper();
        c.watchdog_poll_ns = 0;
        assert!(c.validate().is_err());
        c = TsvdConfig::paper();
        c.watchdog_grace_polls = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn scaling_covers_watchdog_constants() {
        let mut c = TsvdConfig::paper();
        c.run_deadline_ns = ms_to_ns(10_000);
        let c = c.scaled(0.01);
        assert_eq!(c.watchdog_poll_ns, 250_000);
        assert_eq!(c.run_deadline_ns, 100_000_000);
        // A disabled deadline stays disabled at any scale.
        let c = TsvdConfig::paper().scaled(0.01);
        assert_eq!(c.run_deadline_ns, u64::MAX);
    }

    #[test]
    fn config_without_robustness_fields_still_deserializes() {
        // Configs persisted before the watchdog/sink fields existed must
        // load with the defaults instead of erroring.
        let mut value = serde::Serialize::to_value(&TsvdConfig::paper());
        match &mut value {
            serde::Value::Object(map) => {
                for key in [
                    "watchdog",
                    "watchdog_poll_ns",
                    "run_deadline_ns",
                    "watchdog_grace_polls",
                    "watchdog_max_cancellations",
                    "trap_import_budget",
                    "batch_capacity",
                    "durable_sink",
                    "durable_sink_fsync",
                ] {
                    map.remove(key);
                }
            }
            other => panic!("expected object, got {other:?}"),
        }
        let back = <TsvdConfig as serde::Deserialize>::from_value(&value).expect("deserialize");
        assert!(back.watchdog);
        assert_eq!(back.run_deadline_ns, u64::MAX);
        assert!(back.durable_sink.is_none());
        assert_eq!(back.trap_import_budget, usize::MAX);
        assert_eq!(back.batch_capacity, 0, "batching defaults to off");
    }

    #[test]
    fn validate_rejects_zero_import_budget() {
        let mut c = TsvdConfig::paper();
        c.trap_import_budget = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serde_round_trip() {
        let c = TsvdConfig::paper();
        let json = serde_json::to_string(&c).expect("serialize");
        let back: TsvdConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.delay_ns, c.delay_ns);
        assert_eq!(back.phase_buffer, c.phase_buffer);
    }
}
