//! Runtime statistics: delay accounting, coverage, and resource estimates.
//!
//! The paper's runtime (§4) tracks the total delay injected per thread and
//! per run (to avoid test timeouts) and reports coverage of instrumented
//! APIs — which one product team used to find blind spots where critical
//! code was only ever exercised sequentially. The §5.5 resource evaluation
//! additionally needs memory estimates for the tracking state.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::context::ContextId;
use crate::site::SiteId;

/// Per-site coverage: how often a TSVD point ran at all, and how often it
/// ran inside a concurrent phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct SiteCoverage {
    /// Executions in any context.
    pub hits: u64,
    /// Executions observed during a concurrent phase.
    pub concurrent_hits: u64,
}

/// Counters shared by the runtime and its strategy.
#[derive(Default)]
pub struct RuntimeStats {
    on_calls: AtomicU64,
    delays_injected: AtomicU64,
    delay_total_ns: AtomicU64,
    traps_caught: AtomicU64,
    sync_events: AtomicU64,
    per_context_delay_ns: Mutex<HashMap<ContextId, u64>>,
    coverage: Mutex<HashMap<SiteId, SiteCoverage>>,
}

impl RuntimeStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one `OnCall` entry at `site`, noting phase concurrency.
    pub fn record_call(&self, site: SiteId, concurrent: bool) {
        self.on_calls.fetch_add(1, Ordering::Relaxed);
        let mut cov = self.coverage.lock();
        let entry = cov.entry(site).or_default();
        entry.hits += 1;
        if concurrent {
            entry.concurrent_hits += 1;
        }
    }

    /// Records an injected delay of `ns` nanoseconds by `context`.
    pub fn record_delay(&self, context: ContextId, ns: u64) {
        self.delays_injected.fetch_add(1, Ordering::Relaxed);
        self.delay_total_ns.fetch_add(ns, Ordering::Relaxed);
        *self.per_context_delay_ns.lock().entry(context).or_insert(0) += ns;
    }

    /// Records a trap collision.
    pub fn record_catch(&self) {
        self.traps_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a synchronization event delivered to the strategy.
    pub fn record_sync(&self) {
        self.sync_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Total `OnCall` entries.
    pub fn on_calls(&self) -> u64 {
        self.on_calls.load(Ordering::Relaxed)
    }

    /// Total delays injected.
    pub fn delays_injected(&self) -> u64 {
        self.delays_injected.load(Ordering::Relaxed)
    }

    /// Total nanoseconds of injected delay.
    pub fn delay_total_ns(&self) -> u64 {
        self.delay_total_ns.load(Ordering::Relaxed)
    }

    /// Total trap collisions.
    pub fn traps_caught(&self) -> u64 {
        self.traps_caught.load(Ordering::Relaxed)
    }

    /// Total synchronization events observed.
    pub fn sync_events(&self) -> u64 {
        self.sync_events.load(Ordering::Relaxed)
    }

    /// Delay injected by `context` so far (for the per-thread budget).
    pub fn context_delay_ns(&self, context: ContextId) -> u64 {
        self.per_context_delay_ns
            .lock()
            .get(&context)
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct TSVD points executed.
    pub fn sites_covered(&self) -> usize {
        self.coverage.lock().len()
    }

    /// Number of TSVD points that ever ran in a concurrent phase.
    ///
    /// Sites with `hits > 0` but `concurrent_hits == 0` are the "blind
    /// spots" the paper's coverage report surfaces: code only ever tested
    /// sequentially.
    pub fn sites_covered_concurrently(&self) -> usize {
        self.coverage
            .lock()
            .values()
            .filter(|c| c.concurrent_hits > 0)
            .count()
    }

    /// Per-site coverage snapshot.
    pub fn coverage(&self) -> Vec<(SiteId, SiteCoverage)> {
        self.coverage.lock().iter().map(|(&s, &c)| (s, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "stats_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn call_and_coverage_counting() {
        let s = RuntimeStats::new();
        s.record_call(site(1), false);
        s.record_call(site(1), true);
        s.record_call(site(2), false);
        assert_eq!(s.on_calls(), 3);
        assert_eq!(s.sites_covered(), 2);
        assert_eq!(s.sites_covered_concurrently(), 1);
    }

    #[test]
    fn delay_accounting_per_context() {
        let s = RuntimeStats::new();
        s.record_delay(ContextId(1), 100);
        s.record_delay(ContextId(1), 50);
        s.record_delay(ContextId(2), 10);
        assert_eq!(s.delays_injected(), 3);
        assert_eq!(s.delay_total_ns(), 160);
        assert_eq!(s.context_delay_ns(ContextId(1)), 150);
        assert_eq!(s.context_delay_ns(ContextId(2)), 10);
        assert_eq!(s.context_delay_ns(ContextId(3)), 0);
    }

    #[test]
    fn catch_and_sync_counters() {
        let s = RuntimeStats::new();
        s.record_catch();
        s.record_sync();
        s.record_sync();
        assert_eq!(s.traps_caught(), 1);
        assert_eq!(s.sync_events(), 2);
    }
}
