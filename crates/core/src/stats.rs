//! Runtime statistics: delay accounting, coverage, and resource estimates.
//!
//! The paper's runtime (§4) tracks the total delay injected per thread and
//! per run (to avoid test timeouts) and reports coverage of instrumented
//! APIs — which one product team used to find blind spots where critical
//! code was only ever exercised sequentially. The §5.5 resource evaluation
//! additionally needs memory estimates for the tracking state.
//!
//! `record_call` runs on every instrumented access, so coverage is kept in
//! sharded read-mostly maps of atomic cells: after a site's first visit,
//! recording is a shared (read) lock plus two relaxed `fetch_add`s — the
//! write lock is taken exactly once per distinct site. The per-context
//! delay ledger is sharded by context so concurrent delayers don't share a
//! lock.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use crate::audit;
use crate::context::ContextId;
use crate::site::SiteId;

const DEFAULT_SHARDS: usize = 16;

/// Per-site coverage: how often a TSVD point ran at all, and how often it
/// ran inside a concurrent phase.
#[derive(Debug, Default, Clone, Copy)]
pub struct SiteCoverage {
    /// Executions in any context.
    pub hits: u64,
    /// Executions observed during a concurrent phase.
    pub concurrent_hits: u64,
}

#[derive(Default)]
struct CovCell {
    hits: AtomicU64,
    concurrent_hits: AtomicU64,
}

/// One coverage shard: read-mostly map from site to its atomic counters.
type CovShard = RwLock<HashMap<SiteId, Arc<CovCell>>>;

/// Counters shared by the runtime and its strategy.
pub struct RuntimeStats {
    on_calls: AtomicU64,
    delays_injected: AtomicU64,
    delay_total_ns: AtomicU64,
    traps_caught: AtomicU64,
    sync_events: AtomicU64,
    /// Buffer drains requested by trap arming events (hot-gate epoch bumps).
    drain_requests: AtomicU64,
    /// Local event buffers flushed into the shared analysis structures.
    batch_flushes: AtomicU64,
    /// Total events delivered through those flushes.
    batch_events_flushed: AtomicU64,
    /// Flushes performed by a thread-local buffer's exit destructor.
    thread_exit_flushes: AtomicU64,
    delay_shards: Box<[Mutex<HashMap<ContextId, u64>>]>,
    coverage_shards: Box<[CovShard]>,
}

impl Default for RuntimeStats {
    fn default() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }
}

fn shard_of(key: u64, len: usize) -> usize {
    let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    (h >> 32) as usize % len
}

impl RuntimeStats {
    /// Creates zeroed counters with the default shard count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates zeroed counters with `shards` shards (clamped to ≥ 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        RuntimeStats {
            on_calls: AtomicU64::new(0),
            delays_injected: AtomicU64::new(0),
            delay_total_ns: AtomicU64::new(0),
            traps_caught: AtomicU64::new(0),
            sync_events: AtomicU64::new(0),
            drain_requests: AtomicU64::new(0),
            batch_flushes: AtomicU64::new(0),
            batch_events_flushed: AtomicU64::new(0),
            thread_exit_flushes: AtomicU64::new(0),
            delay_shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            coverage_shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    /// Records one `OnCall` entry at `site`, noting phase concurrency.
    pub fn record_call(&self, site: SiteId, concurrent: bool) {
        self.on_calls.fetch_add(1, Ordering::Relaxed);
        self.record_coverage(site, concurrent);
    }

    /// Bulk-counts `n` `OnCall` entries with one counter update. Batch
    /// flushes use this plus per-event [`RuntimeStats::record_coverage`]
    /// instead of `n` [`RuntimeStats::record_call`]s.
    pub fn record_calls_bulk(&self, n: u64) {
        audit::note_shared_write();
        self.on_calls.fetch_add(n, Ordering::Relaxed);
    }

    /// Records site coverage for one access without touching the call
    /// counter (see [`RuntimeStats::record_calls_bulk`]).
    pub fn record_coverage(&self, site: SiteId, concurrent: bool) {
        audit::note_lock();
        audit::note_shared_write();
        let shard =
            &self.coverage_shards[shard_of(site.index() as u64, self.coverage_shards.len())];
        {
            // Steady state: shared lock, two relaxed adds. The cell is
            // bumped under the read guard so no `Arc` refcount traffic is
            // paid per call.
            let map = shard.read();
            if let Some(cell) = map.get(&site) {
                cell.hits.fetch_add(1, Ordering::Relaxed);
                if concurrent {
                    cell.concurrent_hits.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        }
        // First visit to this site: the only write-lock take.
        let cell = shard.write().entry(site).or_default().clone();
        cell.hits.fetch_add(1, Ordering::Relaxed);
        if concurrent {
            cell.concurrent_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an injected delay of `ns` nanoseconds by `context`.
    pub fn record_delay(&self, context: ContextId, ns: u64) {
        self.delays_injected.fetch_add(1, Ordering::Relaxed);
        self.delay_total_ns.fetch_add(ns, Ordering::Relaxed);
        let shard = &self.delay_shards[shard_of(context.0, self.delay_shards.len())];
        *shard.lock().entry(context).or_insert(0) += ns;
    }

    /// Records a trap collision.
    pub fn record_catch(&self) {
        self.traps_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a synchronization event delivered to the strategy.
    pub fn record_sync(&self) {
        self.sync_events.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a buffer-drain request (trap arming bumped the gate epoch).
    pub fn record_drain_request(&self) {
        self.drain_requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one local-buffer flush delivering `events` batched events.
    pub fn record_batch_flush(&self, events: u64) {
        self.batch_flushes.fetch_add(1, Ordering::Relaxed);
        self.batch_events_flushed
            .fetch_add(events, Ordering::Relaxed);
    }

    /// Records a flush triggered by a thread's exit destructor.
    pub fn record_thread_exit_flush(&self) {
        self.thread_exit_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Total `OnCall` entries.
    pub fn on_calls(&self) -> u64 {
        self.on_calls.load(Ordering::Relaxed)
    }

    /// Total delays injected.
    pub fn delays_injected(&self) -> u64 {
        self.delays_injected.load(Ordering::Relaxed)
    }

    /// Total nanoseconds of injected delay.
    pub fn delay_total_ns(&self) -> u64 {
        self.delay_total_ns.load(Ordering::Relaxed)
    }

    /// Total trap collisions.
    pub fn traps_caught(&self) -> u64 {
        self.traps_caught.load(Ordering::Relaxed)
    }

    /// Total synchronization events observed.
    pub fn sync_events(&self) -> u64 {
        self.sync_events.load(Ordering::Relaxed)
    }

    /// Total buffer-drain requests issued by trap arming.
    pub fn drain_requests(&self) -> u64 {
        self.drain_requests.load(Ordering::Relaxed)
    }

    /// Total local-buffer flushes into the shared structures.
    pub fn batch_flushes(&self) -> u64 {
        self.batch_flushes.load(Ordering::Relaxed)
    }

    /// Total events delivered through batch flushes.
    pub fn batch_events_flushed(&self) -> u64 {
        self.batch_events_flushed.load(Ordering::Relaxed)
    }

    /// Total flushes performed by thread-exit destructors.
    pub fn thread_exit_flushes(&self) -> u64 {
        self.thread_exit_flushes.load(Ordering::Relaxed)
    }

    /// Delay injected by `context` so far (for the per-thread budget).
    pub fn context_delay_ns(&self, context: ContextId) -> u64 {
        self.delay_shards[shard_of(context.0, self.delay_shards.len())]
            .lock()
            .get(&context)
            .copied()
            .unwrap_or(0)
    }

    /// Number of distinct TSVD points executed.
    pub fn sites_covered(&self) -> usize {
        self.coverage_shards.iter().map(|s| s.read().len()).sum()
    }

    /// Number of TSVD points that ever ran in a concurrent phase.
    ///
    /// Sites with `hits > 0` but `concurrent_hits == 0` are the "blind
    /// spots" the paper's coverage report surfaces: code only ever tested
    /// sequentially.
    pub fn sites_covered_concurrently(&self) -> usize {
        self.coverage_shards
            .iter()
            .map(|s| {
                s.read()
                    .values()
                    .filter(|c| c.concurrent_hits.load(Ordering::Relaxed) > 0)
                    .count()
            })
            .sum()
    }

    /// Per-site coverage snapshot.
    pub fn coverage(&self) -> Vec<(SiteId, SiteCoverage)> {
        self.coverage_shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .iter()
                    .map(|(&site, cell)| {
                        (
                            site,
                            SiteCoverage {
                                hits: cell.hits.load(Ordering::Relaxed),
                                concurrent_hits: cell.concurrent_hits.load(Ordering::Relaxed),
                            },
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "stats_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn call_and_coverage_counting() {
        let s = RuntimeStats::new();
        s.record_call(site(1), false);
        s.record_call(site(1), true);
        s.record_call(site(2), false);
        assert_eq!(s.on_calls(), 3);
        assert_eq!(s.sites_covered(), 2);
        assert_eq!(s.sites_covered_concurrently(), 1);
    }

    #[test]
    fn delay_accounting_per_context() {
        let s = RuntimeStats::new();
        s.record_delay(ContextId(1), 100);
        s.record_delay(ContextId(1), 50);
        s.record_delay(ContextId(2), 10);
        assert_eq!(s.delays_injected(), 3);
        assert_eq!(s.delay_total_ns(), 160);
        assert_eq!(s.context_delay_ns(ContextId(1)), 150);
        assert_eq!(s.context_delay_ns(ContextId(2)), 10);
        assert_eq!(s.context_delay_ns(ContextId(3)), 0);
    }

    #[test]
    fn catch_and_sync_counters() {
        let s = RuntimeStats::new();
        s.record_catch();
        s.record_sync();
        s.record_sync();
        assert_eq!(s.traps_caught(), 1);
        assert_eq!(s.sync_events(), 2);
    }

    #[test]
    fn batching_counters_accumulate() {
        let s = RuntimeStats::new();
        s.record_drain_request();
        s.record_batch_flush(3);
        s.record_batch_flush(5);
        s.record_thread_exit_flush();
        assert_eq!(s.drain_requests(), 1);
        assert_eq!(s.batch_flushes(), 2);
        assert_eq!(s.batch_events_flushed(), 8);
        assert_eq!(s.thread_exit_flushes(), 1);
    }

    #[test]
    fn coverage_snapshot_merges_shards_exactly() {
        // Exact counts across many sites: sharding must never drop or
        // double-count a hit.
        let s = RuntimeStats::with_shards(4);
        for round in 0..3 {
            for n in 100..164 {
                s.record_call(site(n), round == 0);
            }
        }
        assert_eq!(s.sites_covered(), 64);
        assert_eq!(s.sites_covered_concurrently(), 64);
        let cov = s.coverage();
        assert_eq!(cov.len(), 64);
        for (_, c) in cov {
            assert_eq!(c.hits, 3);
            assert_eq!(c.concurrent_hits, 1);
        }
    }
}
