//! Access triples: the only thing the detector observes about the program.
//!
//! The paper's `OnCall(thread_id, obj_id, op_id)` interface (Fig. 5) carries
//! exactly this data. `op_id` is the static program location ([`SiteId`]),
//! and each operation is classified as a read or a write by the thread-safety
//! contract of the instrumented API (§2.2).

use crate::context::ContextId;
use crate::site::SiteId;

/// Identity of the object being accessed.
///
/// Instrumented collections use the address of their interior storage, which
/// plays the role of the paper's `GetHashCode()` object identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// Read/write classification of an operation under the thread-safety
/// contract.
///
/// Two concurrent operations violate the contract iff they target the same
/// object from different threads and at least one of them is a [`Write`]
/// (§2.2).
///
/// [`Write`]: OpKind::Write
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An operation the contract allows concurrently with other reads.
    Read,
    /// An operation requiring exclusive access.
    Write,
}

impl OpKind {
    /// Returns `true` if operations of kind `self` and `other` conflict.
    pub fn conflicts_with(self, other: OpKind) -> bool {
        matches!(self, OpKind::Write) || matches!(other, OpKind::Write)
    }
}

/// One dynamic access: a thread-unsafe API call observed by the runtime.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// The execution context (thread or task) making the call.
    pub context: ContextId,
    /// The object being accessed.
    pub obj: ObjId,
    /// The static program location of the call (the TSVD point).
    pub site: SiteId,
    /// Human-readable operation name, e.g. `"Dictionary.add"`.
    pub op_name: &'static str,
    /// Read/write classification of the operation.
    pub kind: OpKind,
    /// Monotonic timestamp of the call, in nanoseconds.
    pub time_ns: u64,
}

impl Access {
    /// Returns `true` if `self` and `other` form a thread-safety violation
    /// candidate: different contexts, same object, conflicting kinds.
    ///
    /// This is the paper's conflict predicate: `tid1 != tid2`,
    /// `obj1 == obj2`, and at least one operation is a write.
    pub fn conflicts_with(&self, other: &Access) -> bool {
        self.context != other.context
            && self.obj == other.obj
            && self.kind.conflicts_with(other.kind)
    }
}

/// One classified thread-unsafe API.
///
/// The paper ships TSVD with a list of thread-unsafe .NET classes and the
/// read/write classification of every method, "so a developer can use TSVD
/// without additional configuration" (§4). This registry is that list for
/// the instrumented collection classes: it is the *single source of truth*
/// consumed by the dynamic side (the `tsvd-collections` wrappers assert
/// their reported operations against it) and the static side (the
/// `tsvd-analyze` front end classifies call sites with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApiEntry {
    /// Fully qualified operation name, e.g. `"Dictionary.add"`.
    pub name: &'static str,
    /// Read/write classification under the thread-safety contract.
    pub kind: OpKind,
}

macro_rules! api_table {
    ($($class:literal => { W: [$($w:literal),* $(,)?], R: [$($r:literal),* $(,)?] }),* $(,)?) => {
        /// Every classified API, grouped write-then-read per class.
        pub const API_TABLE: &[ApiEntry] = &[
            $(
                $(ApiEntry { name: concat!($class, ".", $w), kind: OpKind::Write },)*
                $(ApiEntry { name: concat!($class, ".", $r), kind: OpKind::Read },)*
            )*
        ];
    };
}

api_table! {
    "Dictionary" => {
        W: ["add", "set", "remove", "clear"],
        R: ["get", "contains_key", "len", "is_empty", "keys", "values"]
    },
    "List" => {
        W: ["add", "insert", "remove_at", "set", "clear", "sort"],
        R: ["get", "len", "is_empty", "to_vec", "contains"]
    },
    "HashSet" => {
        W: ["add", "remove", "clear"],
        R: ["contains", "len", "is_empty", "to_vec"]
    },
    "Queue" => {
        W: ["enqueue", "dequeue", "clear"],
        R: ["peek", "len", "is_empty"]
    },
    "Stack" => {
        W: ["push", "pop", "clear"],
        R: ["peek", "len", "is_empty"]
    },
    "SortedList" => {
        W: ["add", "set", "remove", "clear"],
        R: ["get", "contains_key", "first", "last", "len", "is_empty"]
    },
    "LinkedDeque" => {
        W: ["push_front", "push_back", "pop_front", "pop_back", "clear"],
        R: ["front", "back", "len", "is_empty"]
    },
    "StringBuilder" => {
        W: ["append", "append_char", "insert", "clear"],
        R: ["to_string", "len", "is_empty"]
    },
    "Cache" => {
        W: ["set_capacity", "put", "invalidate", "clear"],
        R: ["get", "contains_key", "len", "is_empty"]
    },
    "BitArray" => {
        W: ["resize", "set", "flip", "clear_all"],
        R: ["get", "count_ones", "capacity"]
    },
    "SortedSet" => {
        W: ["add", "remove", "clear"],
        R: ["contains", "min", "max", "len", "is_empty", "to_vec"]
    },
    "MultiMap" => {
        W: ["add", "remove_value", "remove_key", "clear"],
        R: ["get", "contains_key", "key_count", "value_count"]
    },
    "PriorityQueue" => {
        W: ["push", "pop", "clear"],
        R: ["peek", "len", "is_empty"]
    },
}

/// Looks up the classification of `op_name`, or `None` if the API is not in
/// the thread-unsafe list.
pub fn classify_op(op_name: &str) -> Option<OpKind> {
    API_TABLE.iter().find(|e| e.name == op_name).map(|e| e.kind)
}

/// Splits an operation name into `(class, method)`, e.g. `"Dictionary.add"`
/// into `("Dictionary", "add")`.
pub fn split_op(op_name: &str) -> Option<(&str, &str)> {
    op_name.split_once('.')
}

/// Number of write-classified APIs.
pub fn write_api_count() -> usize {
    API_TABLE.iter().filter(|e| e.kind == OpKind::Write).count()
}

/// Number of read-classified APIs.
pub fn read_api_count() -> usize {
    API_TABLE.iter().filter(|e| e.kind == OpKind::Read).count()
}

/// The distinct instrumented class names, sorted.
pub fn api_classes() -> Vec<&'static str> {
    let mut classes: Vec<&str> = API_TABLE
        .iter()
        .filter_map(|e| e.name.split('.').next())
        .collect();
    classes.sort_unstable();
    classes.dedup();
    classes
}

/// Number of distinct instrumented classes.
pub fn class_count() -> usize {
    api_classes().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(ctx: u64, obj: u64, kind: OpKind) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: crate::site!(),
            op_name: "test.op",
            kind,
            time_ns: 0,
        }
    }

    #[test]
    fn write_write_conflicts() {
        assert!(acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 7, OpKind::Write)));
    }

    #[test]
    fn read_write_conflicts_both_ways() {
        assert!(acc(1, 7, OpKind::Read).conflicts_with(&acc(2, 7, OpKind::Write)));
        assert!(acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 7, OpKind::Read)));
    }

    #[test]
    fn read_read_does_not_conflict() {
        assert!(!acc(1, 7, OpKind::Read).conflicts_with(&acc(2, 7, OpKind::Read)));
    }

    #[test]
    fn same_context_never_conflicts() {
        assert!(!acc(1, 7, OpKind::Write).conflicts_with(&acc(1, 7, OpKind::Write)));
    }

    #[test]
    fn different_objects_never_conflict() {
        assert!(!acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 8, OpKind::Write)));
    }

    #[test]
    fn api_table_shape() {
        assert_eq!(class_count(), 13);
        assert_eq!(write_api_count(), 50);
        assert_eq!(read_api_count(), 54);
        assert_eq!(API_TABLE.len(), 104);
    }

    #[test]
    fn classify_known_apis() {
        assert_eq!(classify_op("Dictionary.add"), Some(OpKind::Write));
        assert_eq!(classify_op("Dictionary.contains_key"), Some(OpKind::Read));
        assert_eq!(classify_op("List.sort"), Some(OpKind::Write));
        assert_eq!(classify_op("Cache.get"), Some(OpKind::Read));
    }

    #[test]
    fn classify_unknown_api() {
        assert_eq!(classify_op("ConcurrentDictionary.add"), None);
        assert_eq!(classify_op(""), None);
    }

    #[test]
    fn no_duplicate_entries() {
        let mut names: Vec<&str> = API_TABLE.iter().map(|e| e.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn split_op_splits_at_first_dot() {
        assert_eq!(split_op("Dictionary.add"), Some(("Dictionary", "add")));
        assert_eq!(split_op("nodot"), None);
    }
}
