//! Access triples: the only thing the detector observes about the program.
//!
//! The paper's `OnCall(thread_id, obj_id, op_id)` interface (Fig. 5) carries
//! exactly this data. `op_id` is the static program location ([`SiteId`]),
//! and each operation is classified as a read or a write by the thread-safety
//! contract of the instrumented API (§2.2).

use crate::context::ContextId;
use crate::site::SiteId;

/// Identity of the object being accessed.
///
/// Instrumented collections use the address of their interior storage, which
/// plays the role of the paper's `GetHashCode()` object identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u64);

/// Read/write classification of an operation under the thread-safety
/// contract.
///
/// Two concurrent operations violate the contract iff they target the same
/// object from different threads and at least one of them is a [`Write`]
/// (§2.2).
///
/// [`Write`]: OpKind::Write
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// An operation the contract allows concurrently with other reads.
    Read,
    /// An operation requiring exclusive access.
    Write,
}

impl OpKind {
    /// Returns `true` if operations of kind `self` and `other` conflict.
    pub fn conflicts_with(self, other: OpKind) -> bool {
        matches!(self, OpKind::Write) || matches!(other, OpKind::Write)
    }
}

/// One dynamic access: a thread-unsafe API call observed by the runtime.
#[derive(Debug, Clone, Copy)]
pub struct Access {
    /// The execution context (thread or task) making the call.
    pub context: ContextId,
    /// The object being accessed.
    pub obj: ObjId,
    /// The static program location of the call (the TSVD point).
    pub site: SiteId,
    /// Human-readable operation name, e.g. `"Dictionary.add"`.
    pub op_name: &'static str,
    /// Read/write classification of the operation.
    pub kind: OpKind,
    /// Monotonic timestamp of the call, in nanoseconds.
    pub time_ns: u64,
}

impl Access {
    /// Returns `true` if `self` and `other` form a thread-safety violation
    /// candidate: different contexts, same object, conflicting kinds.
    ///
    /// This is the paper's conflict predicate: `tid1 != tid2`,
    /// `obj1 == obj2`, and at least one operation is a write.
    pub fn conflicts_with(&self, other: &Access) -> bool {
        self.context != other.context
            && self.obj == other.obj
            && self.kind.conflicts_with(other.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(ctx: u64, obj: u64, kind: OpKind) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: crate::site!(),
            op_name: "test.op",
            kind,
            time_ns: 0,
        }
    }

    #[test]
    fn write_write_conflicts() {
        assert!(acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 7, OpKind::Write)));
    }

    #[test]
    fn read_write_conflicts_both_ways() {
        assert!(acc(1, 7, OpKind::Read).conflicts_with(&acc(2, 7, OpKind::Write)));
        assert!(acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 7, OpKind::Read)));
    }

    #[test]
    fn read_read_does_not_conflict() {
        assert!(!acc(1, 7, OpKind::Read).conflicts_with(&acc(2, 7, OpKind::Read)));
    }

    #[test]
    fn same_context_never_conflicts() {
        assert!(!acc(1, 7, OpKind::Write).conflicts_with(&acc(1, 7, OpKind::Write)));
    }

    #[test]
    fn different_objects_never_conflict() {
        assert!(!acc(1, 7, OpKind::Write).conflicts_with(&acc(2, 8, OpKind::Write)));
    }
}
