//! The delay watchdog: keeps injected delays from hanging the test.
//!
//! TSVD's delays are only safe if they can never turn a passing test into a
//! hung one. Budgets (§3.4) bound the *total* delay, but they cannot prevent
//! a *momentary* stall where every runnable pool thread is simultaneously
//! sleeping in an injected delay (or blocked in a join behind one) — the
//! delay-induced starvation that blocking synchronization makes possible.
//!
//! The watchdog is a per-runtime monitor thread, spawned lazily on the first
//! injected delay so passive and delay-free runs pay nothing. Every poll it
//! evaluates two conditions:
//!
//! 1. **Starvation** — at least one thread is sleeping in a delay and every
//!    registered pool worker is either delaying or blocked in a join. After
//!    the condition persists for `watchdog_grace_polls` consecutive polls,
//!    the oldest live trap is cancelled (its owner wakes early, uncaught).
//!    Repeated starvation (`watchdog_max_cancellations`) degrades the
//!    runtime to **passive monitoring**: no further delays are injected, but
//!    trap checking and near-miss tracking stay on.
//! 2. **Run deadline** — the runtime has been alive longer than
//!    `run_deadline_ns`. The watchdog degrades to passive immediately and
//!    cancels every live trap, so a wedged run terminates instead of
//!    holding the suite hostage.
//!
//! Pool workers register themselves via [`Watchdog::register_worker`] (a
//! thread-local mark + a counter) and report join-blocking through
//! [`Watchdog::note_blocked`]; the runtime wraps every injected sleep in a
//! [`DelayScope`]. All counters are plain atomics — the `OnCall` fast path
//! is untouched except for one relaxed load of the degraded flag.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::config::TsvdConfig;
use crate::trap::TrapTable;

thread_local! {
    /// `true` while the current thread is a registered pool worker.
    static IS_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns `true` if the current thread is a registered pool worker.
pub fn is_worker_thread() -> bool {
    IS_WORKER.with(Cell::get)
}

/// Why the watchdog degraded a runtime to passive monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// Starvation cancellations exceeded `watchdog_max_cancellations`.
    RepeatedStarvation,
    /// The runtime outlived `run_deadline_ns`.
    DeadlineExceeded,
    /// An explicit call to [`Watchdog::degrade`] (harness abandon).
    Abandoned,
}

struct WatchdogInner {
    enabled: bool,
    poll: Duration,
    run_deadline: Option<Duration>,
    grace_polls: u32,
    max_cancellations: u64,
    start: Instant,
    /// Registered runnable pool threads.
    workers: AtomicUsize,
    /// Registered workers currently blocked in a join wait.
    blocked_workers: AtomicUsize,
    /// Registered workers currently sleeping in an injected delay.
    delayed_workers: AtomicUsize,
    /// All threads (workers or not) sleeping in an injected delay.
    delayed_total: AtomicUsize,
    /// Traps cancelled by the monitor so far.
    cancellations: AtomicU64,
    /// Degrade reason, encoded: 0 = active, 1.. = DegradeReason + 1.
    degraded: AtomicUsize,
    /// Monitor spawned?
    started: AtomicBool,
    shutdown: Mutex<bool>,
    wake: Condvar,
    traps: Mutex<Weak<TrapTable>>,
}

impl WatchdogInner {
    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed) != 0
    }

    fn degrade(&self, reason: DegradeReason) {
        let code = match reason {
            DegradeReason::RepeatedStarvation => 1,
            DegradeReason::DeadlineExceeded => 2,
            DegradeReason::Abandoned => 3,
        };
        // First reason wins; later degrades keep the original diagnosis.
        let _ = self
            .degraded
            .compare_exchange(0, code, Ordering::SeqCst, Ordering::SeqCst);
    }

    fn degrade_reason(&self) -> Option<DegradeReason> {
        match self.degraded.load(Ordering::Relaxed) {
            1 => Some(DegradeReason::RepeatedStarvation),
            2 => Some(DegradeReason::DeadlineExceeded),
            3 => Some(DegradeReason::Abandoned),
            _ => None,
        }
    }

    /// The starvation predicate: someone is delaying, and no registered
    /// worker is free to run (all delaying or blocked in joins).
    fn starved(&self) -> bool {
        let workers = self.workers.load(Ordering::SeqCst);
        if workers == 0 {
            return false;
        }
        let delayed = self.delayed_total.load(Ordering::SeqCst);
        if delayed == 0 {
            return false;
        }
        let busy = self.delayed_workers.load(Ordering::SeqCst)
            + self.blocked_workers.load(Ordering::SeqCst);
        busy >= workers
    }
}

/// Per-runtime watchdog state plus the (lazily spawned) monitor thread.
pub struct Watchdog {
    inner: Arc<WatchdogInner>,
}

impl Watchdog {
    /// Builds watchdog state from `config` (the monitor thread starts
    /// lazily, on the first injected delay).
    pub(crate) fn new(config: &TsvdConfig) -> Watchdog {
        Watchdog {
            inner: Arc::new(WatchdogInner {
                enabled: config.watchdog,
                poll: Duration::from_nanos(config.watchdog_poll_ns.max(1)),
                run_deadline: (config.run_deadline_ns != u64::MAX)
                    .then(|| Duration::from_nanos(config.run_deadline_ns)),
                grace_polls: config.watchdog_grace_polls.max(1),
                max_cancellations: config.watchdog_max_cancellations,
                start: Instant::now(),
                workers: AtomicUsize::new(0),
                blocked_workers: AtomicUsize::new(0),
                delayed_workers: AtomicUsize::new(0),
                delayed_total: AtomicUsize::new(0),
                cancellations: AtomicU64::new(0),
                degraded: AtomicUsize::new(0),
                started: AtomicBool::new(false),
                shutdown: Mutex::new(false),
                wake: Condvar::new(),
                traps: Mutex::new(Weak::new()),
            }),
        }
    }

    /// Registers the current thread as a runnable pool worker. The
    /// registration is RAII: dropping it deregisters the worker.
    pub fn register_worker(&self) -> WorkerRegistration {
        self.inner.workers.fetch_add(1, Ordering::SeqCst);
        let was_worker = IS_WORKER.with(|w| w.replace(true));
        WorkerRegistration {
            inner: self.inner.clone(),
            was_worker,
        }
    }

    /// Marks the current thread blocked in a join wait (workers only;
    /// non-worker threads are ignored — they don't starve the pool).
    pub fn note_blocked(&self) {
        if is_worker_thread() {
            self.inner.blocked_workers.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Clears the mark set by [`Watchdog::note_blocked`].
    pub fn note_unblocked(&self) {
        if is_worker_thread() {
            self.inner.blocked_workers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Marks the current thread as sleeping in an injected delay for the
    /// scope of the returned guard, and makes sure the monitor is running.
    pub(crate) fn delay_scope(&self, traps: &Arc<TrapTable>) -> DelayScope {
        self.ensure_started(traps);
        let worker = is_worker_thread();
        self.inner.delayed_total.fetch_add(1, Ordering::SeqCst);
        if worker {
            self.inner.delayed_workers.fetch_add(1, Ordering::SeqCst);
        }
        DelayScope {
            inner: self.inner.clone(),
            worker,
        }
    }

    /// `true` once the runtime has degraded to passive monitoring (no more
    /// delay injection; detection stays on).
    pub fn is_degraded(&self) -> bool {
        self.inner.is_degraded()
    }

    /// Why the runtime degraded, if it has.
    pub fn degrade_reason(&self) -> Option<DegradeReason> {
        self.inner.degrade_reason()
    }

    /// Degrades the runtime to passive monitoring and wakes every sleeping
    /// trap owner. Used by the harness to abandon a timed-out module.
    pub fn degrade(&self, traps: &TrapTable) {
        self.inner.degrade(DegradeReason::Abandoned);
        let n = traps.cancel_all();
        self.inner
            .cancellations
            .fetch_add(n as u64, Ordering::Relaxed);
    }

    /// Traps cancelled by the watchdog so far.
    pub fn cancellations(&self) -> u64 {
        self.inner.cancellations.load(Ordering::Relaxed)
    }

    /// Registered pool workers right now (diagnostics).
    pub fn workers(&self) -> usize {
        self.inner.workers.load(Ordering::SeqCst)
    }

    /// Threads currently sleeping in an injected delay (diagnostics).
    pub fn delayed(&self) -> usize {
        self.inner.delayed_total.load(Ordering::SeqCst)
    }

    /// Spawns the monitor thread once (no-op when disabled).
    fn ensure_started(&self, traps: &Arc<TrapTable>) {
        if !self.inner.enabled || self.inner.started.swap(true, Ordering::SeqCst) {
            return;
        }
        *self.inner.traps.lock() = Arc::downgrade(traps);
        let inner = self.inner.clone();
        if std::thread::Builder::new()
            .name("tsvd-watchdog".into())
            .spawn(move || monitor(inner))
            .is_err()
        {
            // Out of threads: run unguarded rather than failing the test.
            self.inner.started.store(false, Ordering::SeqCst);
        }
    }

    /// Stops the monitor thread (called from the runtime's `Drop`).
    pub(crate) fn shutdown(&self) {
        let mut sd = self.inner.shutdown.lock();
        *sd = true;
        self.inner.wake.notify_all();
    }
}

fn monitor(inner: Arc<WatchdogInner>) {
    let mut starved_polls = 0u32;
    loop {
        {
            let mut sd = inner.shutdown.lock();
            if *sd {
                return;
            }
            inner.wake.wait_for(&mut sd, inner.poll);
            if *sd {
                return;
            }
        }
        // The table is held weakly: if the runtime is gone, so are we.
        let Some(traps) = inner.traps.lock().upgrade() else {
            return;
        };

        if let Some(deadline) = inner.run_deadline {
            if !inner.is_degraded() && inner.start.elapsed() >= deadline {
                inner.degrade(DegradeReason::DeadlineExceeded);
            }
        }

        if inner.is_degraded() {
            // Passive mode admits no new traps; sweep out any stragglers
            // (an owner may have passed the degraded check concurrently)
            // and retire once the table is empty.
            let n = traps.cancel_all();
            inner.cancellations.fetch_add(n as u64, Ordering::Relaxed);
            if traps.live_count() == 0 {
                return;
            }
            continue;
        }

        if inner.starved() {
            starved_polls += 1;
            if starved_polls >= inner.grace_polls {
                starved_polls = 0;
                let woken = traps.cancel_oldest(1) as u64;
                if woken > 0 {
                    let total = inner.cancellations.fetch_add(woken, Ordering::Relaxed) + woken;
                    if total >= inner.max_cancellations {
                        inner.degrade(DegradeReason::RepeatedStarvation);
                    }
                }
            }
        } else {
            starved_polls = 0;
        }
    }
}

/// RAII registration of a pool worker thread (see
/// [`Watchdog::register_worker`]).
pub struct WorkerRegistration {
    inner: Arc<WatchdogInner>,
    was_worker: bool,
}

impl Drop for WorkerRegistration {
    fn drop(&mut self) {
        self.inner.workers.fetch_sub(1, Ordering::SeqCst);
        let was = self.was_worker;
        IS_WORKER.with(|w| w.set(was));
    }
}

/// RAII mark of one thread sleeping in an injected delay.
pub(crate) struct DelayScope {
    inner: Arc<WatchdogInner>,
    worker: bool,
}

impl Drop for DelayScope {
    fn drop(&mut self) {
        self.inner.delayed_total.fetch_sub(1, Ordering::SeqCst);
        if self.worker {
            self.inner.delayed_workers.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, ObjId, OpKind};
    use crate::context::ContextId;

    fn cfg() -> TsvdConfig {
        let mut c = TsvdConfig::for_testing();
        c.watchdog_poll_ns = 1_000_000; // 1 ms polls for fast tests.
        c
    }

    fn acc(ctx: u64, obj: u64) -> Access {
        Access {
            context: ContextId(ctx),
            obj: ObjId(obj),
            site: crate::site!(),
            op_name: "t.op",
            kind: OpKind::Write,
            time_ns: 0,
        }
    }

    #[test]
    fn worker_registration_is_raii_and_thread_local() {
        let wd = Watchdog::new(&cfg());
        assert_eq!(wd.workers(), 0);
        assert!(!is_worker_thread());
        {
            let _reg = wd.register_worker();
            assert_eq!(wd.workers(), 1);
            assert!(is_worker_thread());
        }
        assert_eq!(wd.workers(), 0);
        assert!(!is_worker_thread());
    }

    #[test]
    fn starvation_requires_all_workers_busy() {
        let wd = Watchdog::new(&cfg());
        let traps = Arc::new(TrapTable::new());
        // Two workers on other threads, only one delayed: not starved.
        let inner = wd.inner.clone();
        inner.workers.store(2, Ordering::SeqCst);
        inner.delayed_total.store(1, Ordering::SeqCst);
        inner.delayed_workers.store(1, Ordering::SeqCst);
        assert!(!inner.starved());
        // Second worker blocked in a join: starved.
        inner.blocked_workers.store(1, Ordering::SeqCst);
        assert!(inner.starved());
        // A delaying non-worker alone cannot starve the pool.
        inner.delayed_workers.store(0, Ordering::SeqCst);
        inner.blocked_workers.store(2, Ordering::SeqCst);
        assert!(inner.starved(), "all workers blocked + a delayer counts");
        inner.delayed_total.store(0, Ordering::SeqCst);
        assert!(!inner.starved(), "no delay in flight, nothing to cancel");
        drop(traps);
    }

    #[test]
    fn deadline_degrades_and_cancels_sleepers() {
        let mut c = cfg();
        c.run_deadline_ns = 5_000_000; // 5 ms lifetime.
        let wd = Watchdog::new(&c);
        let traps = Arc::new(TrapTable::new());
        let trap = traps.set_trap(acc(1, 7), None);
        let scope = wd.delay_scope(&traps); // Starts the monitor.
        let start = Instant::now();
        let caught = trap.sleep(Duration::from_secs(30));
        drop(scope);
        traps.clear_trap(&trap);
        assert!(!caught);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "deadline must cut a 30 s sleep short"
        );
        assert!(wd.is_degraded());
        assert_eq!(wd.degrade_reason(), Some(DegradeReason::DeadlineExceeded));
        // The monitor bumps its cancellation counter *after* waking the
        // sleeper, so give it a moment to land.
        let wait = Instant::now();
        while wd.cancellations() == 0 && wait.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(wd.cancellations() >= 1);
        wd.shutdown();
    }

    #[test]
    fn starvation_cancels_the_delay_when_all_workers_sleep() {
        let mut c = cfg();
        c.watchdog_grace_polls = 2;
        let wd = Arc::new(Watchdog::new(&c));
        let traps = Arc::new(TrapTable::new());
        // One registered worker, and that worker delays: starvation.
        let (wd2, traps2) = (wd.clone(), traps.clone());
        let worker = std::thread::spawn(move || {
            let _reg = wd2.register_worker();
            let trap = traps2.set_trap(acc(1, 7), None);
            let scope = wd2.delay_scope(&traps2);
            let start = Instant::now();
            let caught = trap.sleep(Duration::from_secs(30));
            drop(scope);
            traps2.clear_trap(&trap);
            (caught, start.elapsed())
        });
        let (caught, slept) = worker.join().expect("worker no panic");
        assert!(!caught);
        assert!(
            slept < Duration::from_secs(5),
            "watchdog must cancel a starving delay, slept {slept:?}"
        );
        let wait = Instant::now();
        while wd.cancellations() == 0 && wait.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(wd.cancellations() >= 1);
        wd.shutdown();
    }

    #[test]
    fn repeated_starvation_degrades_to_passive() {
        let mut c = cfg();
        c.watchdog_grace_polls = 1;
        c.watchdog_max_cancellations = 2;
        let wd = Arc::new(Watchdog::new(&c));
        let traps = Arc::new(TrapTable::new());
        for round in 0..3 {
            if wd.is_degraded() {
                break;
            }
            let (wd2, traps2) = (wd.clone(), traps.clone());
            let worker = std::thread::spawn(move || {
                let _reg = wd2.register_worker();
                let trap = traps2.set_trap(acc(round, 7), None);
                let scope = wd2.delay_scope(&traps2);
                trap.sleep(Duration::from_secs(10));
                drop(scope);
                traps2.clear_trap(&trap);
            });
            worker.join().expect("worker no panic");
        }
        let wait = Instant::now();
        while !wd.is_degraded() && wait.elapsed() < Duration::from_secs(2) {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(wd.is_degraded(), "two cancellations must trip passive mode");
        assert_eq!(wd.degrade_reason(), Some(DegradeReason::RepeatedStarvation));
        wd.shutdown();
    }

    #[test]
    fn disabled_watchdog_never_spawns_or_cancels() {
        let mut c = cfg();
        c.watchdog = false;
        c.run_deadline_ns = 1; // Would fire instantly if enabled.
        let wd = Watchdog::new(&c);
        let traps = Arc::new(TrapTable::new());
        let trap = traps.set_trap(acc(1, 7), None);
        let scope = wd.delay_scope(&traps);
        let caught = trap.sleep(Duration::from_millis(20));
        drop(scope);
        traps.clear_trap(&trap);
        assert!(!caught);
        assert!(!wd.is_degraded());
        assert_eq!(wd.cancellations(), 0);
    }
}
