//! TSVD: thread-safety-violation detection via active delay injection.
//!
//! This crate implements the detection algorithms of *"Efficient Scalable
//! Thread-Safety-Violation Detection"* (SOSP 2019):
//!
//! - the **trap framework** shared by every variant (Fig. 5 of the paper):
//!   on each call into a thread-unsafe API, check whether a conflicting trap
//!   is set, optionally set a trap and delay, and report a violation when two
//!   threads are caught *red-handed* making conflicting calls on one object;
//! - the **TSVD planner** (§3.4): near-miss tracking, concurrent-phase
//!   inference, happens-before *inference* from observed delay propagation,
//!   probability decay, and trap-set persistence across runs;
//! - the comparison variants (§3.2–§3.5): [`strategy::DynamicRandom`],
//!   [`strategy::StaticRandom`] (the DataCollider emulation), and
//!   [`strategy::TsvdHb`] (vector-clock happens-before analysis).
//!
//! The only interface between an instrumented program and the detector is
//! [`Runtime::on_call`] with the access triple `(thread, object, operation)`
//! — exactly the paper's `OnCall` — plus [`Runtime::on_sync`], which only the
//! TSVD-HB variant consumes.
//!
//! # Examples
//!
//! ```
//! use tsvd_core::{OpKind, Runtime, TsvdConfig};
//!
//! let rt = Runtime::tsvd(TsvdConfig::for_testing());
//! // An instrumented collection wrapper would make this call internally.
//! rt.on_call(tsvd_core::ObjId(0x1000), tsvd_core::site!(), "Dictionary.add", OpKind::Write);
//! assert_eq!(rt.reports().unique_bugs(), 0);
//! ```

#![warn(missing_docs)]

pub mod access;
pub mod audit;
pub mod batch;
pub mod clock;
pub mod config;
pub mod context;
pub mod decay;
pub mod epoch;
pub mod gate;
pub mod hb_infer;
pub mod near_miss;
pub mod phase;
pub mod report;
pub mod rng;
pub mod runtime;
pub mod sink;
pub mod site;
pub mod stats;
pub mod strategy;
pub mod suggest;
pub mod trap;
pub mod trap_file;
pub mod trapset;
pub mod watchdog;

pub use access::{classify_op, Access, ApiEntry, ObjId, OpKind, API_TABLE};
pub use clock::{now_ns, Clock, ManualClock, RealClock};
pub use config::TsvdConfig;
pub use context::ContextId;
pub use gate::HotGate;
pub use report::{ReportSink, Violation};
pub use runtime::Runtime;
pub use sink::{DurableSink, ViolationRecord, VIOLATION_SCHEMA_VERSION};
pub use site::SiteId;
pub use strategy::{Strategy, SyncEvent};
pub use suggest::{SuggestionRecord, SUGGESTION_SCHEMA_VERSION};
pub use trap_file::{PairOrigin, TrapFileData};
pub use watchdog::{DegradeReason, Watchdog, WorkerRegistration};
