//! The TSVD runtime: the `OnCall` entry point and the trap framework.
//!
//! One [`Runtime`] instance corresponds to one instrumented test execution.
//! Instrumented collections call [`Runtime::on_call`] right before every
//! thread-unsafe operation; the runtime executes the trap mechanism of
//! Fig. 5 — check for conflicting traps, consult the strategy's
//! `should_delay`, set a trap, sleep, clear the trap — and reports every
//! collision as a [`Violation`]. The task substrate feeds fork/join/lock
//! events through [`Runtime::on_sync`] (consumed only by TSVD-HB).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

use crate::access::{Access, ObjId, OpKind};
use crate::audit;
use crate::batch::{self, Offer};
use crate::clock::now_ns;
use crate::config::TsvdConfig;
use crate::context;
use crate::gate::HotGate;
use crate::phase::{ContextRecency, PhaseBuffer};
use crate::report::{Party, ReportSink, Violation};
use crate::sink::DurableSink;
use crate::site::SiteId;
use crate::stats::RuntimeStats;
use crate::strategy::{DynamicRandom, Noop, StaticRandom, Strategy, SyncEvent, Tsvd, TsvdHb};
use crate::trap::{TrapGuard, TrapTable};
use crate::trap_file::TrapFileData;
use crate::watchdog::{Watchdog, WorkerRegistration};

/// A detection runtime: strategy + trap table + report sink + statistics.
pub struct Runtime {
    strategy: Box<dyn Strategy>,
    traps: Arc<TrapTable>,
    sink: ReportSink,
    stats: RuntimeStats,
    config: TsvdConfig,
    /// Phase buffer used only for coverage statistics (the TSVD strategy
    /// keeps its own for planning).
    coverage_phase: PhaseBuffer,
    /// Time-based coverage concurrency estimate for *batched* events (see
    /// [`crate::phase::ContextRecency`]).
    coverage_recency: ContextRecency,
    /// Single-word quiescence gate read by the batched fast path.
    gate: Arc<HotGate>,
    /// `true` iff `batch_capacity > 0` and the strategy opted in.
    batching: bool,
    /// Self-reference handed to thread-local buffers so their exit
    /// destructors can flush back into this runtime.
    weak_self: Weak<Runtime>,
    run_delay_ns: AtomicU64,
    /// Liveness monitor for injected delays (see [`crate::watchdog`]).
    watchdog: Watchdog,
    /// Write-ahead violation log, when configured.
    durable: Option<DurableSink>,
    /// Opt-in event tracing to stderr (`TSVD_TRACE=1`).
    trace: bool,
}

impl Runtime {
    /// Creates a runtime with an explicit strategy.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`TsvdConfig::validate`]; an invalid
    /// configuration would silently disable detection.
    pub fn new(config: TsvdConfig, strategy: Box<dyn Strategy>) -> Arc<Runtime> {
        if let Err(msg) = config.validate() {
            panic!("invalid TsvdConfig: {msg}");
        }
        let durable = config.durable_sink.as_ref().and_then(|path| {
            match DurableSink::create(path, config.durable_sink_fsync) {
                Ok(sink) => Some(sink),
                Err(e) => {
                    // A missing log must not turn detection off entirely.
                    eprintln!(
                        "tsvd: durable sink {} unavailable ({e}); running without it",
                        path.display()
                    );
                    None
                }
            }
        });
        // Gate wiring: every structure whose armed state must close the
        // zero-trap fast path mirrors itself into one shared activity word.
        let gate = Arc::new(HotGate::new());
        strategy.attach_gate(&gate);
        let traps = Arc::new(TrapTable::with_shards(config.trap_shards));
        traps.attach_gate(gate.clone());
        let batching = config.batch_capacity > 0 && strategy.supports_batching();
        Arc::new_cyclic(|weak| Runtime {
            strategy,
            traps,
            sink: ReportSink::new(),
            stats: RuntimeStats::with_shards(config.stats_shards),
            coverage_phase: PhaseBuffer::new(config.phase_buffer),
            coverage_recency: ContextRecency::new(config.phase_buffer, config.near_miss_window_ns),
            gate,
            batching,
            weak_self: weak.clone(),
            watchdog: Watchdog::new(&config),
            durable,
            config,
            run_delay_ns: AtomicU64::new(0),
            trace: std::env::var_os("TSVD_TRACE").is_some_and(|v| v == "1"),
        })
    }

    /// Creates a runtime with the TSVD strategy (§3.4).
    pub fn tsvd(config: TsvdConfig) -> Arc<Runtime> {
        let s = Box::new(Tsvd::new(&config));
        Self::new(config, s)
    }

    /// Creates a runtime with the TSVD-HB strategy (§3.5).
    pub fn tsvd_hb(config: TsvdConfig) -> Arc<Runtime> {
        let s = Box::new(TsvdHb::new(&config));
        Self::new(config, s)
    }

    /// Creates a runtime with the DynamicRandom strategy (§3.2).
    pub fn dynamic_random(config: TsvdConfig) -> Arc<Runtime> {
        let s = Box::new(DynamicRandom::new(&config));
        Self::new(config, s)
    }

    /// Creates a runtime with the StaticRandom/DataCollider strategy (§3.3).
    pub fn static_random(config: TsvdConfig) -> Arc<Runtime> {
        let s = Box::new(StaticRandom::new(&config));
        Self::new(config, s)
    }

    /// Creates a passive runtime (instrumentation only, no delays).
    pub fn noop(config: TsvdConfig) -> Arc<Runtime> {
        Self::new(config, Box::new(Noop))
    }

    /// Creates a focused-reproduction runtime that hunts exactly `pair`
    /// (§5.2 bug validation; delays are `reproduce_factor ×` longer than
    /// normal so one re-run usually re-triggers the violation).
    pub fn focused(
        config: TsvdConfig,
        pair: crate::near_miss::SitePair,
        reproduce_factor: u32,
    ) -> Arc<Runtime> {
        let s = Box::new(crate::strategy::Focused::new(
            &config,
            pair,
            reproduce_factor,
        ));
        Self::new(config, s)
    }

    /// The paper's `OnCall`: invoked right before a thread-unsafe operation.
    ///
    /// `site` is the static program location of the call (instrumented
    /// wrappers are `#[track_caller]` and pass their caller's position),
    /// `op_name` a human-readable operation name, and `kind` its read/write
    /// classification under the thread-safety contract.
    pub fn on_call(&self, obj: ObjId, site: SiteId, op_name: &'static str, kind: OpKind) {
        let access = Access {
            context: context::current(),
            obj,
            site,
            op_name,
            kind,
            time_ns: now_ns(),
        };

        // Zero-trap fast path: while the gate is quiescent (no trap live,
        // no pair armed, no drain pending) the access is captured in a
        // thread-local buffer — one relaxed atomic load, no lock, no shared
        // write — and analyzed at the next flush point.
        if self.batching && batch::offer(self, &access) == Offer::Buffered {
            return;
        }

        let concurrent = self.coverage_phase.record_and_check(access.context);
        self.stats.record_call(site, concurrent);

        if self.trace {
            eprintln!(
                "[tsvd {}ns] call {} {:?} obj={:?} {} ({})",
                access.time_ns,
                access.context,
                access.kind,
                access.obj,
                access.site,
                access.op_name
            );
        }

        // check_for_trap: are we colliding with a delayed thread?
        for trap in self.traps.check_for_trap(&access) {
            self.stats.record_catch();
            let violation = Violation {
                trapped: Party {
                    site: trap.access.site,
                    context: trap.access.context,
                    op_name: trap.access.op_name,
                    kind: trap.access.kind,
                    stack: trap.stack.clone(),
                },
                hitter: Party {
                    site: access.site,
                    context: access.context,
                    op_name: access.op_name,
                    kind: access.kind,
                    stack: self.capture_stack(),
                },
                obj: access.obj,
                time_ns: access.time_ns,
            };
            // Write-ahead: the durable record lands before the in-memory
            // report, so a crash right after the catch still preserves it.
            if let Some(durable) = &self.durable {
                if let Err(e) = durable.append(&violation) {
                    eprintln!("tsvd: durable sink append failed: {e}");
                }
            }
            self.strategy.on_violation(violation.pair());
            self.sink.report(violation);
        }

        // should_delay: the strategy decides where and when. The strategy
        // always sees the access (near-miss and HB state keep learning),
        // but a degraded runtime never injects the delay.
        if let Some(delay_ns) = self.strategy.on_access(&access) {
            if self.watchdog.is_degraded() {
                if self.trace {
                    eprintln!(
                        "[tsvd {}ns] delay suppressed (passive mode) at {}",
                        access.time_ns, access.site
                    );
                }
            } else if self.delay_budget_allows(access.context, delay_ns) {
                // Force-drain: bump the gate's drain epoch *before* the trap
                // goes live, so every thread still buffering flushes its
                // pre-arm observations at its next touch point — even if the
                // trap is long gone by then.
                if self.batching {
                    self.gate.request_drain();
                    self.stats.record_drain_request();
                }
                // RAII from here: the guard clears the trap and restores the
                // live count even if anything below unwinds; the scope keeps
                // the watchdog's delayed counters balanced the same way.
                let entry = self.traps.set_trap(access, self.capture_stack());
                let guard = TrapGuard::new(&self.traps, entry);
                let _delay_scope = self.watchdog.delay_scope(&self.traps);
                if self.trace {
                    eprintln!(
                        "[tsvd {}ns] trap set {} {:?} obj={:?} {} for {}ns",
                        access.time_ns,
                        access.context,
                        access.kind,
                        access.obj,
                        access.site,
                        delay_ns
                    );
                }
                let start_ns = now_ns();
                let caught = guard.entry().sleep(Duration::from_nanos(delay_ns));
                drop(guard); // Clear the trap before bookkeeping.
                let end_ns = now_ns();
                let slept = end_ns.saturating_sub(start_ns);
                self.stats.record_delay(access.context, slept);
                audit::note_shared_write();
                self.run_delay_ns.fetch_add(slept, Ordering::Relaxed);
                self.strategy
                    .on_delay_complete(&access, start_ns, end_ns, caught);
                if self.trace {
                    eprintln!(
                        "[tsvd {end_ns}ns] trap end {} {} caught={caught}",
                        access.context, access.site
                    );
                }
            } else if self.trace {
                eprintln!(
                    "[tsvd {}ns] delay blocked by budget at {}",
                    access.time_ns, access.site
                );
            }
        }
    }

    /// Reports a synchronization event (fork/join/lock). TSVD ignores these
    /// by design; TSVD-HB builds its vector clocks from them.
    ///
    /// Synchronization is a flush point: buffered accesses are delivered
    /// first, so ordering evidence never arrives ahead of the accesses that
    /// preceded it on this thread.
    pub fn on_sync(&self, event: SyncEvent) {
        if self.batching {
            batch::flush_current(self);
        }
        self.stats.record_sync();
        self.strategy.on_sync(&event);
    }

    /// Flushes the calling thread's local event buffer into the shared
    /// analysis structures. Pool workers call this before idling or
    /// exiting; it is a no-op when batching is off or nothing is buffered.
    pub fn flush_thread_events(&self) {
        if self.batching {
            batch::flush_current(self);
        }
    }

    /// Delivers a drained thread-local buffer: coverage and statistics for
    /// every event, then the strategy's batch replay.
    pub(crate) fn apply_batch(&self, events: &[Access], thread_exit: bool) {
        self.stats.record_batch_flush(events.len() as u64);
        if thread_exit {
            self.stats.record_thread_exit_flush();
        }
        self.stats.record_calls_bulk(events.len() as u64);
        for access in events {
            let concurrent = self
                .coverage_recency
                .note_and_check(access.context, access.time_ns);
            self.stats.record_coverage(access.site, concurrent);
        }
        self.strategy.on_batch(events);
    }

    /// The runtime's quiescence gate (read by the batched fast path).
    pub(crate) fn gate(&self) -> &HotGate {
        &self.gate
    }

    /// Capacity of each thread-local event buffer.
    pub(crate) fn batch_capacity(&self) -> usize {
        self.config.batch_capacity
    }

    /// A weak self-reference for thread-local buffers.
    pub(crate) fn weak_self(&self) -> Weak<Runtime> {
        self.weak_self.clone()
    }

    /// `true` when the thread-local batching fast path is active.
    pub fn is_batching(&self) -> bool {
        self.batching
    }

    /// Events currently buffered on the *calling thread* for this runtime
    /// (tests and diagnostics).
    pub fn thread_buffered_events(&self) -> usize {
        if self.batching {
            batch::buffered_len(self)
        } else {
            0
        }
    }

    fn delay_budget_allows(&self, ctx: context::ContextId, delay_ns: u64) -> bool {
        if self.run_delay_ns.load(Ordering::Relaxed) + delay_ns > self.config.max_delay_per_run_ns {
            return false;
        }
        self.stats.context_delay_ns(ctx) + delay_ns <= self.config.max_delay_per_context_ns
    }

    fn capture_stack(&self) -> Option<Arc<str>> {
        if self.config.capture_stacks {
            let bt = std::backtrace::Backtrace::force_capture();
            Some(Arc::from(bt.to_string().as_str()))
        } else {
            None
        }
    }

    /// The violation reports collected so far.
    pub fn reports(&self) -> &ReportSink {
        &self.sink
    }

    /// Runtime counters (delays, coverage, ...).
    pub fn stats(&self) -> &RuntimeStats {
        &self.stats
    }

    /// The active configuration.
    pub fn config(&self) -> &TsvdConfig {
        &self.config
    }

    /// The strategy's short name.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Approximate bytes of tracking state the strategy retains.
    pub fn strategy_memory_bytes(&self) -> usize {
        self.strategy.memory_bytes()
    }

    /// Writes the machine-readable bug report to `path` (pretty JSON) —
    /// the analog of the deployed tool's report log (§4).
    pub fn write_report(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.sink.export().save(path)
    }

    /// Exports the strategy's persistent trap state, if it keeps any.
    pub fn export_trap_file(&self) -> Option<TrapFileData> {
        self.strategy.export_trap_file()
    }

    /// Imports a previous run's trap state.
    pub fn import_trap_file(&self, data: &TrapFileData) {
        self.strategy.import_trap_file(data);
    }

    /// The delay watchdog attached to this runtime.
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Registers the calling thread as a runnable pool worker with the
    /// watchdog, RAII-style. The task substrate calls this from every
    /// worker it spawns.
    pub fn register_worker(&self) -> WorkerRegistration {
        self.watchdog.register_worker()
    }

    /// Marks the calling thread blocked in a join wait (watchdog input).
    pub fn enter_blocked(&self) {
        self.watchdog.note_blocked();
    }

    /// Clears the mark set by [`Runtime::enter_blocked`].
    pub fn exit_blocked(&self) {
        self.watchdog.note_unblocked();
    }

    /// Number of traps currently armed (threads sleeping or about to).
    pub fn live_traps(&self) -> usize {
        self.traps.live_count()
    }

    /// `true` once the runtime degraded to passive monitoring: detection
    /// stays on, delay injection is off.
    pub fn is_passive(&self) -> bool {
        self.watchdog.is_degraded()
    }

    /// Abandons active injection: degrades to passive monitoring and wakes
    /// every sleeping trap owner. The harness calls this when a module
    /// blows its deadline so the wedged run can drain and terminate.
    pub fn abandon(&self) {
        self.watchdog.degrade(&self.traps);
    }

    /// Flushes the durable violation sink, if one is configured.
    pub fn flush_durable_sink(&self) {
        if let Some(durable) = &self.durable {
            durable.flush();
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.watchdog.shutdown();
        self.flush_durable_sink();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ms_to_ns;

    fn cfg() -> TsvdConfig {
        TsvdConfig::for_testing()
    }

    #[test]
    fn noop_runtime_reports_nothing() {
        let rt = Runtime::noop(cfg());
        for i in 0..100 {
            rt.on_call(ObjId(i % 3), crate::site!(), "t.op", OpKind::Write);
        }
        assert_eq!(rt.reports().unique_bugs(), 0);
        assert_eq!(rt.stats().delays_injected(), 0);
        assert_eq!(rt.stats().on_calls(), 100);
    }

    #[test]
    #[should_panic(expected = "invalid TsvdConfig")]
    fn invalid_config_panics() {
        let mut c = cfg();
        c.delay_ns = 0;
        let _ = Runtime::noop(c);
    }

    #[test]
    fn tsvd_runtime_catches_forced_collision() {
        // Arm-then-collide, the paper's same-run mechanism end to end:
        // (1) a near miss between two contexts arms the pair;
        // (2) a later access at one armed site sets a trap and sleeps;
        // (3) a conflicting access from another thread walks into the trap.
        let mut c = cfg();
        c.decay_factor = 0.0; // Keep P_loc = 1 so step 2 is deterministic.
        let delay = Duration::from_nanos(c.delay_ns);
        for _attempt in 0..3 {
            let rt = Runtime::tsvd(c.clone());
            let obj = ObjId(0xC0FFEE);
            let site_a = crate::site!();
            let site_b = crate::site!();
            // (1) Near miss: one call from a spawned thread, one from here.
            std::thread::scope(|scope| {
                scope.spawn(|| rt.on_call(obj, site_a, "x.write", OpKind::Write));
            });
            rt.on_call(obj, site_b, "x.write", OpKind::Write);
            // (2)+(3) Collide: the spawned thread delays at the armed site
            // while this thread makes the conflicting call.
            std::thread::scope(|scope| {
                scope.spawn(|| rt.on_call(obj, site_a, "x.write", OpKind::Write));
                std::thread::sleep(delay / 4);
                rt.on_call(obj, site_b, "x.write", OpKind::Write);
            });
            if rt.reports().unique_bugs() >= 1 {
                return;
            }
        }
        panic!("forced collision was not caught in 3 attempts");
    }

    #[test]
    fn per_run_delay_budget_caps_injection() {
        let mut c = cfg();
        c.max_delay_per_run_ns = c.delay_ns; // Budget for exactly one delay.
        c.max_delay_per_context_ns = u64::MAX;
        let rt = Runtime::dynamic_random({
            let mut c = c.clone();
            c.dynamic_random_p = 1.0; // Try to delay at every call.
            c
        });
        for i in 0..20 {
            rt.on_call(ObjId(i), crate::site!(), "t.op", OpKind::Write);
        }
        // One full delay fits; everything after is budget-blocked. Allow 2
        // in case the first sleep undershoots the budget boundary.
        assert!(
            rt.stats().delays_injected() <= 2,
            "delays: {}",
            rt.stats().delays_injected()
        );
    }

    #[test]
    fn per_context_budget_is_enforced() {
        let mut c = cfg();
        c.max_delay_per_context_ns = c.delay_ns + ms_to_ns(1);
        c.max_delay_per_run_ns = u64::MAX;
        c.dynamic_random_p = 1.0;
        let rt = Runtime::dynamic_random(c);
        for i in 0..10 {
            rt.on_call(ObjId(i), crate::site!(), "t.op", OpKind::Write);
        }
        assert!(rt.stats().delays_injected() <= 3);
    }

    #[test]
    fn stack_capture_attaches_stacks() {
        let mut c = cfg();
        c.capture_stacks = true;
        c.dynamic_random_p = 1.0;
        let rt = Runtime::dynamic_random(c);
        let obj = ObjId(0xABCD);
        std::thread::scope(|scope| {
            let rt1 = &rt;
            scope.spawn(move || {
                rt1.on_call(obj, crate::site!(), "x.write", OpKind::Write);
            });
            // Give the first thread time to set its trap, then collide.
            std::thread::sleep(Duration::from_millis(1));
            rt.on_call(obj, crate::site!(), "x.write", OpKind::Write);
        });
        if rt.reports().unique_bugs() > 0 {
            let v = &rt.reports().violations()[0];
            assert!(v.trapped.stack.is_some());
            assert!(v.hitter.stack.is_some());
            assert!(rt.reports().stack_trace_pairs() >= 1);
        }
    }

    #[test]
    fn abandoned_runtime_goes_passive_and_stops_delaying() {
        let mut c = cfg();
        c.dynamic_random_p = 1.0; // Delay at every call when active.
        let rt = Runtime::dynamic_random(c);
        rt.on_call(ObjId(1), crate::site!(), "t.op", OpKind::Write);
        let before = rt.stats().delays_injected();
        assert!(before >= 1);
        rt.abandon();
        assert!(rt.is_passive());
        for i in 0..10 {
            rt.on_call(ObjId(i), crate::site!(), "t.op", OpKind::Write);
        }
        assert_eq!(
            rt.stats().delays_injected(),
            before,
            "passive mode must not inject"
        );
        // Detection bookkeeping continues: calls are still counted.
        assert!(rt.stats().on_calls() >= 11);
        assert_eq!(rt.live_traps(), 0);
    }

    #[test]
    fn durable_sink_records_catches_write_ahead() {
        let dir = std::env::temp_dir().join(format!("tsvd_rt_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("violations.jsonl");
        let mut c = cfg();
        c.dynamic_random_p = 1.0;
        c.durable_sink = Some(path.clone());
        let delay = Duration::from_nanos(c.delay_ns);
        for _attempt in 0..5 {
            let rt = Runtime::dynamic_random(c.clone());
            let obj = ObjId(0xFEED);
            std::thread::scope(|scope| {
                let rt1 = &rt;
                scope.spawn(move || {
                    rt1.on_call(obj, crate::site!(), "x.write", OpKind::Write);
                });
                std::thread::sleep(delay / 4);
                rt.on_call(obj, crate::site!(), "x.write", OpKind::Write);
            });
            if rt.reports().unique_bugs() > 0 {
                let records = crate::sink::DurableSink::load(&path).expect("load sink");
                assert!(
                    records.len() >= rt.reports().total_occurrences(),
                    "durable log must be a superset of in-memory reports"
                );
                std::fs::remove_dir_all(&dir).ok();
                return;
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        panic!("no collision caught in 5 attempts");
    }

    #[test]
    fn sync_events_are_counted_and_ignored_by_tsvd() {
        let rt = Runtime::tsvd(cfg());
        rt.on_sync(SyncEvent::Fork {
            parent: context::current(),
            child: context::fresh_id(),
        });
        assert_eq!(rt.stats().sync_events(), 1);
        assert_eq!(rt.reports().unique_bugs(), 0);
    }
}
