//! SplitMix64: the workspace's deterministic, dependency-free RNG.
//!
//! Fault injection (harness chaos storms, fleet worker kills) and backoff
//! jitter all need reproducible randomness that two processes can derive
//! independently from a shared seed. SplitMix64 is the standard choice: one
//! u64 of state, full-period, and a two-line step function — the same
//! generator the chaos harness has used since PR 2, hoisted here so every
//! crate draws from one implementation.

/// Deterministic splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniformly distributed bits.
    #[allow(clippy::should_implement_trait)] // not an Iterator: never exhausts
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` with probability `p`/1000 — the unit fault-injection rates
    /// are specified in.
    pub fn per_mille(&mut self, p: u32) -> bool {
        self.next() % 1000 < u64::from(p)
    }

    /// A value in `[0, bound)`; 0 when `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }
}

/// One stateless splitmix64 step: hashes `x` to an unrelated u64. Lets two
/// processes agree on a decision keyed by structured input (worker id,
/// attempt ordinal, ...) without sharing generator state.
pub fn mix(x: u64) -> u64 {
    SplitMix64::new(x).next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn per_mille_extremes() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..50 {
            assert!(!rng.per_mille(0));
            assert!(rng.per_mille(1000));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..100 {
            assert!(rng.below(10) < 10);
        }
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn mix_is_stateless_and_stable() {
        assert_eq!(mix(123), mix(123));
        assert_ne!(mix(123), mix(124));
    }
}
