//! Monotonic time sources.
//!
//! All timing *logic* in the detector (near-miss windows, happens-before
//! inference, delay accounting) operates on plain nanosecond values, so unit
//! tests drive it deterministically through a [`ManualClock`] while the
//! runtime uses the process-wide [`RealClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond time source.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds since an arbitrary fixed origin.
    fn now_ns(&self) -> u64;
}

/// Wall-clock backed [`Clock`] with a process-wide origin.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealClock;

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(origin().elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Returns the current process-monotonic time in nanoseconds.
pub fn now_ns() -> u64 {
    RealClock.now_ns()
}

/// A manually advanced [`Clock`] for deterministic tests.
///
/// # Examples
///
/// ```
/// use tsvd_core::{Clock, ManualClock};
///
/// let clock = ManualClock::new();
/// assert_eq!(clock.now_ns(), 0);
/// clock.advance_ms(5);
/// assert_eq!(clock.now_ns(), 5_000_000);
/// ```
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a clock at `ns` nanoseconds.
    pub fn at(ns: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(ns),
        }
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Advances the clock by `ms` milliseconds.
    pub fn advance_ms(&self, ms: u64) {
        self.advance_ns(ms * 1_000_000);
    }

    /// Sets the clock to an absolute time.
    pub fn set_ns(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

/// Converts milliseconds to nanoseconds.
pub const fn ms_to_ns(ms: u64) -> u64 {
    ms * 1_000_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_advances() {
        let c = ManualClock::at(10);
        assert_eq!(c.now_ns(), 10);
        c.advance_ns(5);
        assert_eq!(c.now_ns(), 15);
        c.set_ns(100);
        assert_eq!(c.now_ns(), 100);
    }

    #[test]
    fn ms_conversion() {
        assert_eq!(ms_to_ns(1), 1_000_000);
        assert_eq!(ms_to_ns(100), 100_000_000);
    }
}
