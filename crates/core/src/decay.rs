//! Delay-probability decay (§3.4.5).
//!
//! Every program location in the trap set carries a probability `P_loc` of
//! receiving a delay. `P_loc` starts at 1 when a dangerous pair containing
//! the location is added, and decays multiplicatively after each injected
//! delay that fails to catch a violation: `P ← P · (1 − decay_factor)`.
//! When `P_loc` falls below the floor, the location — and all its pairs —
//! leaves the trap set. A decay factor of 0 disables decay, the pathological
//! configuration of Fig. 9 (g) that can blow overhead up by 66×.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::site::SiteId;

/// Per-location delay probabilities with multiplicative decay.
///
/// `probability` is consulted on every access at an armed site, while the
/// table mutates only when pairs arm or delays finish — so reads share an
/// `RwLock` read guard instead of serializing on a mutex.
pub struct DecayTable {
    probs: RwLock<HashMap<SiteId, f64>>,
    factor: f64,
    floor: f64,
}

impl DecayTable {
    /// Creates a table with the given decay factor and removal floor.
    pub fn new(factor: f64, floor: f64) -> Self {
        DecayTable {
            probs: RwLock::new(HashMap::new()),
            factor: factor.clamp(0.0, 1.0),
            floor: floor.clamp(0.0, 1.0),
        }
    }

    /// (Re)arms `site` at probability 1. Called when a dangerous pair
    /// containing `site` enters the trap set.
    pub fn arm(&self, site: SiteId) {
        self.probs.write().insert(site, 1.0);
    }

    /// Returns the current delay probability of `site` (0 if unknown).
    pub fn probability(&self, site: SiteId) -> f64 {
        self.probs.read().get(&site).copied().unwrap_or(0.0)
    }

    /// Applies one decay step to `site` after a fruitless delay.
    ///
    /// Returns `true` if the probability dropped below the floor and the
    /// caller should evict the location's pairs from the trap set.
    pub fn decay(&self, site: SiteId) -> bool {
        let mut probs = self.probs.write();
        let Some(p) = probs.get_mut(&site) else {
            return false;
        };
        *p *= 1.0 - self.factor;
        if *p < self.floor && self.factor > 0.0 {
            probs.remove(&site);
            true
        } else {
            false
        }
    }

    /// Removes `site` outright (e.g. a violation was already found there).
    pub fn remove(&self, site: SiteId) {
        self.probs.write().remove(&site);
    }

    /// Number of armed locations (stats).
    pub fn armed_count(&self) -> usize {
        self.probs.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "decay_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn unknown_site_has_zero_probability() {
        let t = DecayTable::new(0.5, 0.05);
        assert_eq!(t.probability(site(1)), 0.0);
    }

    #[test]
    fn armed_site_starts_at_one() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn decay_halves_probability() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        assert!(!t.decay(site(1)));
        assert!((t.probability(site(1)) - 0.5).abs() < 1e-12);
        assert!(!t.decay(site(1)));
        assert!((t.probability(site(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decay_below_floor_evicts() {
        let t = DecayTable::new(0.5, 0.3);
        t.arm(site(1));
        assert!(!t.decay(site(1))); // 0.5
        assert!(t.decay(site(1))); // 0.25 < 0.3 → evict
        assert_eq!(t.probability(site(1)), 0.0);
    }

    #[test]
    fn zero_factor_never_decays() {
        let t = DecayTable::new(0.0, 0.05);
        t.arm(site(1));
        for _ in 0..100 {
            assert!(!t.decay(site(1)));
        }
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn rearming_resets_probability() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        t.decay(site(1));
        t.arm(site(1));
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn decay_on_unknown_site_is_noop() {
        let t = DecayTable::new(0.5, 0.05);
        assert!(!t.decay(site(42)));
    }

    #[test]
    fn remove_clears_site() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        t.remove(site(1));
        assert_eq!(t.probability(site(1)), 0.0);
        assert_eq!(t.armed_count(), 0);
    }
}
