//! Delay-probability decay (§3.4.5).
//!
//! Every program location in the trap set carries a probability `P_loc` of
//! receiving a delay. `P_loc` starts at 1 when a dangerous pair containing
//! the location is added, and decays multiplicatively after each injected
//! delay that fails to catch a violation: `P ← P · (1 − decay_factor)`.
//! When `P_loc` falls below the floor, the location — and all its pairs —
//! leaves the trap set. A decay factor of 0 disables decay, the pathological
//! configuration of Fig. 9 (g) that can blow overhead up by 66×.
//!
//! `probability` is consulted on every access at an armed site, so the
//! table is an epoch-pinned immutable snapshot (see [`crate::epoch`]):
//! readers never lock, writers (arm, decay, remove — rare) serialize on a
//! mutex and publish copy-on-write snapshots. An atomic armed-count keeps
//! the empty table — no pair armed yet — free of even the epoch pin.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::audit;
use crate::epoch::EpochPtr;
use crate::site::SiteId;

/// Per-location delay probabilities with multiplicative decay.
pub struct DecayTable {
    snapshot: EpochPtr<HashMap<SiteId, f64>>,
    writer: Mutex<()>,
    armed: AtomicUsize,
    factor: f64,
    floor: f64,
}

impl DecayTable {
    /// Creates a table with the given decay factor and removal floor.
    pub fn new(factor: f64, floor: f64) -> Self {
        DecayTable {
            snapshot: EpochPtr::new(HashMap::new()),
            writer: Mutex::new(()),
            armed: AtomicUsize::new(0),
            factor: factor.clamp(0.0, 1.0),
            floor: floor.clamp(0.0, 1.0),
        }
    }

    /// Clone-mutate-swap under the writer lock, then republish the armed
    /// count from the new snapshot's size.
    fn write<R>(&self, mutate: impl FnOnce(&mut HashMap<SiteId, f64>) -> R) -> R {
        audit::note_lock();
        let _w = self.writer.lock();
        let mut next = self.snapshot.read(Clone::clone);
        let result = mutate(&mut next);
        audit::note_shared_write();
        self.armed.store(next.len(), Ordering::Release);
        self.snapshot.swap(next);
        result
    }

    /// (Re)arms `site` at probability 1. Called when a dangerous pair
    /// containing `site` enters the trap set.
    pub fn arm(&self, site: SiteId) {
        self.write(|probs| {
            probs.insert(site, 1.0);
        });
    }

    /// Arms every site in `sites` at probability 1 with a single snapshot
    /// publish — the bulk path for trap file imports.
    pub fn arm_many(&self, sites: impl IntoIterator<Item = SiteId>) {
        self.write(|probs| {
            for site in sites {
                probs.insert(site, 1.0);
            }
        });
    }

    /// Returns the current delay probability of `site` (0 if unknown).
    pub fn probability(&self, site: SiteId) -> f64 {
        if self.armed.load(Ordering::Acquire) == 0 {
            return 0.0;
        }
        self.snapshot
            .read(|probs| probs.get(&site).copied().unwrap_or(0.0))
    }

    /// Applies one decay step to `site` after a fruitless delay.
    ///
    /// Returns `true` if the probability dropped below the floor and the
    /// caller should evict the location's pairs from the trap set.
    pub fn decay(&self, site: SiteId) -> bool {
        self.write(|probs| {
            let Some(p) = probs.get_mut(&site) else {
                return false;
            };
            *p *= 1.0 - self.factor;
            if *p < self.floor && self.factor > 0.0 {
                probs.remove(&site);
                true
            } else {
                false
            }
        })
    }

    /// Removes `site` outright (e.g. a violation was already found there).
    pub fn remove(&self, site: SiteId) {
        self.write(|probs| {
            probs.remove(&site);
        });
    }

    /// Number of armed locations (stats).
    pub fn armed_count(&self) -> usize {
        self.armed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "decay_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn unknown_site_has_zero_probability() {
        let t = DecayTable::new(0.5, 0.05);
        assert_eq!(t.probability(site(1)), 0.0);
    }

    #[test]
    fn armed_site_starts_at_one() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn decay_halves_probability() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        assert!(!t.decay(site(1)));
        assert!((t.probability(site(1)) - 0.5).abs() < 1e-12);
        assert!(!t.decay(site(1)));
        assert!((t.probability(site(1)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn decay_below_floor_evicts() {
        let t = DecayTable::new(0.5, 0.3);
        t.arm(site(1));
        assert!(!t.decay(site(1))); // 0.5
        assert!(t.decay(site(1))); // 0.25 < 0.3 → evict
        assert_eq!(t.probability(site(1)), 0.0);
    }

    #[test]
    fn zero_factor_never_decays() {
        let t = DecayTable::new(0.0, 0.05);
        t.arm(site(1));
        for _ in 0..100 {
            assert!(!t.decay(site(1)));
        }
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn rearming_resets_probability() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        t.decay(site(1));
        t.arm(site(1));
        assert_eq!(t.probability(site(1)), 1.0);
    }

    #[test]
    fn decay_on_unknown_site_is_noop() {
        let t = DecayTable::new(0.5, 0.05);
        assert!(!t.decay(site(42)));
    }

    #[test]
    fn remove_clears_site() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm(site(1));
        t.remove(site(1));
        assert_eq!(t.probability(site(1)), 0.0);
        assert_eq!(t.armed_count(), 0);
    }

    #[test]
    fn arm_many_is_one_publish() {
        let t = DecayTable::new(0.5, 0.05);
        t.arm_many([site(10), site(11), site(12)]);
        assert_eq!(t.armed_count(), 3);
        assert_eq!(t.probability(site(11)), 1.0);
    }

    #[test]
    fn concurrent_readers_survive_decay_churn() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;
        let t = Arc::new(DecayTable::new(0.5, 0.05));
        t.arm(site(90));
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let t = t.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    while stop.load(Ordering::Relaxed) == 0 {
                        let p = t.probability(site(90));
                        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
                        let q = t.probability(site(91));
                        assert!((0.0..=1.0).contains(&q));
                    }
                })
            })
            .collect();
        for _ in 0..300 {
            t.arm(site(91));
            t.decay(site(91));
            t.arm(site(90));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
        assert_eq!(t.probability(site(90)), 1.0);
    }
}
