//! The hot gate: one word deciding whether `on_call` may stay local.
//!
//! The batched fast path is only sound while the detector is *quiescent*:
//! no trap is live (nothing to collide with) and no pair is armed (nothing
//! to delay at). Both conditions, plus the buffer force-drain protocol, are
//! packed into a single `AtomicU64` so the zero-trap path costs exactly one
//! relaxed load:
//!
//! ```text
//!   63            32 31             0
//!  +----------------+----------------+
//!  |  drain epoch   |    activity    |
//!  +----------------+----------------+
//! ```
//!
//! *Activity* counts reasons the fast path must not be taken: live traps
//! (mirrored by the trap table) plus armed pairs (mirrored by the trap
//! set). *Drain epoch* is a monotone counter bumped when a trap arming
//! event requests that every thread flush its local buffer; a thread whose
//! remembered epoch differs flushes at its next `on_call` even if activity
//! already returned to zero, so no near-miss evidence outlives an arming
//! inside a local buffer.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::audit;

const ACTIVITY_MASK: u64 = 0xFFFF_FFFF;
const EPOCH_SHIFT: u32 = 32;

/// Packed (drain epoch, activity) word gating the batched fast path.
#[derive(Debug, Default)]
pub struct HotGate {
    word: AtomicU64,
}

impl HotGate {
    /// Creates a quiescent gate (activity 0, epoch 0).
    pub fn new() -> HotGate {
        HotGate::default()
    }

    /// Loads the packed word. Relaxed on purpose: a stale read can only
    /// delay a flush by one call, which is indistinguishable from the
    /// access having happened slightly earlier — the same argument the
    /// trap table's zero-live fast path already makes.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::Relaxed)
    }

    /// The activity count in a packed word.
    #[inline]
    pub fn activity(word: u64) -> u64 {
        word & ACTIVITY_MASK
    }

    /// The drain epoch in a packed word.
    #[inline]
    pub fn epoch(word: u64) -> u32 {
        (word >> EPOCH_SHIFT) as u32
    }

    /// `true` if `word` permits the batched fast path for a thread whose
    /// remembered drain epoch is `seen_epoch`.
    #[inline]
    pub fn is_quiescent(word: u64, seen_epoch: u32) -> bool {
        Self::activity(word) == 0 && Self::epoch(word) == seen_epoch
    }

    /// Adds `n` units of activity (armed pairs, live traps).
    pub fn add_activity(&self, n: u64) {
        if n == 0 {
            return;
        }
        audit::note_shared_write();
        self.word.fetch_add(n & ACTIVITY_MASK, Ordering::AcqRel);
    }

    /// Removes `n` units of activity. Callers keep adds and subs balanced;
    /// an unbalanced sub would corrupt the epoch half of the word.
    pub fn sub_activity(&self, n: u64) {
        if n == 0 {
            return;
        }
        audit::note_shared_write();
        self.word.fetch_sub(n & ACTIVITY_MASK, Ordering::AcqRel);
    }

    /// Bumps the drain epoch: every thread must flush its local buffer
    /// before trusting the fast path again.
    pub fn request_drain(&self) {
        audit::note_shared_write();
        self.word.fetch_add(1 << EPOCH_SHIFT, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_gate_is_quiescent() {
        let g = HotGate::new();
        assert!(HotGate::is_quiescent(g.load(), 0));
    }

    #[test]
    fn activity_blocks_fast_path() {
        let g = HotGate::new();
        g.add_activity(2);
        assert_eq!(HotGate::activity(g.load()), 2);
        assert!(!HotGate::is_quiescent(g.load(), 0));
        g.sub_activity(1);
        assert!(!HotGate::is_quiescent(g.load(), 0));
        g.sub_activity(1);
        assert!(HotGate::is_quiescent(g.load(), 0));
    }

    #[test]
    fn drain_epoch_blocks_until_observed() {
        let g = HotGate::new();
        g.request_drain();
        let w = g.load();
        assert_eq!(HotGate::activity(w), 0);
        assert!(!HotGate::is_quiescent(w, 0), "stale epoch must flush");
        assert!(HotGate::is_quiescent(w, HotGate::epoch(w)));
    }

    #[test]
    fn epoch_and_activity_do_not_interfere() {
        let g = HotGate::new();
        g.add_activity(5);
        g.request_drain();
        g.request_drain();
        let w = g.load();
        assert_eq!(HotGate::activity(w), 5);
        assert_eq!(HotGate::epoch(w), 2);
        g.sub_activity(5);
        let w = g.load();
        assert_eq!(HotGate::activity(w), 0);
        assert_eq!(HotGate::epoch(w), 2);
    }
}
