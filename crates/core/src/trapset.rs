//! The trap set: dangerous pairs of program locations (§3.4.1).
//!
//! The trap set grows as near misses are discovered and shrinks as pairs are
//! pruned — either because a likely happens-before relation was inferred
//! between the two locations, or because a violation was already caught at
//! the pair. Membership of a *location* in any pair is what makes
//! `should_delay` eligible at that location.
//!
//! `contains_site` is consulted on every instrumented access once any pair
//! is armed, so the set is kept as an immutable snapshot behind an
//! [`EpochPtr`]: readers pin the epoch (one store to their own slot), load
//! the pointer, and look up without any lock; writers (arming and pruning —
//! rare) serialize on a mutex, clone the snapshot, mutate the clone, and
//! swap it in, retiring the predecessor to the epoch collector. An atomic
//! pair count still lets the empty set — a fresh run before any near miss —
//! answer without even pinning.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::audit;
use crate::epoch::EpochPtr;
use crate::gate::HotGate;
use crate::near_miss::SitePair;
use crate::site::SiteId;

#[derive(Default, Clone)]
struct Snapshot {
    pairs: HashSet<SitePair>,
    /// How many pairs each site participates in (for O(1) eligibility).
    site_refs: HashMap<SiteId, usize>,
    /// Pairs at which a violation has already been caught; never re-added.
    found: HashSet<SitePair>,
}

impl Snapshot {
    fn insert(&mut self, pair: SitePair) -> bool {
        if self.found.contains(&pair) {
            return false;
        }
        if self.pairs.insert(pair) {
            *self.site_refs.entry(pair.first).or_insert(0) += 1;
            if pair.second != pair.first {
                *self.site_refs.entry(pair.second).or_insert(0) += 1;
            }
            true
        } else {
            false
        }
    }

    fn delete(&mut self, pair: SitePair) -> bool {
        if self.pairs.remove(&pair) {
            decref(&mut self.site_refs, pair.first);
            if pair.second != pair.first {
                decref(&mut self.site_refs, pair.second);
            }
            true
        } else {
            false
        }
    }
}

/// Thread-safe set of dangerous pairs with per-site membership counts.
///
/// Readers are lock-free (epoch-pinned snapshot loads); writers serialize
/// on an internal mutex and publish copy-on-write snapshots. When a
/// [`HotGate`] is attached, the pair count is mirrored into the gate's
/// activity word so the runtime's batched fast path shuts off the moment
/// any pair arms.
#[derive(Default)]
pub struct TrapSet {
    snapshot: EpochPtr<Snapshot>,
    writer: Mutex<()>,
    pair_count: AtomicUsize,
    gate: OnceLock<Arc<HotGate>>,
}

impl TrapSet {
    /// Creates an empty trap set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mirrors pair-count changes into `gate`'s activity word. May be
    /// called at most once; later calls are ignored.
    pub fn attach_gate(&self, gate: Arc<HotGate>) {
        let _ = self.gate.set(gate);
    }

    /// Clone-mutate-swap under the writer lock. `mutate` returns the op's
    /// result plus how many pairs were added (+) or removed (−); the count
    /// delta is mirrored into the pair counter and the attached gate.
    fn write<R>(&self, mutate: impl FnOnce(&mut Snapshot) -> (R, isize)) -> R {
        audit::note_lock();
        let _w = self.writer.lock();
        let mut next = self.snapshot.read(Clone::clone);
        let (result, delta) = mutate(&mut next);
        if delta != 0 {
            audit::note_shared_write();
            match delta {
                d if d > 0 => {
                    self.pair_count.fetch_add(d as usize, Ordering::Release);
                    if let Some(gate) = self.gate.get() {
                        gate.add_activity(d as u64);
                    }
                }
                d => {
                    self.pair_count.fetch_sub((-d) as usize, Ordering::Release);
                    if let Some(gate) = self.gate.get() {
                        gate.sub_activity((-d) as u64);
                    }
                }
            }
        }
        audit::note_shared_write();
        self.snapshot.swap(next);
        result
    }

    /// Adds `pair` unless it was already found buggy. Returns `true` if the
    /// pair is newly inserted.
    pub fn add(&self, pair: SitePair) -> bool {
        self.write(|s| {
            let inserted = s.insert(pair);
            (inserted, inserted as isize)
        })
    }

    /// Adds every pair in `candidates` (in order) that is not already
    /// present or found buggy, stopping once the set holds `max_len` pairs.
    /// Returns the pairs actually inserted. One snapshot clone and one
    /// publish regardless of how many pairs arm — the bulk path for trap
    /// file imports.
    pub fn add_many(&self, candidates: &[SitePair], max_len: usize) -> Vec<SitePair> {
        self.write(|s| {
            let mut inserted = Vec::new();
            for &pair in candidates {
                if s.pairs.len() >= max_len {
                    break;
                }
                if s.insert(pair) {
                    inserted.push(pair);
                }
            }
            let n = inserted.len() as isize;
            (inserted, n)
        })
    }

    /// Removes `pair` (HB-inferred prune). Returns `true` if it was present.
    pub fn remove(&self, pair: SitePair) -> bool {
        self.write(|s| {
            let removed = s.delete(pair);
            (removed, -(removed as isize))
        })
    }

    /// Marks `pair` as found buggy: removes it and blocks re-insertion.
    pub fn mark_found(&self, pair: SitePair) {
        self.write(|s| {
            s.found.insert(pair);
            let removed = s.delete(pair);
            ((), -(removed as isize))
        })
    }

    /// Removes every pair containing `site` (decay eviction), returning the
    /// removed pairs.
    pub fn remove_site(&self, site: SiteId) -> Vec<SitePair> {
        self.write(|s| {
            let doomed: Vec<SitePair> = s
                .pairs
                .iter()
                .filter(|p| p.contains(site))
                .copied()
                .collect();
            for pair in &doomed {
                s.delete(*pair);
            }
            let n = doomed.len() as isize;
            (doomed, -n)
        })
    }

    /// Returns `true` if `site` participates in at least one pair.
    pub fn contains_site(&self, site: SiteId) -> bool {
        if self.pair_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.snapshot
            .read(|s| s.site_refs.get(&site).is_some_and(|&n| n > 0))
    }

    /// Returns `true` if `pair` is currently in the set.
    pub fn contains(&self, pair: SitePair) -> bool {
        if self.pair_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.snapshot.read(|s| s.pairs.contains(&pair))
    }

    /// Returns the partner locations of every pair containing `site`
    /// (excluding `site` itself unless it self-pairs).
    pub fn partners(&self, site: SiteId) -> Vec<SiteId> {
        self.snapshot.read(|s| {
            s.pairs
                .iter()
                .filter(|p| p.contains(site))
                .map(|p| p.other(site))
                .collect()
        })
    }

    /// Snapshot of all pairs (for trap-file export).
    pub fn pairs(&self) -> Vec<SitePair> {
        self.snapshot.read(|s| s.pairs.iter().copied().collect())
    }

    /// Number of pairs currently in the set.
    pub fn len(&self) -> usize {
        self.pair_count.load(Ordering::Acquire)
    }

    /// Returns `true` if the set has no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Asserts the internal consistency of the *current* snapshot: the
    /// site-reference counts must be exactly those derived from the pair
    /// set. Readers racing a writer must only ever observe snapshots that
    /// pass this check — a torn view would fail it.
    #[cfg(test)]
    fn assert_snapshot_consistent(&self) {
        self.snapshot.read(|s| {
            let mut derived: HashMap<SiteId, usize> = HashMap::new();
            for p in &s.pairs {
                *derived.entry(p.first).or_insert(0) += 1;
                if p.second != p.first {
                    *derived.entry(p.second).or_insert(0) += 1;
                }
            }
            assert_eq!(
                derived, s.site_refs,
                "snapshot site_refs must match the pair set"
            );
        });
    }
}

fn decref(refs: &mut HashMap<SiteId, usize>, site: SiteId) {
    if let Some(n) = refs.get_mut(&site) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            refs.remove(&site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "trapset_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn add_and_membership() {
        let t = TrapSet::new();
        let p = SitePair::new(site(1), site(2));
        assert!(t.add(p));
        assert!(!t.add(p), "second insert is a no-op");
        assert!(t.contains(p));
        assert!(t.contains_site(site(1)));
        assert!(t.contains_site(site(2)));
        assert!(!t.contains_site(site(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_updates_site_refs() {
        let t = TrapSet::new();
        let p12 = SitePair::new(site(1), site(2));
        let p13 = SitePair::new(site(1), site(3));
        t.add(p12);
        t.add(p13);
        assert!(t.remove(p12));
        assert!(
            t.contains_site(site(1)),
            "site 1 still referenced by the other pair"
        );
        assert!(!t.contains_site(site(2)));
        assert!(!t.remove(p12), "already gone");
    }

    #[test]
    fn same_site_pair_refcount() {
        let t = TrapSet::new();
        let p = SitePair::new(site(7), site(7));
        t.add(p);
        assert!(t.contains_site(site(7)));
        t.remove(p);
        assert!(!t.contains_site(site(7)));
    }

    #[test]
    fn mark_found_blocks_readdition() {
        let t = TrapSet::new();
        let p = SitePair::new(site(1), site(2));
        t.add(p);
        t.mark_found(p);
        assert!(!t.contains(p));
        assert!(!t.add(p), "found pairs are never re-armed");
        assert!(t.is_empty());
    }

    #[test]
    fn remove_site_evicts_all_pairs() {
        let t = TrapSet::new();
        t.add(SitePair::new(site(1), site(2)));
        t.add(SitePair::new(site(1), site(3)));
        t.add(SitePair::new(site(4), site(5)));
        let removed = t.remove_site(site(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(!t.contains_site(site(1)));
        assert!(!t.contains_site(site(2)));
        assert!(t.contains_site(site(4)));
    }

    #[test]
    fn pairs_snapshot() {
        let t = TrapSet::new();
        t.add(SitePair::new(site(1), site(2)));
        t.add(SitePair::new(site(3), site(4)));
        let mut pairs = t.pairs();
        pairs.sort();
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn add_many_respects_budget_and_found_set() {
        let t = TrapSet::new();
        let found = SitePair::new(site(20), site(21));
        t.add(found);
        t.mark_found(found);
        let candidates = [
            found,
            SitePair::new(site(22), site(23)),
            SitePair::new(site(22), site(23)), // duplicate
            SitePair::new(site(24), site(25)),
            SitePair::new(site(26), site(27)), // over budget
        ];
        let inserted = t.add_many(&candidates, 2);
        assert_eq!(inserted.len(), 2);
        assert!(t.contains(SitePair::new(site(22), site(23))));
        assert!(t.contains(SitePair::new(site(24), site(25))));
        assert!(!t.contains(found), "found pairs never re-arm");
        assert!(!t.contains(SitePair::new(site(26), site(27))));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn attached_gate_mirrors_pair_count() {
        let t = TrapSet::new();
        let gate = Arc::new(HotGate::new());
        t.attach_gate(gate.clone());
        t.add(SitePair::new(site(30), site(31)));
        t.add(SitePair::new(site(30), site(32)));
        assert_eq!(HotGate::activity(gate.load()), 2);
        t.remove_site(site(30));
        assert_eq!(HotGate::activity(gate.load()), 0);
    }

    /// Interleaving stress for the epoch swap: reader threads hammer the
    /// lock-free read path while a writer churns arms and prunes. Every
    /// observed snapshot must be internally consistent (site_refs derived
    /// exactly from pairs), and an invariant pair that is never removed
    /// must be visible in every snapshot. Catches torn reads, premature
    /// reclamation (use-after-free would crash or desync), and lost
    /// updates from the copy-on-write protocol.
    #[test]
    fn epoch_swap_interleaving_stress() {
        let t = Arc::new(TrapSet::new());
        let anchor = SitePair::new(site(100), site(101));
        t.add(anchor);
        let stop = Arc::new(AtomicUsize::new(0));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let t = t.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let mut reads = 0u64;
                    while stop.load(Ordering::Relaxed) == 0 {
                        assert!(t.contains(anchor), "anchor pair must never vanish");
                        assert!(t.contains_site(site(100)));
                        t.assert_snapshot_consistent();
                        let partners = t.partners(site(102));
                        // Any partner of a churned site must be a churned
                        // site from the writer's working set.
                        for p in partners {
                            assert!(p == site(103) || p == site(104), "foreign partner {p:?}");
                        }
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();
        for round in 0..400 {
            let a = SitePair::new(site(102), site(103));
            let b = SitePair::new(site(102), site(104));
            t.add(a);
            t.add(b);
            if round % 3 == 0 {
                t.remove(a);
                t.remove_site(site(102));
            } else {
                t.remove_site(site(102));
            }
            assert!(t.contains(anchor));
        }
        stop.store(1, Ordering::Relaxed);
        let total: u64 = readers
            .into_iter()
            .map(|r| r.join().expect("reader panicked"))
            .sum();
        assert!(total > 0, "readers must actually have observed snapshots");
        assert_eq!(t.len(), 1, "only the anchor survives the churn");
        t.assert_snapshot_consistent();
    }
}
