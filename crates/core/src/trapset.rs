//! The trap set: dangerous pairs of program locations (§3.4.1).
//!
//! The trap set grows as near misses are discovered and shrinks as pairs are
//! pruned — either because a likely happens-before relation was inferred
//! between the two locations, or because a violation was already caught at
//! the pair. Membership of a *location* in any pair is what makes
//! `should_delay` eligible at that location.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::RwLock;

use crate::near_miss::SitePair;
use crate::site::SiteId;

#[derive(Default)]
struct Inner {
    pairs: HashSet<SitePair>,
    /// How many pairs each site participates in (for O(1) eligibility).
    site_refs: HashMap<SiteId, usize>,
    /// Pairs at which a violation has already been caught; never re-added.
    found: HashSet<SitePair>,
}

/// Thread-safe set of dangerous pairs with per-site membership counts.
///
/// `contains_site` is consulted on every instrumented access, so the set is
/// read-mostly: lookups share a read lock, mutations (rare — arming and
/// pruning) take the write lock, and an atomic pair count lets the empty
/// set — a fresh run before any near miss — answer without locking at all.
#[derive(Default)]
pub struct TrapSet {
    inner: RwLock<Inner>,
    pair_count: AtomicUsize,
}

impl TrapSet {
    /// Creates an empty trap set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `pair` unless it was already found buggy. Returns `true` if the
    /// pair is newly inserted.
    pub fn add(&self, pair: SitePair) -> bool {
        let mut inner = self.inner.write();
        if inner.found.contains(&pair) {
            return false;
        }
        if inner.pairs.insert(pair) {
            *inner.site_refs.entry(pair.first).or_insert(0) += 1;
            if pair.second != pair.first {
                *inner.site_refs.entry(pair.second).or_insert(0) += 1;
            }
            self.pair_count.fetch_add(1, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Removes `pair` (HB-inferred prune). Returns `true` if it was present.
    pub fn remove(&self, pair: SitePair) -> bool {
        let mut inner = self.inner.write();
        if inner.pairs.remove(&pair) {
            decref(&mut inner.site_refs, pair.first);
            if pair.second != pair.first {
                decref(&mut inner.site_refs, pair.second);
            }
            self.pair_count.fetch_sub(1, Ordering::Release);
            true
        } else {
            false
        }
    }

    /// Marks `pair` as found buggy: removes it and blocks re-insertion.
    pub fn mark_found(&self, pair: SitePair) {
        {
            let mut inner = self.inner.write();
            inner.found.insert(pair);
        }
        self.remove(pair);
    }

    /// Removes every pair containing `site` (decay eviction), returning the
    /// removed pairs.
    pub fn remove_site(&self, site: SiteId) -> Vec<SitePair> {
        let mut inner = self.inner.write();
        let doomed: Vec<SitePair> = inner
            .pairs
            .iter()
            .filter(|p| p.contains(site))
            .copied()
            .collect();
        for pair in &doomed {
            inner.pairs.remove(pair);
            decref(&mut inner.site_refs, pair.first);
            if pair.second != pair.first {
                decref(&mut inner.site_refs, pair.second);
            }
        }
        self.pair_count.fetch_sub(doomed.len(), Ordering::Release);
        doomed
    }

    /// Returns `true` if `site` participates in at least one pair.
    pub fn contains_site(&self, site: SiteId) -> bool {
        if self.pair_count.load(Ordering::Acquire) == 0 {
            return false;
        }
        self.inner
            .read()
            .site_refs
            .get(&site)
            .is_some_and(|&n| n > 0)
    }

    /// Returns `true` if `pair` is currently in the set.
    pub fn contains(&self, pair: SitePair) -> bool {
        self.inner.read().pairs.contains(&pair)
    }

    /// Returns the partner locations of every pair containing `site`
    /// (excluding `site` itself unless it self-pairs).
    pub fn partners(&self, site: SiteId) -> Vec<SiteId> {
        self.inner
            .read()
            .pairs
            .iter()
            .filter(|p| p.contains(site))
            .map(|p| p.other(site))
            .collect()
    }

    /// Snapshot of all pairs (for trap-file export).
    pub fn pairs(&self) -> Vec<SitePair> {
        self.inner.read().pairs.iter().copied().collect()
    }

    /// Number of pairs currently in the set.
    pub fn len(&self) -> usize {
        self.pair_count.load(Ordering::Acquire)
    }

    /// Returns `true` if the set has no pairs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn decref(refs: &mut HashMap<SiteId, usize>, site: SiteId) {
    if let Some(n) = refs.get_mut(&site) {
        *n = n.saturating_sub(1);
        if *n == 0 {
            refs.remove(&site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "trapset_test.rs",
            line: n,
            column: 1,
        })
    }

    #[test]
    fn add_and_membership() {
        let t = TrapSet::new();
        let p = SitePair::new(site(1), site(2));
        assert!(t.add(p));
        assert!(!t.add(p), "second insert is a no-op");
        assert!(t.contains(p));
        assert!(t.contains_site(site(1)));
        assert!(t.contains_site(site(2)));
        assert!(!t.contains_site(site(3)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_updates_site_refs() {
        let t = TrapSet::new();
        let p12 = SitePair::new(site(1), site(2));
        let p13 = SitePair::new(site(1), site(3));
        t.add(p12);
        t.add(p13);
        assert!(t.remove(p12));
        assert!(
            t.contains_site(site(1)),
            "site 1 still referenced by the other pair"
        );
        assert!(!t.contains_site(site(2)));
        assert!(!t.remove(p12), "already gone");
    }

    #[test]
    fn same_site_pair_refcount() {
        let t = TrapSet::new();
        let p = SitePair::new(site(7), site(7));
        t.add(p);
        assert!(t.contains_site(site(7)));
        t.remove(p);
        assert!(!t.contains_site(site(7)));
    }

    #[test]
    fn mark_found_blocks_readdition() {
        let t = TrapSet::new();
        let p = SitePair::new(site(1), site(2));
        t.add(p);
        t.mark_found(p);
        assert!(!t.contains(p));
        assert!(!t.add(p), "found pairs are never re-armed");
        assert!(t.is_empty());
    }

    #[test]
    fn remove_site_evicts_all_pairs() {
        let t = TrapSet::new();
        t.add(SitePair::new(site(1), site(2)));
        t.add(SitePair::new(site(1), site(3)));
        t.add(SitePair::new(site(4), site(5)));
        let removed = t.remove_site(site(1));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert!(!t.contains_site(site(1)));
        assert!(!t.contains_site(site(2)));
        assert!(t.contains_site(site(4)));
    }

    #[test]
    fn pairs_snapshot() {
        let t = TrapSet::new();
        t.add(SitePair::new(site(1), site(2)));
        t.add(SitePair::new(site(3), site(4)));
        let mut pairs = t.pairs();
        pairs.sort();
        assert_eq!(pairs.len(), 2);
    }
}
