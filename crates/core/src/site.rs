//! Static program locations ("TSVD points") and their interner.
//!
//! The paper identifies a bug by the *unordered pair of static program
//! locations* making the conflicting calls. A location here is a source
//! position captured with `#[track_caller]` at the instrumented call site,
//! interned into a small copyable [`SiteId`]. Interning gives three things
//! the algorithm needs:
//!
//! - cheap hashing/equality on the hot `OnCall` path,
//! - a stable textual form for the persistent trap file (§3.4.6),
//! - the ability to re-materialize sites *imported* from a previous run's
//!   trap file before they are executed in this run.

use std::collections::HashMap;
use std::fmt;
use std::panic::Location;
use std::sync::OnceLock;

use parking_lot::RwLock;

/// An interned static program location (a TSVD point).
///
/// `SiteId`s are process-global: the same source location always interns to
/// the same id, including locations imported from a trap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(u32);

/// The source data backing a [`SiteId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteData {
    /// Source file of the call site.
    pub file: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub column: u32,
}

impl fmt::Display for SiteData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.file, self.line, self.column)
    }
}

struct Interner {
    by_data: HashMap<SiteData, SiteId>,
    data: Vec<SiteData>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            by_data: HashMap::new(),
            data: Vec::new(),
        })
    })
}

impl SiteId {
    /// Interns the caller's source location.
    ///
    /// Instrumented wrappers mark themselves `#[track_caller]` so that the
    /// *caller's* position — the TSVD point — is captured, mirroring the
    /// paper's binary-rewriting proxies that record the original call site.
    #[track_caller]
    pub fn here() -> SiteId {
        let loc = Location::caller();
        SiteId::from_location(loc)
    }

    /// Interns an explicit [`Location`].
    pub fn from_location(loc: &'static Location<'static>) -> SiteId {
        Self::intern(SiteData {
            file: loc.file(),
            line: loc.line(),
            column: loc.column(),
        })
    }

    /// Interns explicit site data.
    pub fn intern(data: SiteData) -> SiteId {
        {
            let guard = interner().read();
            if let Some(&id) = guard.by_data.get(&data) {
                return id;
            }
        }
        let mut guard = interner().write();
        if let Some(&id) = guard.by_data.get(&data) {
            return id;
        }
        let id = SiteId(
            u32::try_from(guard.data.len()).expect("more than u32::MAX distinct TSVD points"),
        );
        guard.data.push(data);
        guard.by_data.insert(data, id);
        id
    }

    /// Parses and interns the textual form produced by [`fmt::Display`]
    /// (`file:line:column`). Used when loading a trap file.
    ///
    /// Returns `None` if `text` is not of the expected shape.
    pub fn parse(text: &str) -> Option<SiteId> {
        let (rest, column) = text.rsplit_once(':')?;
        let (file, line) = rest.rsplit_once(':')?;
        let line: u32 = line.parse().ok()?;
        let column: u32 = column.parse().ok()?;
        // Imported file names were not compiled into this binary; leak them
        // once per distinct site (bounded by the trap-file size).
        let file: &'static str = leak_str(file);
        Some(Self::intern(SiteData { file, line, column }))
    }

    /// Returns the source data for this site.
    pub fn data(self) -> SiteData {
        interner().read().data[self.0 as usize]
    }

    /// Raw index (useful for dense per-site tables).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.data())
    }
}

/// Interns a string as `&'static str`, deduplicating so repeated trap-file
/// loads do not grow memory.
fn leak_str(s: &str) -> &'static str {
    static STRINGS: OnceLock<RwLock<HashMap<String, &'static str>>> = OnceLock::new();
    let strings = STRINGS.get_or_init(|| RwLock::new(HashMap::new()));
    {
        let guard = strings.read();
        if let Some(&v) = guard.get(s) {
            return v;
        }
    }
    let mut guard = strings.write();
    if let Some(&v) = guard.get(s) {
        return v;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    guard.insert(s.to_owned(), leaked);
    leaked
}

/// Interns the current source position as a [`SiteId`].
///
/// # Examples
///
/// ```
/// let a = tsvd_core::site!();
/// let b = tsvd_core::site!();
/// assert_ne!(a, b, "distinct source positions intern to distinct sites");
/// ```
#[macro_export]
macro_rules! site {
    () => {
        $crate::site::SiteId::here()
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_location_interns_once() {
        let mut ids = Vec::new();
        for _ in 0..3 {
            ids.push(SiteId::here()); // Same source position each iteration.
        }
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[1], ids[2]);
    }

    #[test]
    fn different_locations_differ() {
        let a = SiteId::here();
        let b = SiteId::here();
        assert_ne!(a, b);
        assert_ne!(a.data().line, b.data().line);
    }

    #[test]
    fn display_round_trips_through_parse() {
        let a = SiteId::here();
        let text = a.to_string();
        let parsed = SiteId::parse(&text).expect("well-formed");
        assert_eq!(a, parsed, "parse of our own display must re-intern to us");
    }

    #[test]
    fn parse_foreign_site_is_stable() {
        let x = SiteId::parse("some/other/file.rs:10:5").expect("well-formed");
        let y = SiteId::parse("some/other/file.rs:10:5").expect("well-formed");
        assert_eq!(x, y);
        assert_eq!(x.data().line, 10);
        assert_eq!(x.data().column, 5);
        assert_eq!(x.data().file, "some/other/file.rs");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SiteId::parse("nocolons").is_none());
        assert!(SiteId::parse("file.rs:notanumber:3").is_none());
        assert!(SiteId::parse("file.rs:3:notanumber").is_none());
    }

    #[test]
    fn windows_style_paths_survive() {
        // Files may contain colons; rsplit keeps line/column parsing correct.
        let s = SiteId::parse("C:/src/lib.rs:7:9").expect("well-formed");
        assert_eq!(s.data().file, "C:/src/lib.rs");
        assert_eq!(s.data().line, 7);
    }
}
