//! Happens-before inference from delay propagation (§3.4.4).
//!
//! The crucial observation: if `loc1` happens-before `loc2`, a delay injected
//! right before `loc1` *causes* a proportional delay of `loc2` — e.g. when
//! both are protected by one lock, the delayed thread holds the lock, so the
//! other thread blocks. TSVD therefore watches each thread's access stream
//! for unusually long gaps that overlap an injected delay, and infers a
//! likely HB edge from the delayed location to the blocked location — with no
//! synchronization modeling at all.
//!
//! Concretely (Fig. 6): a delay `d` at `loc1` spans `[t1_start, t1_end]`. A
//! later access at `loc2` by a different thread `Thd2` at time `t2`, whose
//! previous access was at `t0`, yields an inferred edge `loc1 → loc2` iff
//!
//! 1. `t2 − t0 ≥ δ_hb · delay_time` (the gap is long), and
//! 2. `t0 ≤ t1_end` and `t1_start ≤ t2` (the gap overlaps the delay).
//!
//! If several delays qualify, the edge is attributed to the most recently
//! finished one. By transitivity, the next `k_hb` accesses of `Thd2` are also
//! treated as happening after `loc1`.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

use crate::context::ContextId;
use crate::near_miss::SitePair;
use crate::site::SiteId;

/// A finished delay injection, kept for causality attribution.
#[derive(Debug, Clone, Copy)]
pub struct DelayRecord {
    /// Location the delay was injected at.
    pub site: SiteId,
    /// Context that slept.
    pub context: ContextId,
    /// When the delay began, nanoseconds.
    pub start_ns: u64,
    /// When the delay ended, nanoseconds.
    pub end_ns: u64,
}

#[derive(Debug, Default)]
struct ThreadState {
    /// Timestamp of this context's previous access (`t0`), if any.
    last_access_ns: Option<u64>,
    /// Transitivity budget: source site and remaining accesses that inherit
    /// the happens-after edge.
    pending_source: Option<(SiteId, usize)>,
}

struct Inner {
    delays: VecDeque<DelayRecord>,
    threads: HashMap<ContextId, ThreadState>,
    /// All edges inferred so far, as normalized pairs. A pair in this set is
    /// never re-added to the trap set.
    inferred: std::collections::HashSet<SitePair>,
}

/// Happens-before inference engine.
pub struct HbInference {
    inner: Mutex<Inner>,
    /// `δ_hb · delay_time` in nanoseconds.
    gap_ns: u64,
    /// `k_hb`.
    transitivity: usize,
    /// Bound on retained delay records.
    delay_history: usize,
}

impl HbInference {
    /// Creates an engine with the given blocking gap (`δ_hb · delay_time`),
    /// transitivity window `k_hb`, and delay-record retention.
    pub fn new(gap_ns: u64, transitivity: usize, delay_history: usize) -> Self {
        HbInference {
            inner: Mutex::new(Inner {
                delays: VecDeque::new(),
                threads: HashMap::new(),
                inferred: std::collections::HashSet::new(),
            }),
            gap_ns,
            transitivity,
            delay_history: delay_history.max(1),
        }
    }

    /// Records a finished delay so later long gaps can be attributed to it.
    ///
    /// The delaying thread's own "last access" is advanced to the delay's
    /// end: the sleep opens a gap in that thread's access stream which must
    /// not be mistaken for blocking caused by *someone else's* overlapping
    /// delay — otherwise two simultaneously trapped threads would infer a
    /// bogus HB edge between their racy locations and prune the real pair.
    pub fn record_delay(&self, delay: DelayRecord) {
        let mut inner = self.inner.lock();
        let state = inner.threads.entry(delay.context).or_default();
        state.last_access_ns = Some(state.last_access_ns.unwrap_or(0).max(delay.end_ns));
        inner.delays.push_back(delay);
        while inner.delays.len() > self.delay_history {
            inner.delays.pop_front();
        }
    }

    /// Observes an access by `context` at `site` at time `now_ns`, returning
    /// the site pairs newly inferred to be HB-ordered (and therefore to be
    /// pruned from the trap set).
    pub fn on_access(&self, context: ContextId, site: SiteId, now_ns: u64) -> Vec<SitePair> {
        let mut inner = self.inner.lock();
        let mut new_pairs = Vec::new();

        let state = inner.threads.entry(context).or_default();
        let last = state.last_access_ns;
        state.last_access_ns = Some(now_ns);

        // Transitivity: this access inherits a previously inferred source.
        let mut source_for_this_access: Option<SiteId> = None;
        if let Some((src, remaining)) = state.pending_source {
            source_for_this_access = Some(src);
            state.pending_source = if remaining > 1 {
                Some((src, remaining - 1))
            } else {
                None
            };
        }

        // Fresh inference: long gap overlapping a finished delay by another
        // context.
        if let Some(t0) = last {
            if now_ns.saturating_sub(t0) >= self.gap_ns && self.gap_ns > 0 {
                // Attribute to the most recently *finished* qualifying delay.
                let hit = inner
                    .delays
                    .iter()
                    .filter(|d| d.context != context)
                    .filter(|d| t0 <= d.end_ns && d.start_ns <= now_ns)
                    .max_by_key(|d| d.end_ns)
                    .copied();
                if let Some(d) = hit {
                    let state = inner.threads.entry(context).or_default();
                    source_for_this_access = Some(d.site);
                    if self.transitivity > 0 {
                        state.pending_source = Some((d.site, self.transitivity));
                    }
                }
            }
        }

        if let Some(src) = source_for_this_access {
            let pair = SitePair::new(src, site);
            if inner.inferred.insert(pair) {
                new_pairs.push(pair);
            }
        }
        new_pairs
    }

    /// Returns `true` if `pair` has been inferred HB-ordered.
    pub fn is_inferred(&self, pair: SitePair) -> bool {
        self.inner.lock().inferred.contains(&pair)
    }

    /// Total number of inferred edges (stats).
    pub fn inferred_count(&self) -> usize {
        self.inner.lock().inferred.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ms_to_ns;
    use crate::site::SiteData;

    fn site(n: u32) -> SiteId {
        SiteId::intern(SiteData {
            file: "hb_infer_test.rs",
            line: n,
            column: 1,
        })
    }

    /// Gap threshold 50 ms (δ_hb = 0.5 of a 100 ms delay), k_hb = 2.
    fn engine() -> HbInference {
        HbInference::new(ms_to_ns(50), 2, 64)
    }

    #[test]
    fn long_gap_overlapping_delay_infers_edge() {
        let e = engine();
        let t1 = ContextId(1);
        let t2 = ContextId(2);
        // Thd2 establishes its previous access at t0 = 10 ms.
        assert!(e.on_access(t2, site(20), ms_to_ns(10)).is_empty());
        // Thd1 delays at loc1 from 20 ms to 120 ms.
        e.record_delay(DelayRecord {
            site: site(1),
            context: t1,
            start_ns: ms_to_ns(20),
            end_ns: ms_to_ns(120),
        });
        // Thd2's next access at 130 ms: gap 120 ms ≥ 50 ms, t0 ≤ t1_end.
        let pairs = e.on_access(t2, site(21), ms_to_ns(130));
        assert_eq!(pairs, vec![SitePair::new(site(1), site(21))]);
        assert!(e.is_inferred(SitePair::new(site(1), site(21))));
    }

    #[test]
    fn short_gap_infers_nothing() {
        let e = engine();
        let t2 = ContextId(2);
        e.on_access(t2, site(20), ms_to_ns(10));
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: ms_to_ns(5),
            end_ns: ms_to_ns(30),
        });
        // Gap of 25 ms < 50 ms threshold.
        assert!(e.on_access(t2, site(21), ms_to_ns(35)).is_empty());
    }

    #[test]
    fn gap_not_overlapping_delay_infers_nothing() {
        let e = engine();
        let t2 = ContextId(2);
        // Delay finished entirely before Thd2's previous access.
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: 0,
            end_ns: ms_to_ns(5),
        });
        e.on_access(t2, site(20), ms_to_ns(10));
        assert!(e.on_access(t2, site(21), ms_to_ns(200)).is_empty());
    }

    #[test]
    fn self_inflicted_gap_is_not_causality() {
        // Two threads trapped simultaneously: each thread's post-sleep gap
        // is its *own* delay, not evidence of blocking by the other's.
        let e = engine();
        let (t1, t2) = (ContextId(1), ContextId(2));
        e.on_access(t1, site(10), ms_to_ns(1));
        e.on_access(t2, site(20), ms_to_ns(2));
        // Both delay 0–100 ms (overlapping).
        e.record_delay(DelayRecord {
            site: site(10),
            context: t1,
            start_ns: ms_to_ns(3),
            end_ns: ms_to_ns(103),
        });
        e.record_delay(DelayRecord {
            site: site(20),
            context: t2,
            start_ns: ms_to_ns(4),
            end_ns: ms_to_ns(104),
        });
        // Each thread's next access right after its own sleep: the gap is
        // self-inflicted and must not mint an HB edge.
        assert!(e.on_access(t1, site(11), ms_to_ns(104)).is_empty());
        assert!(e.on_access(t2, site(21), ms_to_ns(105)).is_empty());
    }

    #[test]
    fn own_delay_is_not_causality() {
        // A thread's own delay trivially lengthens its gap; it must not be
        // attributed as an HB edge from itself.
        let e = engine();
        let t1 = ContextId(1);
        e.on_access(t1, site(20), ms_to_ns(10));
        e.record_delay(DelayRecord {
            site: site(1),
            context: t1,
            start_ns: ms_to_ns(20),
            end_ns: ms_to_ns(120),
        });
        assert!(e.on_access(t1, site(21), ms_to_ns(130)).is_empty());
    }

    #[test]
    fn first_access_has_no_gap() {
        let e = engine();
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: 0,
            end_ns: ms_to_ns(100),
        });
        // No previous access for Thd2 → no gap → no inference.
        assert!(e
            .on_access(ContextId(2), site(21), ms_to_ns(110))
            .is_empty());
    }

    #[test]
    fn attribution_picks_most_recently_finished_delay() {
        let e = engine();
        let t2 = ContextId(2);
        e.on_access(t2, site(20), ms_to_ns(10));
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: ms_to_ns(15),
            end_ns: ms_to_ns(60),
        });
        e.record_delay(DelayRecord {
            site: site(2),
            context: ContextId(3),
            start_ns: ms_to_ns(20),
            end_ns: ms_to_ns(110),
        });
        let pairs = e.on_access(t2, site(21), ms_to_ns(120));
        assert_eq!(pairs, vec![SitePair::new(site(2), site(21))]);
    }

    #[test]
    fn transitivity_extends_k_accesses() {
        let e = engine(); // k_hb = 2
        let t2 = ContextId(2);
        e.on_access(t2, site(20), ms_to_ns(10));
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: ms_to_ns(20),
            end_ns: ms_to_ns(120),
        });
        // Triggering access inherits the edge...
        let p0 = e.on_access(t2, site(21), ms_to_ns(130));
        assert_eq!(p0.len(), 1);
        // ...and the next k_hb = 2 accesses do as well.
        let p1 = e.on_access(t2, site(22), ms_to_ns(131));
        assert_eq!(p1, vec![SitePair::new(site(1), site(22))]);
        let p2 = e.on_access(t2, site(23), ms_to_ns(132));
        assert_eq!(p2, vec![SitePair::new(site(1), site(23))]);
        // The budget is then exhausted.
        let p3 = e.on_access(t2, site(24), ms_to_ns(133));
        assert!(p3.is_empty());
    }

    #[test]
    fn zero_transitivity_only_marks_trigger() {
        let e = HbInference::new(ms_to_ns(50), 0, 64);
        let t2 = ContextId(2);
        e.on_access(t2, site(20), ms_to_ns(10));
        e.record_delay(DelayRecord {
            site: site(1),
            context: ContextId(1),
            start_ns: ms_to_ns(20),
            end_ns: ms_to_ns(120),
        });
        assert_eq!(e.on_access(t2, site(21), ms_to_ns(130)).len(), 1);
        assert!(e.on_access(t2, site(22), ms_to_ns(131)).is_empty());
    }

    #[test]
    fn duplicate_edges_reported_once() {
        // Zero transitivity so leftover k_hb budget from one round cannot
        // mint extra edges in the next.
        let e = HbInference::new(ms_to_ns(50), 0, 64);
        let t2 = ContextId(2);
        for round in 0..3u64 {
            let base = round * 1_000;
            e.on_access(t2, site(20), ms_to_ns(base + 10));
            e.record_delay(DelayRecord {
                site: site(1),
                context: ContextId(1),
                start_ns: ms_to_ns(base + 20),
                end_ns: ms_to_ns(base + 120),
            });
            let pairs = e.on_access(t2, site(21), ms_to_ns(base + 130));
            if round == 0 {
                assert_eq!(pairs.len(), 1);
            } else {
                assert!(pairs.is_empty(), "edge already known");
            }
        }
        assert_eq!(e.inferred_count(), 1);
    }

    #[test]
    fn delay_history_is_bounded() {
        let e = HbInference::new(ms_to_ns(50), 2, 4);
        for i in 0..100 {
            e.record_delay(DelayRecord {
                site: site(1),
                context: ContextId(1),
                start_ns: i,
                end_ns: i + 1,
            });
        }
        assert!(e.inner.lock().delays.len() <= 4);
    }
}
