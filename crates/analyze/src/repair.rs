//! From detection to repair: classify confirmed violations into fix
//! patterns and render span-anchored patch suggestions.
//!
//! A TSVD report names two sites caught red-handed; this pass answers the
//! question the report leaves open — *what do I change?* Each dynamic
//! violation is joined (by interned [`SiteId`]) against the static site
//! database, pair candidates, and lockset evidence from the analyzer, then
//! classified into one of the recurring fix shapes real concurrency fixes
//! cluster around:
//!
//! - **extend-existing-guard** — one side already runs under a lock; wrap
//!   the other side in the same lock.
//! - **adopt-safe-collection** — the site uses a raw std collection the
//!   escape lint flagged; move to the instrumented wrapper.
//! - **order-by-join** — a main-thread access races a spawned task; join
//!   the handle before the access.
//! - **channel-transfer** — the sender keeps touching a value after
//!   handing it over a channel; move the access above the send.
//! - **narrow-critical-section** — both sides hold locks that do not
//!   exclude each other (different locks, shared read guards, or a guard
//!   region narrower than assumed); unify or upgrade the guard.
//! - **wrap-in-mutex** — no guard anywhere; serialize behind a new mutex.
//! - **generic** — the sites miss the static database entirely; degrade
//!   to a report, never a panic.
//!
//! Suggestions are *rendered* as unified diffs, never applied. Confidence
//! is the static pair's grade scaled by how directly the guard evidence
//! supports the pattern.

use std::collections::{HashMap, HashSet};
use std::path::Path;

use tsvd_core::sink::{normalize_pair, ViolationRecord};
use tsvd_core::suggest::{self, SuggestionRecord, SUGGESTION_SCHEMA_VERSION};
use tsvd_core::SiteId;

use crate::patch::{render_unified, SpanEdit};
use crate::report::{AnalysisReport, Escape, StaticPair, StaticSite};

/// Context lines around each suggested edit.
const DIFF_CONTEXT: u32 = 2;

/// Per-pattern confidence scaling: how directly the evidence backing the
/// pattern supports the suggested edit.
fn pattern_factor(pattern: &str) -> f64 {
    match pattern {
        "extend-existing-guard" => 0.95,
        "adopt-safe-collection" => 0.9,
        "order-by-join" => 0.9,
        "narrow-critical-section" => 0.85,
        "wrap-in-mutex" => 0.8,
        "channel-transfer" => 0.7,
        _ => 0.2,
    }
}

/// Raw std collection → instrumented `tsvd_collections` wrapper.
const RAW_TO_WRAPPER: &[(&str, &str)] = &[
    ("HashMap", "Dictionary"),
    ("HashSet", "HashSet"),
    ("BTreeMap", "SortedList"),
    ("BTreeSet", "SortedSet"),
    ("VecDeque", "Queue"),
    ("LinkedList", "LinkedDeque"),
    ("BinaryHeap", "PriorityQueue"),
];

/// `file:line:column` → (file, line, column).
fn split_site_text(text: &str) -> Option<(String, u32, u32)> {
    let mut it = text.rsplitn(3, ':');
    let column: u32 = it.next()?.parse().ok()?;
    let line: u32 = it.next()?.parse().ok()?;
    let file = it.next()?;
    if file.is_empty() {
        return None;
    }
    Some((file.to_string(), line, column))
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// One classified endpoint of a violation.
struct Endpoint<'a> {
    text: String,
    file: String,
    line: u32,
    site: Option<&'a StaticSite>,
}

/// Everything the classifier produced for one violation, before rendering.
struct Classified {
    pattern: &'static str,
    title: String,
    note: String,
    /// Confidence basis before the pattern factor (the pair grade, or a
    /// fallback when the evidence is dynamic-only).
    basis: f64,
    /// Edits against the anchor file ((line-anchored); empty = no diff.
    edits: Vec<SpanEdit>,
    /// File the edits (and the anchor) live in.
    anchor_file: String,
    anchor_line: u32,
}

/// Infers ranked fix suggestions for `violations` against the analyzer's
/// `report`. `root` is the directory the report's file paths are relative
/// to; source files are read from it to render diffs (an unreadable file
/// degrades the suggestion to diff-less, never an error).
pub fn infer(
    report: &AnalysisReport,
    violations: &[ViolationRecord],
    root: &Path,
) -> Vec<SuggestionRecord> {
    // Site database keyed by interned id: the same interner dynamic sites
    // go through, so textual spellings that normalize differently still
    // join (that is the point of interning).
    let mut sites: HashMap<SiteId, &StaticSite> = HashMap::new();
    for s in &report.sites {
        if let Some(id) = SiteId::parse(&s.site_text()) {
            sites.entry(id).or_insert(s);
        }
    }
    // Pair candidates keyed by interned id pair (normalized order). Kept
    // pairs override pruned ones; a pruned pair that shows up here anyway
    // is a confirmed analysis miss and still deserves a suggestion.
    let mut pairs: HashMap<(SiteId, SiteId), &StaticPair> = HashMap::new();
    for p in report.pruned_pairs.iter().chain(report.pairs.iter()) {
        let (a, b) = normalize_pair(&p.first, &p.second);
        if let (Some(ia), Some(ib)) = (SiteId::parse(&a), SiteId::parse(&b)) {
            pairs.insert((ia, ib), p);
        }
    }
    let escapes: HashMap<(String, u32), &Escape> = report
        .escapes
        .iter()
        .map(|e| ((e.file.clone(), e.line), e))
        .collect();

    let mut sources: HashMap<String, Option<String>> = HashMap::new();
    let mut read_source = |file: &str| -> Option<String> {
        sources
            .entry(file.to_string())
            .or_insert_with(|| std::fs::read_to_string(root.join(file)).ok())
            .clone()
    };

    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut out: Vec<SuggestionRecord> = Vec::new();
    for v in violations {
        let key = normalize_pair(&v.location_trapped, &v.location_hitter);
        if !seen.insert(key.clone()) {
            continue;
        }
        let endpoint = |text: &str| -> Endpoint<'_> {
            let (file, line) = split_site_text(text)
                .map(|(f, l, _)| (f, l))
                .unwrap_or_else(|| (text.to_string(), 0));
            Endpoint {
                text: text.to_string(),
                file,
                line,
                site: SiteId::parse(text).and_then(|id| sites.get(&id)).copied(),
            }
        };
        let a = endpoint(&key.0);
        let b = endpoint(&key.1);
        let pair = match (SiteId::parse(&key.0), SiteId::parse(&key.1)) {
            (Some(ia), Some(ib)) => pairs.get(&(ia, ib)).copied(),
            _ => None,
        };

        let c = classify(&a, &b, pair, &escapes, &mut read_source);
        let diff = if c.edits.is_empty() {
            String::new()
        } else {
            read_source(&c.anchor_file)
                .and_then(|src| render_unified(&c.anchor_file, &src, &c.edits, DIFF_CONTEXT))
                .unwrap_or_default()
        };
        let (span_start, span_end) = c
            .edits
            .iter()
            .map(|e| (e.start, e.start + e.deleted.max(1) - 1))
            .fold(None, |acc: Option<(u32, u32)>, (s, e)| {
                Some(match acc {
                    Some((lo, hi)) => (lo.min(s), hi.max(e)),
                    None => (s, e),
                })
            })
            .unwrap_or((c.anchor_line, c.anchor_line));
        let mut rationale = format!(
            "trapped {} ({}), hitter {} ({})",
            v.location_trapped, v.op_trapped, v.location_hitter, v.op_hitter
        );
        if let Some(p) = pair {
            rationale.push_str(&format!(
                "; static pair: reason {}, guard {}, provenance {}, confidence {:.4}",
                p.reason, p.guard, p.provenance, p.confidence
            ));
            if p.hb_evidence != "none" {
                rationale.push_str(&format!(", hb {}", p.hb_evidence));
            }
        }
        if !c.note.is_empty() {
            rationale.push_str("; ");
            rationale.push_str(&c.note);
        }
        if !c.edits.is_empty() && diff.is_empty() {
            rationale.push_str("; source unavailable, no diff rendered");
        }
        let receiver = pair
            .map(|p| p.receiver.clone())
            .or_else(|| a.site.map(|s| s.receiver.clone()))
            .or_else(|| b.site.map(|s| s.receiver.clone()))
            .unwrap_or_else(|| "?".to_string());
        out.push(SuggestionRecord {
            schema: SUGGESTION_SCHEMA_VERSION,
            pattern: c.pattern.to_string(),
            title: c.title,
            file: c.anchor_file,
            line: c.anchor_line,
            span_start,
            span_end,
            first: key.0,
            second: key.1,
            receiver,
            confidence: round4((c.basis * pattern_factor(c.pattern)).clamp(0.0, 1.0)),
            rationale,
            diff,
        });
    }
    suggest::rank(&mut out);
    out
}

/// The classifier proper. Pure over its inputs except for `read_source`,
/// which pulls file text for the edit scanners.
fn classify(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    pair: Option<&StaticPair>,
    escapes: &HashMap<(String, u32), &Escape>,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // Raw-collection escapes outrank everything: the accesses bypass the
    // detector entirely, so no lock-level fix can be graded for them.
    for e in [a, b] {
        if let Some(esc) = escapes.get(&(e.file.clone(), e.line)) {
            return adopt_safe_collection(esc, pair, read_source);
        }
    }

    let basis = pair.map_or(0.5, |p| {
        if p.confidence > 0.0 {
            p.confidence
        } else {
            // A pruned pair confirmed dynamically: the pruning was wrong,
            // grade the fix on the dynamic evidence alone.
            0.5
        }
    });
    let guard = pair.map(|p| p.guard.as_str()).unwrap_or_else(|| {
        // Dynamic-only pair: synthesize guard evidence from the per-site
        // lock sets recorded in the site database.
        match (a.site, b.site) {
            (Some(sa), Some(sb)) => match (sa.guards.is_empty(), sb.guards.is_empty()) {
                (false, true) | (true, false) => "one-side-guarded",
                (true, true) => "none",
                (false, false) => "inconsistent-locks",
            },
            _ => "unknown",
        }
    });

    if a.site.is_none() && b.site.is_none() {
        return Classified {
            pattern: "generic",
            title: format!(
                "no static context for {} / {}; review the access pair manually",
                a.text, b.text
            ),
            note: "sites missing from the static database".to_string(),
            basis: 1.0,
            edits: Vec::new(),
            anchor_file: a.file.clone(),
            anchor_line: a.line,
        };
    }

    match guard {
        "one-side-guarded" => extend_existing_guard(a, b, basis, read_source),
        "inconsistent-locks" => narrow_unify_locks(a, b, basis, read_source),
        "shared-guard" => narrow_upgrade_read_guard(a, b, basis, read_source),
        g if g.starts_with("both-guarded") => narrow_extend_region(a, b, g, basis, read_source),
        "channel-transfer" => channel_transfer(a, b, basis, read_source),
        _ => {
            // Happens-before evidence steers the ordering patterns: a
            // channel-ordered pair confirmed dynamically means the
            // transfer protocol broke (fix the channel discipline); a
            // join- or scope-ordered one means the assumed completion
            // edge does not actually cover the access (join properly).
            let hb = pair.map(|p| p.hb_evidence.as_str()).unwrap_or("none");
            if hb == "ordered:channel" || hb == "channel-partial" {
                channel_transfer(a, b, basis, read_source)
            } else if hb_join_handle(hb).is_some()
                || hb.starts_with("ordered")
                || hb == "window-scope"
                || pair.map(|p| p.reason.as_str()) == Some("main-vs-spawned")
            {
                order_by_join(a, b, pair, basis, read_source)
            } else {
                wrap_in_mutex(a, b, pair, basis, read_source)
            }
        }
    }
}

/// Extracts the join-handle name from a pair's HB evidence label
/// (`window-join:<handle>` on kept pairs, `ordered:join:<handle>` on
/// pruned-then-confirmed ones).
fn hb_join_handle(evidence: &str) -> Option<&str> {
    evidence
        .strip_prefix("window-join:")
        .or_else(|| evidence.strip_prefix("ordered:join:"))
        .filter(|h| !h.is_empty())
}

fn indent_of(line: &str) -> String {
    line.chars().take_while(|c| c.is_whitespace()).collect()
}

/// The 1-based source line's text, if it exists.
fn line_text(src: &str, line: u32) -> Option<&str> {
    if line == 0 {
        return None;
    }
    src.lines().nth((line - 1) as usize)
}

/// Scans upward from `from` (inclusive) for the nearest line whose text
/// satisfies `pred`; returns (line number, text).
fn scan_up(src: &str, from: u32, pred: impl Fn(&str) -> bool) -> Option<(u32, &str)> {
    let lines: Vec<&str> = src.lines().collect();
    let start = (from as usize).min(lines.len());
    (0..start)
        .rev()
        .map(|i| (i as u32 + 1, lines[i]))
        .find(|(_, text)| pred(text))
}

fn adopt_safe_collection(
    esc: &Escape,
    pair: Option<&StaticPair>,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    let wrapper = RAW_TO_WRAPPER
        .iter()
        .find(|(raw, _)| *raw == esc.name)
        .map(|(_, w)| *w)
        .unwrap_or("Dictionary");
    let mut edits = Vec::new();
    if let Some(src) = read_source(&esc.file) {
        if let Some(text) = line_text(&src, esc.line) {
            if text.contains(&esc.name) {
                edits.push(SpanEdit::replace_line(
                    esc.line,
                    vec![text.replace(&esc.name, wrapper)],
                ));
            }
        }
    }
    Classified {
        pattern: "adopt-safe-collection",
        title: format!(
            "replace raw `{}` with `tsvd_collections::{}` at {}:{}",
            esc.name, wrapper, esc.file, esc.line
        ),
        note: format!(
            "escape lint: raw `{}` via {} in concurrent code ({})",
            esc.name, esc.via, esc.evidence
        ),
        basis: pair.map_or(1.0, |p| p.confidence.max(0.5)),
        edits,
        anchor_file: esc.file.clone(),
        anchor_line: esc.line,
    }
}

fn extend_existing_guard(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // The guarded side names the lock; the unguarded side gets the edit.
    let (guarded, target) = match (a.site, b.site) {
        (Some(sa), _) if !sa.guards.is_empty() => (a, b),
        (_, Some(sb)) if !sb.guards.is_empty() => (b, a),
        _ => (a, b),
    };
    let lock = guarded
        .site
        .map(|s| s.guards.first().cloned().unwrap_or_default())
        .unwrap_or_default();
    let root = lock.split(':').next().unwrap_or("lock").to_string();
    let mut edits = Vec::new();
    if let Some(src) = read_source(&target.file) {
        if let Some(text) = line_text(&src, target.line) {
            let indent = indent_of(text);
            edits.push(SpanEdit::insert_before(
                target.line,
                vec![format!("{indent}let _guard = {root}.lock();")],
            ));
        }
    }
    Classified {
        pattern: "extend-existing-guard",
        title: format!(
            "wrap {} in the `{}` lock already guarding {}",
            target.text, root, guarded.text
        ),
        note: format!("lock evidence on the guarded side: {lock}"),
        basis,
        edits,
        anchor_file: target.file.clone(),
        anchor_line: target.line,
    }
}

fn narrow_unify_locks(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    let lock_of = |e: &Endpoint<'_>| {
        e.site
            .and_then(|s| s.guards.first().cloned())
            .unwrap_or_default()
    };
    let (lock_a, lock_b) = (lock_of(a), lock_of(b));
    let root_a = lock_a.split(':').next().unwrap_or("lock").to_string();
    let root_b = lock_b.split(':').next().unwrap_or("lock").to_string();
    // Rewrite B's guard acquisition to take A's lock.
    let mut edits = Vec::new();
    if let Some(src) = read_source(&b.file) {
        if let Some((line_no, text)) = scan_up(&src, b.line, |t| {
            t.contains(".lock()") || t.contains(".write()") || t.contains(".read()")
        }) {
            let indent = indent_of(text);
            let name = text
                .trim_start()
                .strip_prefix("let ")
                .and_then(|rest| rest.split(['=', ' ', ':']).next())
                .unwrap_or("_guard");
            edits.push(SpanEdit::replace_line(
                line_no,
                vec![format!("{indent}let {name} = {root_a}.lock();")],
            ));
        }
    }
    Classified {
        pattern: "narrow-critical-section",
        title: format!("guard both sides with `{root_a}` (currently `{root_a}` vs `{root_b}`)"),
        note: "the two sides hold different locks, which do not exclude each other".to_string(),
        basis,
        edits,
        anchor_file: b.file.clone(),
        anchor_line: b.line,
    }
}

fn narrow_upgrade_read_guard(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // Both sides hold shared read guards; the writing side needs exclusive.
    let target = match (a.site, b.site) {
        (Some(sa), _) if sa.kind == "write" => a,
        (_, Some(sb)) if sb.kind == "write" => b,
        _ => a,
    };
    let mut edits = Vec::new();
    if let Some(src) = read_source(&target.file) {
        if let Some((line_no, text)) = scan_up(&src, target.line, |t| t.contains(".read()")) {
            edits.push(SpanEdit::replace_line(
                line_no,
                vec![text.replace(".read()", ".write()")],
            ));
        }
    }
    Classified {
        pattern: "narrow-critical-section",
        title: format!(
            "upgrade the shared read guard to a write guard around {}",
            target.text
        ),
        note: "two read guards on the same lock do not exclude each other".to_string(),
        basis,
        edits,
        anchor_file: target.file.clone(),
        anchor_line: target.line,
    }
}

fn narrow_extend_region(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    guard: &str,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // Pruned as both-guarded yet dynamically confirmed: the shared guard's
    // region must be narrower than the analysis assumed. Re-acquire it at
    // the later site.
    let root = guard.split(':').nth(1).unwrap_or("lock").to_string();
    let target = if (b.file.as_str(), b.line) >= (a.file.as_str(), a.line) {
        b
    } else {
        a
    };
    let mut edits = Vec::new();
    if let Some(src) = read_source(&target.file) {
        if let Some(text) = line_text(&src, target.line) {
            let indent = indent_of(text);
            edits.push(SpanEdit::insert_before(
                target.line,
                vec![format!("{indent}let _guard = {root}.lock();")],
            ));
        }
    }
    Classified {
        pattern: "narrow-critical-section",
        title: format!(
            "the `{root}` critical section does not cover {}; re-acquire it there",
            target.text
        ),
        note: "statically pruned as both-guarded, yet confirmed dynamically — the guard \
               region is narrower than assumed"
            .to_string(),
        basis,
        edits,
        anchor_file: target.file.clone(),
        anchor_line: target.line,
    }
}

fn channel_transfer(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // The sender keeps using the value after tx.send(..): move the access
    // above the transfer. Target = the endpoint with a send above it.
    let mut chosen: Option<(&Endpoint<'_>, u32, String, String)> = None;
    for e in [a, b] {
        if let Some(src) = read_source(&e.file) {
            if let Some((send_line, send_text)) = scan_up(&src, e.line, |t| t.contains(".send(")) {
                if let Some(access_text) = line_text(&src, e.line) {
                    chosen = Some((e, send_line, send_text.to_string(), access_text.to_string()));
                    break;
                }
            }
        }
    }
    let Some((target, send_line, _send_text, access_text)) = chosen else {
        return Classified {
            pattern: "channel-transfer",
            title: format!(
                "ownership of the value racing at {} / {} was channel-transferred; \
                 stop accessing it after the send",
                a.text, b.text
            ),
            note: "no `.send(` found near either site to anchor an edit".to_string(),
            basis,
            edits: Vec::new(),
            anchor_file: a.file.clone(),
            anchor_line: a.line,
        };
    };
    let edits = vec![
        SpanEdit::insert_before(send_line, vec![access_text]),
        SpanEdit::delete_line(target.line),
    ];
    Classified {
        pattern: "channel-transfer",
        title: format!(
            "move the post-send access at {} above the channel transfer",
            target.text
        ),
        note: "the sender must not touch a value after handing it over the channel".to_string(),
        basis,
        edits,
        anchor_file: target.file.clone(),
        anchor_line: target.line,
    }
}

fn order_by_join(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    pair: Option<&StaticPair>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    // The main-thread side is the one at region 0 (outside every spawn).
    let main = match (a.site, b.site) {
        (Some(sa), _) if sa.region == 0 => a,
        (_, Some(sb)) if sb.region == 0 => b,
        _ => a,
    };
    let mut edits = Vec::new();
    let mut note = String::new();
    // The HB pass already resolved which `let` binds the spawn handle;
    // trust its name over the textual scan when it recorded one.
    let hb_handle = pair.and_then(|p| hb_join_handle(&p.hb_evidence));
    if let Some(src) = read_source(&main.file) {
        if let Some(name) = hb_handle {
            let site_indent = line_text(&src, main.line)
                .map(indent_of)
                .unwrap_or_default();
            edits.push(SpanEdit::insert_before(
                main.line,
                vec![format!("{site_indent}let _ = {name}.join();")],
            ));
            note = format!("join handle `{name}` identified by the happens-before pass");
        } else if let Some((spawn_line, spawn_text)) =
            scan_up(&src, main.line, |t| t.contains(".spawn("))
        {
            let indent = indent_of(spawn_text);
            let site_indent = line_text(&src, main.line)
                .map(indent_of)
                .unwrap_or_default();
            let handle = spawn_text
                .trim_start()
                .strip_prefix("let ")
                .and_then(|rest| rest.split(['=', ' ', ':']).next())
                .filter(|n| !n.is_empty());
            match handle {
                Some(name) => {
                    edits.push(SpanEdit::insert_before(
                        main.line,
                        vec![format!("{site_indent}let _ = {name}.join();")],
                    ));
                    note = format!("spawned handle `{name}` bound at line {spawn_line}");
                }
                None => {
                    // The handle is dropped on the floor; bind it first.
                    edits.push(SpanEdit::replace_line(
                        spawn_line,
                        vec![format!(
                            "{indent}let _join_handle = {}",
                            spawn_text.trim_start()
                        )],
                    ));
                    edits.push(SpanEdit::insert_before(
                        main.line,
                        vec![format!("{site_indent}let _ = _join_handle.join();")],
                    ));
                    note =
                        format!("spawn at line {spawn_line} discards its handle; bind it to join");
                }
            }
        }
    }
    Classified {
        pattern: "order-by-join",
        title: format!(
            "join the spawned task before the main-thread access at {}",
            main.text
        ),
        note,
        basis,
        edits,
        anchor_file: main.file.clone(),
        anchor_line: main.line,
    }
}

fn wrap_in_mutex(
    a: &Endpoint<'_>,
    b: &Endpoint<'_>,
    pair: Option<&StaticPair>,
    basis: f64,
    read_source: &mut dyn FnMut(&str) -> Option<String>,
) -> Classified {
    let receiver = pair
        .map(|p| p.receiver.clone())
        .or_else(|| a.site.map(|s| s.receiver.clone()))
        .unwrap_or_else(|| "shared".to_string());
    let anchor = a;
    let mut edits = Vec::new();
    let mut note = String::new();
    if let Some(src) = read_source(&anchor.file) {
        // New mutex next to the receiver's constructor, one guard
        // acquisition before each racing site in this file.
        let ctor = scan_up(&src, anchor.line, |t| {
            let t = t.trim_start();
            t.starts_with(&format!("let {receiver} "))
                || t.starts_with(&format!("let {receiver}="))
                || t.starts_with(&format!("let mut {receiver} "))
                || t.starts_with(&format!("let mut {receiver}="))
        })
        .or_else(|| {
            let first_let = format!("let {receiver}");
            src.lines()
                .enumerate()
                .map(|(i, t)| (i as u32 + 1, t))
                .find(|(_, t)| t.trim_start().starts_with(&first_let))
        });
        if let Some((ctor_line, ctor_text)) = ctor {
            let indent = indent_of(ctor_text);
            edits.push(SpanEdit::insert_before(
                ctor_line + 1,
                vec![format!("{indent}let {receiver}_mu = TsvdMutex::new(());")],
            ));
            note = format!("`{receiver}` constructed at line {ctor_line} with no guard anywhere");
        }
        let mut site_lines: Vec<u32> = [a, b]
            .iter()
            .filter(|e| e.file == anchor.file && e.line > 0)
            .map(|e| e.line)
            .collect();
        site_lines.sort_unstable();
        site_lines.dedup();
        for line in site_lines {
            if let Some(text) = line_text(&src, line) {
                let indent = indent_of(text);
                edits.push(SpanEdit::insert_before(
                    line,
                    vec![format!("{indent}let _g = {receiver}_mu.lock();")],
                ));
            }
        }
    }
    Classified {
        pattern: "wrap-in-mutex",
        title: format!("serialize accesses to `{receiver}` behind a new mutex"),
        note,
        basis,
        edits,
        anchor_file: anchor.file.clone(),
        anchor_line: anchor.line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_site_text_parses_and_rejects() {
        assert_eq!(
            split_site_text("a/b.rs:12:7"),
            Some(("a/b.rs".to_string(), 12, 7))
        );
        assert_eq!(split_site_text("garbage"), None);
        assert_eq!(split_site_text(":1:2"), None);
    }

    #[test]
    fn pattern_factors_are_graded() {
        assert!(pattern_factor("extend-existing-guard") > pattern_factor("wrap-in-mutex"));
        assert!(pattern_factor("wrap-in-mutex") > pattern_factor("channel-transfer"));
        assert!(pattern_factor("generic") < pattern_factor("channel-transfer"));
    }
}
