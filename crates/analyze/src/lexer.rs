//! A hand-rolled Rust token scanner.
//!
//! The build environment is offline, so there is no `syn`/`proc-macro2`;
//! a full parser is also more weight than the analyses need. The scanner
//! produces a flat token stream with 1-based line/column positions that
//! match what `#[track_caller]` records at run time (for ASCII source,
//! rustc's column is the 1-based character offset), which is what lets the
//! static site database line up with dynamic [`tsvd_core::SiteId`]s.
//!
//! Handled: line and nested block comments, plain / raw / byte string
//! literals, char literals vs. lifetimes, identifiers, numbers, and
//! single-character punctuation. Not handled (not needed): float tokens
//! (`1.5` lexes as two numbers and a dot) and multi-character operators
//! (`::` is two `:` tokens).

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (the char is in [`Token::text`]).
    Punct,
    /// String literal (text is the raw content, quotes stripped).
    Str,
    /// Char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Number literal (integer part only; no dots consumed).
    Num,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// Identifier text, punctuation char, or literal content.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
}

impl Token {
    /// Returns `true` for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// Returns `true` for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Lexes `src` into a token stream. Never fails: malformed input degrades
/// to punctuation tokens rather than aborting the analysis of a file.
pub fn tokenize(src: &str) -> Vec<Token> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        match c {
            c if c.is_whitespace() => bump!(),
            '/' if i + 1 < chars.len() && chars[i + 1] == '/' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '/' if i + 1 < chars.len() && chars[i + 1] == '*' => {
                bump!();
                bump!();
                let mut depth = 1u32;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        bump!();
                        bump!();
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        bump!();
                        bump!();
                    } else {
                        bump!();
                    }
                }
            }
            '"' => {
                bump!();
                let mut text = String::new();
                while i < chars.len() && chars[i] != '"' {
                    if chars[i] == '\\' && i + 1 < chars.len() {
                        text.push(chars[i]);
                        bump!();
                    }
                    text.push(chars[i]);
                    bump!();
                }
                if i < chars.len() {
                    bump!(); // closing quote
                }
                toks.push(Token {
                    kind: TokKind::Str,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            'r' if is_raw_ident_start(&chars, i) => {
                // Raw identifier: `r#type`, `r#async` — one ident token
                // whose text keeps the `r#` prefix (that is how the source
                // spells the name everywhere else too).
                let mut text = String::new();
                text.push(chars[i]);
                bump!();
                text.push(chars[i]);
                bump!();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            'r' | 'b' if is_raw_string_start(&chars, i) => {
                // r"..", r#"..."#, br".." etc.
                while i < chars.len() && (chars[i] == 'r' || chars[i] == 'b') {
                    bump!();
                }
                let mut hashes = 0usize;
                while i < chars.len() && chars[i] == '#' {
                    hashes += 1;
                    bump!();
                }
                if i < chars.len() && chars[i] == '"' {
                    bump!();
                    let mut text = String::new();
                    'raw: while i < chars.len() {
                        if chars[i] == '"' {
                            // Need `hashes` trailing #s to close.
                            let mut ok = true;
                            for k in 0..hashes {
                                if chars.get(i + 1 + k) != Some(&'#') {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                bump!();
                                for _ in 0..hashes {
                                    bump!();
                                }
                                break 'raw;
                            }
                        }
                        text.push(chars[i]);
                        bump!();
                    }
                    toks.push(Token {
                        kind: TokKind::Str,
                        text,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            '\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let is_lifetime = i + 1 < chars.len()
                    && (chars[i + 1].is_alphabetic() || chars[i + 1] == '_')
                    && {
                        // Scan past the ident run; a closing quote means char.
                        let mut j = i + 1;
                        while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                            j += 1;
                        }
                        chars.get(j) != Some(&'\'')
                    };
                if is_lifetime {
                    bump!();
                    let mut text = String::new();
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        text,
                        line: tline,
                        col: tcol,
                    });
                } else {
                    bump!();
                    let mut text = String::new();
                    while i < chars.len() && chars[i] != '\'' {
                        if chars[i] == '\\' && i + 1 < chars.len() {
                            text.push(chars[i]);
                            bump!();
                        }
                        text.push(chars[i]);
                        bump!();
                    }
                    if i < chars.len() {
                        bump!();
                    }
                    toks.push(Token {
                        kind: TokKind::Char,
                        text,
                        line: tline,
                        col: tcol,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                toks.push(Token {
                    kind: TokKind::Num,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            c => {
                bump!();
                toks.push(Token {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    toks
}

/// Does a raw identifier (`r#ident`) start at `i`? Disjoint from raw
/// strings: after the single `#` comes an ident start, never a quote (a
/// raw string is `r#"` / `r##"` — quote or more hashes after the first).
fn is_raw_ident_start(chars: &[char], i: usize) -> bool {
    chars[i] == 'r'
        && chars.get(i + 1) == Some(&'#')
        && chars
            .get(i + 2)
            .is_some_and(|c| c.is_alphabetic() || *c == '_')
}

/// Does a raw/byte string literal start at `i`? (`r"`, `r#`, `br"`, `b"`.)
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    // `b"..."` byte string (no r).
    chars[i] == 'b' && chars.get(i + 1) == Some(&'"')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokenize(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn positions_are_one_based_chars() {
        let toks = tokenize("let d = x.add(1);");
        let add = toks.iter().find(|t| t.is_ident("add")).expect("add");
        assert_eq!(add.line, 1);
        assert_eq!(add.col, 11, "column of the method ident");
    }

    #[test]
    fn multiline_positions() {
        let toks = tokenize("fn f() {\n    d.set(1, 2);\n}\n");
        let set = toks.iter().find(|t| t.is_ident("set")).expect("set");
        assert_eq!(set.line, 2);
        assert_eq!(set.col, 7);
    }

    #[test]
    fn comments_are_skipped_including_nested() {
        let src = "a // line d.add(1)\nb /* block /* nested */ still */ c";
        assert_eq!(idents(src), vec!["a", "b", "c"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r#"before "d.add(1) // not code \" quote" after"#;
        assert_eq!(idents(src), vec!["before", "after"]);
        let s = tokenize(src)
            .into_iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("string");
        assert!(s.text.contains("not code"));
    }

    #[test]
    fn raw_strings_are_single_tokens() {
        let src = "x r#\"inner \"quoted\" text\"# y";
        assert_eq!(idents(src), vec!["x", "y"]);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = tokenize("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn raw_strings_nested_in_macro_invocations() {
        // The raw string lives inside a macro call, surrounded by macro
        // punctuation; its quotes and inner `d.add` must not leak tokens.
        let src = "write!(out, r#\"d.add(1) \"quoted\" end\"#).unwrap(); tail";
        assert_eq!(idents(src), vec!["write", "out", "unwrap", "tail"]);
        let s = tokenize(src)
            .into_iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("raw string literal");
        assert!(s.text.contains("\"quoted\""));
        // Multi-hash raw strings terminate on the matching hash count, not
        // the first `"#` inside.
        let src2 = "a r##\"one \"# two\"## b";
        assert_eq!(idents(src2), vec!["a", "b"]);
    }

    #[test]
    fn raw_identifiers_lex_as_single_idents() {
        // `r#type` must not split into `r` / `#` / `type`.
        assert_eq!(
            idents("let r#type = 1; r#async.set(1, 2);"),
            vec!["let", "r#type", "r#async", "set"]
        );
        let toks = tokenize("let r#type = 1;");
        let t = toks.iter().find(|t| t.is_ident("r#type")).expect("raw id");
        assert_eq!((t.line, t.col), (1, 5), "position of the `r`");
        assert!(!toks.iter().any(|t| t.is_punct('#')), "no stray hash token");
    }

    #[test]
    fn raw_identifiers_do_not_shadow_raw_strings() {
        // `r#"..."#` (quote after the hash) is still a raw string, and a
        // raw ident immediately followed by one keeps both tokens intact.
        let toks = tokenize("r#match r#\"text\"# r\"plain\"");
        assert_eq!(idents("r#match r#\"text\"# r\"plain\""), vec!["r#match"]);
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].text, "text");
        assert_eq!(strs[1].text, "plain");
    }

    #[test]
    fn doubly_nested_block_comments() {
        let src = "a /* one /* two /* three */ still */ still */ b";
        assert_eq!(idents(src), vec!["a", "b"]);
        // An unterminated inner comment swallows the rest of the file
        // without panicking.
        let src2 = "a /* open /* never closed";
        assert_eq!(idents(src2), vec!["a"]);
    }

    #[test]
    fn op_name_string_content_is_captured() {
        let toks = tokenize(r#"self.inner.write(site, "Dictionary.add", |m| m)"#);
        let s = toks
            .into_iter()
            .find(|t| t.kind == TokKind::Str)
            .expect("op name literal");
        assert_eq!(s.text, "Dictionary.add");
    }
}
