//! Per-crate call graph and function summaries: the interprocedural layer.
//!
//! The line-level pass in [`analysis`](crate::analysis) only sees receivers
//! whose constructor is lexically in scope. Real code moves shared handles
//! through helpers — `fn bump(d: &Dictionary<u64, u64>, k: u64)` — and the
//! provenance would die at the call boundary. This module summarizes every
//! `fn` item once (which wrapper-typed parameters it touches, how, and
//! under which locks; what wrapper class it returns; whom it calls) and
//! closes the summaries transitively, so a call site with a tracked
//! argument can materialize the callee's accesses as if they were inlined.
//!
//! Same token-level spirit as the rest of the crate: summaries are
//! heuristic, bounded (the fixed point caps at [`MAX_HOPS`] call-graph
//! hops), and resolve callees by bare name — same file first, then a
//! unique global match; ambiguous names are skipped rather than guessed.

use std::collections::HashMap;

use tsvd_core::access::classify_op;
use tsvd_core::OpKind;

use crate::analysis::{MULTI_SPAWN_CALLS, SPAWN_CALLS};
use crate::lexer::{tokenize, TokKind, Token};

/// Synchronization wrapper type names recognized in parameter positions.
pub const LOCK_TYPES: &[&str] = &["Mutex", "RwLock", "TsvdMutex"];

/// Transitive-propagation cap: ops further than this many call hops from a
/// summarized function are dropped (their provenance grade would be noise
/// anyway — see the confidence formula in DESIGN.md).
pub const MAX_HOPS: u32 = 8;

/// How a guard serializes its critical section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// `lock()` / `write()`: mutual exclusion with every other guard.
    Exclusive,
    /// `read()`: excludes writers only.
    Shared,
}

/// One declared parameter of a summarized function.
#[derive(Debug, Clone)]
pub struct Param {
    /// Declared parameter name.
    pub name: String,
    /// Instrumented-collection class when the type annotation names one
    /// (through `&`, `&mut`, `Arc<...>`); `None` otherwise.
    pub class: Option<&'static str>,
    /// Whether the type annotation names a lock wrapper.
    pub lock: bool,
}

/// One access a function performs (directly or transitively) on one of its
/// wrapper-typed parameters.
#[derive(Debug, Clone)]
pub struct ParamOp {
    /// Index of the accessed parameter in [`FnSummary::params`].
    pub param: usize,
    /// The parameter's collection class at the op (callee's declaration).
    pub class: &'static str,
    /// Method name at the access site.
    pub method: String,
    /// Read or write, per the shared API table.
    pub kind: OpKind,
    /// Where the access happens — the *callee's* file and the method
    /// ident's position, i.e. exactly what `#[track_caller]` reports when
    /// the wrapper executes.
    pub file: String,
    /// 1-based line of the method ident.
    pub line: u32,
    /// 1-based column of the method ident.
    pub col: u32,
    /// `Some((callee-local region id, multi))` when the op runs inside a
    /// task the summarized function itself spawns.
    pub spawned: Option<(u32, bool)>,
    /// Lock-typed parameter whose guard is held at the op, with its mode.
    pub lock_param: Option<(usize, GuardMode)>,
    /// Call hops between the summarized fn and the op (0 = own body).
    pub hops: u32,
}

/// One outgoing call with its bare-ident argument names by position
/// (`None` for arguments too complex to name).
#[derive(Debug, Clone)]
pub struct CallEdge {
    /// Bare callee name.
    pub callee: String,
    /// Argument names by position.
    pub args: Vec<Option<String>>,
}

/// Everything the interprocedural layer knows about one `fn` item.
#[derive(Debug, Clone, Default)]
pub struct FnSummary {
    /// File the `fn` item lives in (root-relative, forward slashes).
    pub file: String,
    /// Bare function name.
    pub name: String,
    /// Declared parameters, in order.
    pub params: Vec<Param>,
    /// Wrapper class of the return type, if any: `let d = make_dict();`
    /// gives `d` this class (constructor-return provenance).
    pub returns_class: Option<&'static str>,
    /// Accesses to wrapper-typed parameters, own body and propagated.
    pub ops: Vec<ParamOp>,
    /// Outgoing calls with bare-ident arguments.
    pub calls: Vec<CallEdge>,
}

/// All function summaries of one analysis run, indexed by bare name.
#[derive(Debug, Default)]
pub struct Summaries {
    by_name: HashMap<String, Vec<FnSummary>>,
}

impl Summaries {
    /// Builds and transitively closes summaries over `(file, source)`
    /// pairs. `file` must be the same root-relative forward-slash path the
    /// per-file analysis uses — it is embedded in materialized sites.
    pub fn build(files: &[(String, String)]) -> Self {
        Self::from_fragments(
            files
                .iter()
                .flat_map(|(file, src)| Self::file_fragments(file, src)),
        )
    }

    /// Parses one file's pre-propagation function summaries — the per-file
    /// unit the incremental cache stores, independent of every other file.
    pub fn file_fragments(file: &str, src: &str) -> Vec<FnSummary> {
        let toks = tokenize(src);
        let mut out = Vec::new();
        let mut i = 0;
        while i < toks.len() {
            if toks[i].is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
                if let Some((summary, next)) = parse_fn(file, &toks, i) {
                    out.push(summary);
                    i = next;
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// Assembles a summary set from per-file fragments (fresh or cached)
    /// and transitively closes it. Propagation is a whole-tree fixed point,
    /// so it always reruns — only the parse is cacheable per file.
    pub fn from_fragments(fragments: impl IntoIterator<Item = FnSummary>) -> Self {
        let mut by_name: HashMap<String, Vec<FnSummary>> = HashMap::new();
        for summary in fragments {
            by_name
                .entry(summary.name.clone())
                .or_default()
                .push(summary);
        }
        let mut s = Summaries { by_name };
        s.propagate();
        s
    }

    /// Resolves a bare callee name from `file`: a unique same-file match
    /// first, then a unique global one. Ambiguity resolves to `None` — a
    /// wrong summary is worse than no summary.
    pub fn lookup(&self, file: &str, name: &str) -> Option<&FnSummary> {
        let all = self.by_name.get(name)?;
        let mut same_file = all.iter().filter(|s| s.file == file);
        if let (Some(s), None) = (same_file.next(), same_file.next()) {
            return Some(s);
        }
        if let [only] = all.as_slice() {
            return Some(only);
        }
        None
    }

    /// Number of summarized functions (tests / stats).
    pub fn len(&self) -> usize {
        self.by_name.values().map(Vec::len).sum()
    }

    /// Whether no function was summarized.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Transitive closure: a call passing my parameter onward inherits the
    /// callee's ops on it, one hop further out. Bounded fixed point —
    /// recursion and cycles converge because the (param, site) dedupe key
    /// stops re-insertion and hops cap at [`MAX_HOPS`].
    fn propagate(&mut self) {
        for _round in 0..MAX_HOPS {
            let snapshot = self.by_name.clone();
            let mut changed = false;
            for summaries in self.by_name.values_mut() {
                for summary in summaries.iter_mut() {
                    let calls = summary.calls.clone();
                    for call in &calls {
                        let resolved = lookup_in(&snapshot, &summary.file, &call.callee);
                        let Some(callee) = resolved else {
                            continue;
                        };
                        for op in &callee.ops {
                            if op.hops + 1 > MAX_HOPS {
                                continue;
                            }
                            let Some(arg) = call.args.get(op.param).and_then(|a| a.as_deref())
                            else {
                                continue;
                            };
                            let Some(pidx) = summary.params.iter().position(|p| p.name == arg)
                            else {
                                continue;
                            };
                            if summary.params[pidx].class != Some(op.class) {
                                continue;
                            }
                            let lock_param = op.lock_param.and_then(|(q, mode)| {
                                let lock_arg = call.args.get(q)?.as_deref()?;
                                let lp = summary
                                    .params
                                    .iter()
                                    .position(|p| p.name == lock_arg && p.lock)?;
                                Some((lp, mode))
                            });
                            let dup = summary.ops.iter().any(|o| {
                                o.param == pidx
                                    && o.file == op.file
                                    && o.line == op.line
                                    && o.col == op.col
                            });
                            if dup {
                                continue;
                            }
                            summary.ops.push(ParamOp {
                                param: pidx,
                                lock_param,
                                hops: op.hops + 1,
                                ..op.clone()
                            });
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Non-borrowing variant of [`Summaries::lookup`] for the propagation loop.
fn lookup_in<'a>(
    by_name: &'a HashMap<String, Vec<FnSummary>>,
    file: &str,
    name: &str,
) -> Option<&'a FnSummary> {
    let all = by_name.get(name)?;
    let mut same_file = all.iter().filter(|s| s.file == file);
    if let (Some(s), None) = (same_file.next(), same_file.next()) {
        return Some(s);
    }
    if let [only] = all.as_slice() {
        return Some(only);
    }
    None
}

/// Index of the `)` matching the `(` at `open`.
pub(crate) fn matching_paren(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Index of the `}` matching the `{` at `open`.
fn matching_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Wrapper class named by a type-annotation token run, if any. `std` or
/// `raw` segments disqualify — those are the uninstrumented types the
/// escape lint exists for, not provenance.
fn type_class(toks: &[Token]) -> Option<&'static str> {
    if toks.iter().any(|t| t.is_ident("std") || t.is_ident("raw")) {
        return None;
    }
    toks.iter()
        .filter(|t| t.kind == TokKind::Ident)
        .find_map(|t| {
            tsvd_core::access::api_classes()
                .into_iter()
                .find(|c| *c == t.text)
        })
}

fn type_is_lock(toks: &[Token]) -> bool {
    toks.iter()
        .any(|t| t.kind == TokKind::Ident && LOCK_TYPES.contains(&t.text.as_str()))
}

/// Parses the parameter list between (exclusive) the fn's parens.
fn parse_params(toks: &[Token]) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut slices: Vec<&[Token]> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            slices.push(&toks[start..i]);
            start = i + 1;
        }
    }
    if start < toks.len() {
        slices.push(&toks[start..]);
    }
    for slice in slices {
        // `self` receivers carry no usable name or annotation.
        let colon = slice.iter().position(|t| t.is_punct(':'));
        let Some(colon) = colon else { continue };
        let name = slice[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokKind::Ident && t.text != "mut");
        let Some(name) = name else { continue };
        let ty = &slice[colon + 1..];
        params.push(Param {
            name: name.text.clone(),
            class: type_class(ty),
            lock: type_is_lock(ty),
        });
    }
    params
}

/// Bare-ident argument names by position inside the call parens at `open`.
pub(crate) fn call_args(toks: &[Token], open: usize) -> Vec<Option<String>> {
    let Some(close) = matching_paren(toks, open) else {
        return Vec::new();
    };
    let inner = &toks[open + 1..close];
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    let push = |slice: &[Token], args: &mut Vec<Option<String>>| {
        if !slice.is_empty() {
            args.push(bare_arg_name(slice));
        }
    };
    for (i, t) in inner.iter().enumerate() {
        if t.is_punct('(') || t.is_punct('<') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct('>') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            push(&inner[start..i], &mut args);
            start = i + 1;
        }
    }
    push(&inner[start..], &mut args);
    args
}

/// The single binding name an argument expression denotes, when it is one
/// of the aliasing-preserving shapes: `x`, `&x`, `&mut x`, `x.clone()`,
/// `&x.clone()`, `Arc::clone(&x)`.
fn bare_arg_name(toks: &[Token]) -> Option<String> {
    let idents: Vec<&Token> = toks.iter().filter(|t| t.kind == TokKind::Ident).collect();
    match idents.as_slice() {
        [x] if toks.len() <= 3 => Some(x.text.clone()),
        [x, m] if m.is_ident("clone") => Some(x.text.clone()),
        [m, x] if m.is_ident("mut") => Some(x.text.clone()),
        [a, c, x] if a.is_ident("Arc") && c.is_ident("clone") => Some(x.text.clone()),
        _ => None,
    }
}

/// Parses one `fn` item starting at `fn_idx`; returns the summary and the
/// token index scanning should resume from (just inside the body, so
/// nested items are discovered by the outer scan).
fn parse_fn(file: &str, toks: &[Token], fn_idx: usize) -> Option<(FnSummary, usize)> {
    let name = toks.get(fn_idx + 1)?.text.clone();
    let mut i = fn_idx + 2;
    if toks.get(i)?.is_punct('<') {
        let mut depth = 1usize;
        i += 1;
        while i < toks.len() && depth > 0 {
            if toks[i].is_punct('<') {
                depth += 1;
            } else if toks[i].is_punct('>') {
                depth -= 1;
            }
            i += 1;
        }
    }
    if !toks.get(i)?.is_punct('(') {
        return None;
    }
    let params_open = i;
    let params_close = matching_paren(toks, params_open)?;
    let params = parse_params(&toks[params_open + 1..params_close]);

    i = params_close + 1;
    let mut ret_start = None;
    let mut ret_end = None;
    while i < toks.len() && !toks[i].is_punct('{') {
        if toks[i].is_punct(';') {
            // Trait-method declaration: signature only, no body.
            let summary = FnSummary {
                file: file.to_string(),
                name,
                params,
                ..FnSummary::default()
            };
            return Some((summary, i + 1));
        }
        // Only the first arrow before any `where` is the return type; a
        // later `->` belongs to a closure bound (`where F: Fn() -> T`).
        if toks[i].is_punct('-')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('>'))
            && ret_start.is_none()
            && ret_end.is_none()
        {
            ret_start = Some(i + 2);
        }
        if toks[i].is_ident("where") && ret_end.is_none() {
            ret_end = Some(i);
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let body_open = i;
    let returns_class = ret_start
        .map(|s| (s, ret_end.unwrap_or(body_open)))
        .filter(|&(s, e)| s <= e)
        .and_then(|(s, e)| type_class(&toks[s..e]));
    let body_close = matching_brace(toks, body_open)?;

    let mut summary = FnSummary {
        file: file.to_string(),
        name,
        params,
        returns_class,
        ops: Vec::new(),
        calls: Vec::new(),
    };
    summarize_body(&mut summary, toks, body_open, body_close);
    Some((summary, body_open + 1))
}

/// Rust keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "else",
];

/// Fills `ops` and `calls` from the body extent `(body_open, body_close)`.
fn summarize_body(summary: &mut FnSummary, toks: &[Token], body_open: usize, body_close: usize) {
    let param_idx: HashMap<&str, usize> = summary
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();

    // Same region machinery as the per-file pass, scoped to this body.
    let mut regions: Vec<bool> = Vec::new(); // region id -> multi
    let mut parens: Vec<Option<u32>> = Vec::new();
    let mut braces: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    // Active param-lock guards: (brace depth at creation, param, mode).
    let mut guards: Vec<(usize, usize, GuardMode)> = Vec::new();

    let mut i = body_open + 1;
    while i < body_close {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                // Nested items get their own summary from the outer scan;
                // attributing their body to this fn would be wrong.
                "fn" => {
                    let mut j = i + 1;
                    while j < body_close && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    if j < body_close && toks[j].is_punct('{') {
                        if let Some(close) = matching_brace(toks, j) {
                            i = close + 1;
                            continue;
                        }
                    }
                    i = j + 1;
                    continue;
                }
                "for" | "while" | "loop" => {
                    let stmt_pos = i == body_open + 1
                        || matches!(&toks[i - 1], p if p.is_punct('{')
                            || p.is_punct('}')
                            || p.is_punct(';')
                            || p.is_punct(')'));
                    if stmt_pos {
                        pending_loop = true;
                    }
                }
                "let" => {
                    if let Some((param, mode)) = parse_param_guard(toks, i, &param_idx) {
                        guards.push((braces.len(), param, mode));
                    }
                }
                _ => {}
            },
            TokKind::Punct => match t.text.as_bytes().first() {
                Some(b'(') => {
                    // Param access: `p . method (`.
                    if i >= 3
                        && toks[i - 1].kind == TokKind::Ident
                        && toks[i - 2].is_punct('.')
                        && toks[i - 3].kind == TokKind::Ident
                    {
                        if let Some(&pidx) = param_idx.get(toks[i - 3].text.as_str()) {
                            if let Some(class) = summary.params[pidx].class {
                                let method = &toks[i - 1];
                                let op = format!("{class}.{}", method.text);
                                if let Some(kind) = classify_op(&op) {
                                    let spawned = parens
                                        .iter()
                                        .rev()
                                        .find_map(|p| *p)
                                        .map(|id| (id, regions[id as usize]));
                                    let lock_param = guards.last().map(|&(_, p, m)| (p, m));
                                    summary.ops.push(ParamOp {
                                        param: pidx,
                                        class,
                                        method: method.text.clone(),
                                        kind,
                                        file: summary.file.clone(),
                                        line: method.line,
                                        col: method.col,
                                        spawned,
                                        lock_param,
                                        hops: 0,
                                    });
                                }
                            }
                        }
                    }
                    // Spawn extents and plain calls.
                    let prev_ident = toks
                        .get(i.wrapping_sub(1))
                        .filter(|p| p.kind == TokKind::Ident)
                        .map(|p| p.text.as_str());
                    let after_path =
                        i >= 2 && (toks[i - 2].is_punct('.') || toks[i - 2].is_punct(':'));
                    let is_spawn = prev_ident.is_some_and(|s| SPAWN_CALLS.contains(&s));
                    if is_spawn {
                        let in_loop = braces.iter().any(|&l| l);
                        let multi =
                            in_loop || prev_ident.is_some_and(|s| MULTI_SPAWN_CALLS.contains(&s));
                        let id = regions.len() as u32;
                        regions.push(multi);
                        parens.push(Some(id));
                    } else {
                        if let Some(callee) = prev_ident {
                            if !after_path && !CALL_KEYWORDS.contains(&callee) {
                                summary.calls.push(CallEdge {
                                    callee: callee.to_string(),
                                    args: call_args(toks, i),
                                });
                            }
                        }
                        parens.push(None);
                    }
                }
                Some(b')') => {
                    parens.pop();
                }
                Some(b'{') => {
                    braces.push(std::mem::take(&mut pending_loop));
                }
                Some(b'}') => {
                    braces.pop();
                    guards.retain(|&(depth, _, _)| depth <= braces.len());
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
}

/// Recognizes `let [mut] g = P.lock()/read()/write()` (optionally
/// `.unwrap()` / `.expect(..)`) where `P` is a lock-typed parameter.
fn parse_param_guard(
    toks: &[Token],
    let_idx: usize,
    param_idx: &HashMap<&str, usize>,
) -> Option<(usize, GuardMode)> {
    let mut i = let_idx + 1;
    if toks.get(i)?.is_ident("mut") {
        i += 1;
    }
    if toks.get(i)?.kind != TokKind::Ident {
        return None;
    }
    i += 1;
    while i < toks.len() && !toks[i].is_punct('=') {
        if toks[i].is_punct(';') {
            return None;
        }
        i += 1;
    }
    i += 1;
    let recv = toks.get(i)?;
    if recv.kind != TokKind::Ident || !toks.get(i + 1)?.is_punct('.') {
        return None;
    }
    let method = toks.get(i + 2)?;
    let mode = match method.text.as_str() {
        "lock" | "write" => GuardMode::Exclusive,
        "read" => GuardMode::Shared,
        _ => return None,
    };
    if !toks.get(i + 3)?.is_punct('(') {
        return None;
    }
    let pidx = *param_idx.get(recv.text.as_str())?;
    Some((pidx, mode))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_one(src: &str) -> Summaries {
        Summaries::build(&[("a.rs".to_string(), src.to_string())])
    }

    #[test]
    fn wrapper_param_op_is_summarized() {
        let s = build_one("fn bump(d: &Dictionary<u64, u64>, k: u64) {\n    d.set(k, k);\n}\n");
        let f = s.lookup("a.rs", "bump").expect("summary");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].class, Some("Dictionary"));
        assert_eq!(f.params[1].class, None);
        assert_eq!(f.ops.len(), 1);
        let op = &f.ops[0];
        assert_eq!((op.param, op.method.as_str()), (0, "set"));
        assert_eq!(op.kind, OpKind::Write);
        assert_eq!((op.line, op.col), (2, 7), "method-ident position");
        assert_eq!(op.hops, 0);
        assert!(op.spawned.is_none());
    }

    #[test]
    fn closure_bound_arrow_in_where_clause_does_not_invert_the_return_span() {
        // The `->` inside the `where` clause comes after the recorded
        // return-type end; it must not be mistaken for the return arrow
        // (this shape used to panic with an inverted slice).
        let s = build_one(
            "fn run<F, T>(f: F) -> T\nwhere\n    F: FnOnce() -> T,\n{\n    f()\n}\n\
             fn make() -> Dictionary<u64, u64>\nwhere\n    u64: Copy,\n{\n    Dictionary::new()\n}\n",
        );
        let run = s.lookup("a.rs", "run").expect("run summary");
        assert_eq!(run.returns_class, None, "generic T is not a collection");
        let make = s.lookup("a.rs", "make").expect("make summary");
        assert_eq!(make.returns_class, Some("Dictionary"));
    }

    #[test]
    fn std_typed_param_is_not_classified() {
        let s = build_one("fn f(m: &std::collections::HashMap<u32, u32>) { m.insert(1, 1); }");
        let f = s.lookup("a.rs", "f").expect("summary");
        assert_eq!(f.params[0].class, None);
        assert!(f.ops.is_empty());
    }

    #[test]
    fn return_class_from_annotation() {
        let s = build_one(
            "fn fresh() -> Dictionary<u64, u64> { Dictionary::new() }\nfn unit() -> u32 { 0 }\n",
        );
        assert_eq!(
            s.lookup("a.rs", "fresh").unwrap().returns_class,
            Some("Dictionary")
        );
        assert_eq!(s.lookup("a.rs", "unit").unwrap().returns_class, None);
    }

    #[test]
    fn transitive_ops_cross_one_call() {
        let s = build_one(
            "fn inner(d: &Dictionary<u64, u64>) { d.set(1, 1); }\n\
             fn outer(q: &Dictionary<u64, u64>) { inner(q); }\n",
        );
        let outer = s.lookup("a.rs", "outer").expect("summary");
        assert_eq!(outer.ops.len(), 1, "inner's op propagates to outer");
        assert_eq!(outer.ops[0].hops, 1);
        assert_eq!(outer.ops[0].line, 1, "site stays at inner's body");
    }

    #[test]
    fn recursion_terminates() {
        let s = build_one("fn f(d: &Dictionary<u64, u64>) { d.set(1, 1); f(d); }");
        let f = s.lookup("a.rs", "f").expect("summary");
        // Self-recursion re-offers the same (param, site); dedupe holds.
        assert_eq!(f.ops.len(), 1);
    }

    #[test]
    fn param_lock_guard_is_recorded_and_translated() {
        let s = build_one(
            "fn locked(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {\n\
             \x20   let g = m.lock();\n\
             \x20   d.set(1, 1);\n\
             }\n\
             fn relay(a: &Dictionary<u64, u64>, b: &TsvdMutex<u32>) { locked(a, b); }\n",
        );
        let locked = s.lookup("a.rs", "locked").expect("summary");
        assert_eq!(locked.ops[0].lock_param, Some((1, GuardMode::Exclusive)));
        let relay = s.lookup("a.rs", "relay").expect("summary");
        assert_eq!(relay.ops.len(), 1);
        assert_eq!(
            relay.ops[0].lock_param,
            Some((1, GuardMode::Exclusive)),
            "lock provenance survives the hop through matching args"
        );
    }

    #[test]
    fn guard_dies_at_block_end() {
        let s = build_one(
            "fn f(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {\n\
             \x20   { let g = m.lock(); d.set(1, 1); }\n\
             \x20   d.set(2, 2);\n\
             }\n",
        );
        let f = s.lookup("a.rs", "f").expect("summary");
        assert_eq!(f.ops.len(), 2);
        assert!(f.ops[0].lock_param.is_some());
        assert!(
            f.ops[1].lock_param.is_none(),
            "guard dropped with its block"
        );
    }

    #[test]
    fn spawned_op_inside_callee_is_tagged() {
        let s = build_one(
            "fn f(d: &Dictionary<u64, u64>, pool: &Pool) {\n\
             \x20   pool.spawn(move || d.set(1, 1));\n\
             }\n",
        );
        let f = s.lookup("a.rs", "f").expect("summary");
        assert_eq!(f.ops.len(), 1);
        assert_eq!(f.ops[0].spawned, Some((0, false)));
    }

    #[test]
    fn ambiguous_names_resolve_to_none() {
        let s = Summaries::build(&[
            (
                "a.rs".to_string(),
                "fn dup(d: &Dictionary<u64, u64>) { d.set(1, 1); }".to_string(),
            ),
            (
                "b.rs".to_string(),
                "fn dup(d: &Dictionary<u64, u64>) { d.get(&1); }".to_string(),
            ),
        ]);
        assert!(
            s.lookup("c.rs", "dup").is_none(),
            "two candidates, no guess"
        );
        assert!(s.lookup("a.rs", "dup").is_some(), "same file disambiguates");
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let s = build_one(
            "fn outer(d: &Dictionary<u64, u64>) {\n\
             \x20   fn helper(d: &Dictionary<u64, u64>) { d.set(9, 9); }\n\
             \x20   d.get(&1);\n\
             }\n",
        );
        let outer = s.lookup("a.rs", "outer").expect("summary");
        // outer's direct ops: only its own `get`; helper's set belongs to
        // helper (and is not called, so it never propagates).
        assert_eq!(outer.ops.len(), 1);
        assert_eq!(outer.ops[0].method, "get");
        let helper = s.lookup("a.rs", "helper").expect("nested summary");
        assert_eq!(helper.ops.len(), 1);
        assert_eq!(helper.ops[0].method, "set");
    }
}
