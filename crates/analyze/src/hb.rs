//! Static happens-before: per-function ordering facts over the same token
//! stream the site pass walks.
//!
//! The pair deriver in [`analysis`](crate::analysis) asks one question the
//! lockset cannot answer: can these two accesses *overlap in time at all*?
//! A spawned body that is joined before the main thread touches the data
//! again, a scoped-thread block whose closing brace joins every spawn, or
//! a channel recv that cannot return before the send, all serialize the
//! pair by construction. Such pairs waste a trap and depress precision.
//!
//! The edge kinds, in the order they are tried:
//!
//! - **spawn**: everything before a region's spawn call happens-before the
//!   region body (this has always been implicit in the pair rules — a
//!   main-thread access *before* the spawn never pairs).
//! - **join**: `let h = ...spawn(...); h.join();` — the region body
//!   happens-before everything after the join, in the join's own region.
//! - **scope**: `scope(|s| { s.spawn(...); ... })` — every region spawned
//!   inside the scope-call parens completes at the closing paren.
//! - **channel**: for a channel with exactly one syntactic send and one
//!   recv (neither in a loop), an access before the send happens-before an
//!   access after the recv.
//! - **await points** (`.await`) are recorded as task-boundary markers for
//!   the report; the threads-only runtime draws no edges from them yet.
//!
//! Soundness discipline: a completion event only *orders* a later access
//! when it **dominates** it — its enclosing-brace chain is a prefix of the
//! access's chain — so a join inside an `if` or a sibling block never
//! prunes. Events inside loops never complete anything (a loop iteration
//! breaks textual-order-equals-program-order). Regions materialized from
//! interprocedural summaries are never considered sealed: the callee's
//! spawn is invisible to the caller's joins. When the test fails the pair
//! is *kept* and only its confidence is scaled (window / partial
//! evidence); pruning requires the full dominance argument.

use std::collections::HashMap;

/// A directed graph over dense `usize` nodes with BFS reachability.
///
/// Used region-to-region: an edge `p -> q` means region `p` provably
/// completes before region `q` starts. Reachability is reflexive
/// (`reachable(x, x)` is `true`) and, being plain BFS over an adjacency
/// list, invariant to the order edges were inserted — the property the
/// feature-gated proptest pins down.
#[derive(Debug, Default, Clone)]
pub struct HbGraph {
    adj: Vec<Vec<usize>>,
}

impl HbGraph {
    /// A graph with `nodes` nodes and no edges.
    pub fn new(nodes: usize) -> Self {
        HbGraph {
            adj: vec![Vec::new(); nodes],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Adds a directed edge; out-of-range endpoints are ignored and
    /// duplicates are harmless.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        if from < self.adj.len() && to < self.adj.len() && !self.adj[from].contains(&to) {
            self.adj[from].push(to);
        }
    }

    /// Whether `to` is reachable from `from` (reflexively).
    pub fn reachable(&self, from: usize, to: usize) -> bool {
        if from >= self.adj.len() {
            return from == to;
        }
        self.reach_set(from).contains(&to)
    }

    /// Every node reachable from `from`, including `from` itself.
    pub fn reach_set(&self, from: usize) -> Vec<usize> {
        let mut seen = vec![false; self.adj.len()];
        let mut queue = vec![from];
        let mut out = Vec::new();
        if from < seen.len() {
            seen[from] = true;
        }
        while let Some(n) = queue.pop() {
            out.push(n);
            if n < self.adj.len() {
                for &m in &self.adj[n] {
                    if !seen[m] {
                        seen[m] = true;
                        queue.push(m);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }
}

/// How a region's completion is sealed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealKind {
    /// `handle.join()` on the region's spawn handle.
    Join(String),
    /// The closing paren of the enclosing `scope(...)` call.
    Scope,
}

/// A join call observed on a region's handle.
#[derive(Debug, Clone)]
pub struct JoinEvent {
    /// Token index of the `(` of `h.join(`.
    pub tok: usize,
    /// Ambient region at the join.
    pub region: u32,
    /// Enclosing-brace chain at the join (dominance test input).
    pub scopes: Vec<u32>,
    /// Whether any enclosing brace is a loop body.
    pub in_loop: bool,
}

/// One `scope(...)` call extent.
#[derive(Debug, Clone)]
pub struct ScopeExtent {
    /// Token index of the call's `(`.
    pub open_tok: usize,
    /// Token index of the matching `)` (0 while still open).
    pub close_tok: usize,
    /// Ambient region at the call.
    pub region: u32,
    /// Function the call appears in.
    pub fn_id: u32,
    /// Enclosing-brace chain at the call.
    pub scopes: Vec<u32>,
    /// Whether any enclosing brace is a loop body.
    pub in_loop: bool,
}

/// Per-region happens-before facts, parallel to the site pass's region
/// vector (index = region id; entry 0 is the implicit top level).
#[derive(Debug, Clone, Default)]
pub struct RegionHb {
    /// Token index of the spawn call's `(`.
    pub start_tok: usize,
    /// Ambient region at the spawn.
    pub parent_region: u32,
    /// Function the spawn appears in.
    pub fn_id: u32,
    /// Whether the region body can run against itself.
    pub multi: bool,
    /// Materialized from an interprocedural summary: the spawn lives in a
    /// callee, so no completion in this file can seal it.
    pub synthetic: bool,
    /// Enclosing-brace chain at the spawn.
    pub scopes: Vec<u32>,
    /// `let h = ...spawn(...)` binding name, if any.
    pub handle: Option<String>,
    /// `h.join()` observed on the handle.
    pub join: Option<JoinEvent>,
}

/// One channel endpoint use (`tx.send(` / `rx.recv(`).
#[derive(Debug, Clone)]
pub struct ChanEvent {
    /// Per-function channel id (see [`crate::lockset`]).
    pub chan: u32,
    /// Token index of the call's `(`.
    pub tok: usize,
    /// Ambient region at the call.
    pub region: u32,
    /// Function the call appears in.
    pub fn_id: u32,
    /// Enclosing-brace chain at the call.
    pub scopes: Vec<u32>,
    /// Whether any enclosing brace is a loop body.
    pub in_loop: bool,
}

/// One pair endpoint as the ordering queries see it.
#[derive(Debug, Clone, Copy)]
pub struct HbEndpoint<'a> {
    /// Token index of the access.
    pub tok: usize,
    /// Region the access runs in.
    pub region: u32,
    /// Function the access appears in.
    pub fn_id: u32,
    /// Enclosing-brace chain at the access.
    pub scopes: &'a [u32],
}

/// The verdict [`HbIndex::relate`] returns for one pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HbEvidence {
    /// Provably ordered via a dominating join: prune.
    OrderedJoin(String),
    /// Provably ordered via a scope close: prune.
    OrderedScope,
    /// Provably ordered via a unique send→recv: prune.
    OrderedChannel,
    /// A join on one endpoint's region bounds the overlap window.
    WindowJoin(String),
    /// A scope close bounds the overlap window.
    WindowScope,
    /// A unique channel links the two regions but the position test failed.
    ChannelPartial,
    /// No ordering facts apply.
    None,
}

impl HbEvidence {
    /// Whether the pair is serialized by construction (prune it).
    pub fn is_ordered(&self) -> bool {
        matches!(
            self,
            HbEvidence::OrderedJoin(_) | HbEvidence::OrderedScope | HbEvidence::OrderedChannel
        )
    }

    /// The `hb_evidence` label serialized into reports and trap files.
    pub fn label(&self) -> String {
        match self {
            HbEvidence::OrderedJoin(h) => format!("ordered:join:{h}"),
            HbEvidence::OrderedScope => "ordered:scope".to_string(),
            HbEvidence::OrderedChannel => "ordered:channel".to_string(),
            HbEvidence::WindowJoin(h) => format!("window-join:{h}"),
            HbEvidence::WindowScope => "window-scope".to_string(),
            HbEvidence::ChannelPartial => "channel-partial".to_string(),
            HbEvidence::None => "none".to_string(),
        }
    }

    /// Confidence multiplier for kept pairs (ordered pairs are pruned and
    /// never scored).
    pub fn factor(&self) -> f64 {
        match self {
            HbEvidence::WindowJoin(_) | HbEvidence::WindowScope => 0.95,
            HbEvidence::ChannelPartial => 0.9,
            _ => 1.0,
        }
    }
}

/// A region's completion event: the point after which its body has
/// provably finished.
#[derive(Debug, Clone)]
struct Completion {
    tok: usize,
    region: u32,
    scopes: Vec<u32>,
    kind: SealKind,
}

/// All happens-before facts of one file, built alongside the site pass and
/// finalized once the walk ends.
#[derive(Debug, Default)]
pub struct HbIndex {
    /// Per-region facts; index = region id.
    pub regions: Vec<RegionHb>,
    /// `scope(...)` call extents.
    pub scopes: Vec<ScopeExtent>,
    /// Channel send events.
    pub sends: Vec<ChanEvent>,
    /// Channel recv events.
    pub recvs: Vec<ChanEvent>,
    /// `.await` task-boundary markers as `(line, column)`.
    pub awaits: Vec<(u32, u32)>,
    /// Live spawn-handle bindings of the current function.
    handles: HashMap<String, u32>,
    /// Region-level completion graph, built by [`finalize`](Self::finalize).
    graph: HbGraph,
}

impl HbIndex {
    /// An index with the implicit top-level region.
    pub fn new() -> Self {
        let mut idx = HbIndex::default();
        idx.regions.push(RegionHb::default());
        idx
    }

    /// Called at each `fn` item boundary: handles are function-local.
    pub fn on_fn(&mut self) {
        self.handles.clear();
    }

    /// Binds a spawn handle name to its region.
    pub fn bind_handle(&mut self, name: String, region: u32) {
        if let Some(r) = self.regions.get_mut(region as usize) {
            r.handle = Some(name.clone());
        }
        self.handles.insert(name, region);
    }

    /// Drops a handle rebound by a `let` with an untracked RHS.
    pub fn forget_handle(&mut self, name: &str) {
        self.handles.remove(name);
    }

    /// Records `name.join()` at `tok` if `name` is a live handle.
    pub fn on_join(
        &mut self,
        name: &str,
        tok: usize,
        region: u32,
        scopes: Vec<u32>,
        in_loop: bool,
    ) {
        let Some(&rid) = self.handles.get(name) else {
            return;
        };
        if let Some(r) = self.regions.get_mut(rid as usize) {
            if r.join.is_none() {
                r.join = Some(JoinEvent {
                    tok,
                    region,
                    scopes,
                    in_loop,
                });
            }
        }
    }

    /// Opens a `scope(...)` call extent; returns its index for the paren
    /// stack.
    pub fn open_scope(
        &mut self,
        open_tok: usize,
        region: u32,
        fn_id: u32,
        scopes: Vec<u32>,
        in_loop: bool,
    ) -> usize {
        self.scopes.push(ScopeExtent {
            open_tok,
            close_tok: 0,
            region,
            fn_id,
            scopes,
            in_loop,
        });
        self.scopes.len() - 1
    }

    /// Closes the scope extent opened earlier.
    pub fn close_scope(&mut self, idx: usize, close_tok: usize) {
        if let Some(s) = self.scopes.get_mut(idx) {
            s.close_tok = close_tok;
        }
    }

    /// Builds the region completion graph. Call once after the token walk.
    pub fn finalize(&mut self) {
        let n = self.regions.len();
        self.graph = HbGraph::new(n);
        for p in 1..n {
            let Some(c) = self.completion(p as u32) else {
                continue;
            };
            for q in 1..n {
                if p == q {
                    continue;
                }
                let rq = &self.regions[q];
                if rq.synthetic
                    || rq.fn_id != self.regions[p].fn_id
                    || c.region != rq.parent_region
                    || c.tok >= rq.start_tok
                    || !is_prefix(&c.scopes, &rq.scopes)
                {
                    continue;
                }
                self.graph.add_edge(p, q);
            }
        }
    }

    /// The ordering verdict for one pair of endpoints.
    pub fn relate(&self, a: &HbEndpoint, b: &HbEndpoint) -> HbEvidence {
        if a.fn_id != b.fn_id || a.region == b.region {
            // Cross-function sites share no completion events; same-region
            // pairs are the multi-instance case, where a region's own seal
            // says nothing about instance overlap.
            return HbEvidence::None;
        }
        if let Some(kind) = self
            .ordered_before(a, b)
            .or_else(|| self.ordered_before(b, a))
        {
            return match kind {
                SealKind::Join(h) => HbEvidence::OrderedJoin(h),
                SealKind::Scope => HbEvidence::OrderedScope,
            };
        }
        if self.channel_ordered(a, b) || self.channel_ordered(b, a) {
            return HbEvidence::OrderedChannel;
        }
        // Kept pair: bounded-window evidence scales confidence. Check the
        // lower region id first so the verdict is orientation-independent.
        let mut regions = [a.region, b.region];
        regions.sort_unstable();
        let completions: Vec<Completion> = regions
            .iter()
            .filter(|&&r| r != 0)
            .filter_map(|&r| self.completion(r))
            .collect();
        for c in &completions {
            if let SealKind::Join(h) = &c.kind {
                return HbEvidence::WindowJoin(h.clone());
            }
        }
        if !completions.is_empty() {
            return HbEvidence::WindowScope;
        }
        if self.channel_links(a, b) {
            return HbEvidence::ChannelPartial;
        }
        HbEvidence::None
    }

    /// Whether everything `x`'s region does provably precedes `y`.
    fn ordered_before(&self, x: &HbEndpoint, y: &HbEndpoint) -> Option<SealKind> {
        if x.region == 0 {
            return None;
        }
        // A completion chain from x's region into y's whole region: y runs
        // strictly after x's region finished.
        if y.region != 0 && self.graph.reachable(x.region as usize, y.region as usize) {
            return self.completion(x.region).map(|c| c.kind);
        }
        // A completion of x's region (or one it reaches) lands before y in
        // y's own region and dominates y's position.
        for q in self.graph.reach_set(x.region as usize) {
            if q == 0 || q >= self.regions.len() {
                continue;
            }
            if let Some(c) = self.completion(q as u32) {
                if c.region == y.region && c.tok < y.tok && is_prefix(&c.scopes, y.scopes) {
                    return Some(c.kind);
                }
            }
        }
        None
    }

    /// Whether a unique send→recv orders `x` before `y`: `x` precedes the
    /// send in the send's region, `y` follows the recv (dominated) in the
    /// recv's region.
    fn channel_ordered(&self, x: &HbEndpoint, y: &HbEndpoint) -> bool {
        self.unique_channels(x.fn_id).iter().any(|(send, recv)| {
            x.region == send.region
                && x.tok < send.tok
                && y.region == recv.region
                && recv.tok < y.tok
                && is_prefix(&recv.scopes, y.scopes)
        })
    }

    /// Whether a unique channel touches both endpoints' regions at all.
    fn channel_links(&self, a: &HbEndpoint, b: &HbEndpoint) -> bool {
        self.unique_channels(a.fn_id).iter().any(|(send, recv)| {
            (a.region == send.region && b.region == recv.region)
                || (a.region == recv.region && b.region == send.region)
        })
    }

    /// Channels of `fn_id` with exactly one send and one recv, neither in
    /// a loop — the only shape where one syntactic event is one runtime
    /// event and the recv provably receives that send.
    fn unique_channels(&self, fn_id: u32) -> Vec<(&ChanEvent, &ChanEvent)> {
        let mut per_chan: HashMap<u32, (Vec<&ChanEvent>, Vec<&ChanEvent>)> = HashMap::new();
        for s in self.sends.iter().filter(|e| e.fn_id == fn_id) {
            per_chan.entry(s.chan).or_default().0.push(s);
        }
        for r in self.recvs.iter().filter(|e| e.fn_id == fn_id) {
            per_chan.entry(r.chan).or_default().1.push(r);
        }
        let mut out: Vec<(&ChanEvent, &ChanEvent)> = per_chan
            .into_values()
            .filter_map(
                |(sends, recvs)| match (sends.as_slice(), recvs.as_slice()) {
                    ([s], [r]) if !s.in_loop && !r.in_loop => Some((sends[0], recvs[0])),
                    _ => None,
                },
            )
            .collect();
        out.sort_by_key(|(s, _)| s.tok);
        out
    }

    /// The completion event sealing region `r`, if any. Join seals only
    /// single-instance regions (a loop rebinding the handle joins just the
    /// last instance); a scope close seals even multi regions (the scope
    /// joins every spawn inside it).
    fn completion(&self, r: u32) -> Option<Completion> {
        let region = self.regions.get(r as usize)?;
        if region.synthetic || r == 0 {
            return None;
        }
        if !region.multi {
            if let (Some(join), Some(handle)) = (&region.join, &region.handle) {
                if !join.in_loop {
                    return Some(Completion {
                        tok: join.tok,
                        region: join.region,
                        scopes: join.scopes.clone(),
                        kind: SealKind::Join(handle.clone()),
                    });
                }
            }
        }
        // Innermost closed scope extent containing the spawn, same fn.
        self.scopes
            .iter()
            .filter(|s| {
                s.close_tok != 0
                    && !s.in_loop
                    && s.fn_id == region.fn_id
                    && s.open_tok < region.start_tok
                    && region.start_tok < s.close_tok
            })
            .max_by_key(|s| s.open_tok)
            .map(|s| Completion {
                tok: s.close_tok,
                region: s.region,
                scopes: s.scopes.clone(),
                kind: SealKind::Scope,
            })
    }
}

/// Whether `prefix` is a prefix of `chain` — the brace-dominance test: an
/// event whose enclosing-block chain prefixes an access's chain is on
/// every control-flow path to that access.
fn is_prefix(prefix: &[u32], chain: &[u32]) -> bool {
    chain.len() >= prefix.len() && chain[..prefix.len()] == *prefix
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_reachability_is_transitive_and_reflexive() {
        let mut g = HbGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert!(g.reachable(0, 2), "transitive");
        assert!(g.reachable(3, 3), "reflexive");
        assert!(!g.reachable(2, 0), "directed");
        assert!(!g.reachable(0, 3));
        assert_eq!(g.reach_set(0), vec![0, 1, 2]);
    }

    #[test]
    fn graph_tolerates_out_of_range_and_duplicate_edges() {
        let mut g = HbGraph::new(2);
        g.add_edge(0, 9);
        g.add_edge(9, 0);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        assert_eq!(g.adj[0], vec![1]);
        assert!(g.reachable(9, 9), "out-of-range node reaches itself only");
        assert!(!g.reachable(9, 0));
    }

    #[test]
    fn reachability_is_invariant_to_edge_insertion_order() {
        // Deterministic exhaustive check over every permutation of a small
        // edge set — the same property the feature-gated proptest samples
        // at scale (crates/analyze/tests/proptests.rs), but this one runs
        // in tier-1.
        let edges = [(0usize, 1usize), (1, 2), (2, 3), (0, 3), (3, 1)];
        let n = 5;
        let reference = matrix(&build(n, &edges));
        permute(&mut edges.to_vec(), 0, &mut |order| {
            assert_eq!(
                matrix(&build(n, order)),
                reference,
                "insertion order {order:?} changed reachability"
            );
        });
    }

    fn build(n: usize, edges: &[(usize, usize)]) -> HbGraph {
        let mut g = HbGraph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    fn matrix(g: &HbGraph) -> Vec<Vec<bool>> {
        (0..g.len())
            .map(|a| (0..g.len()).map(|b| g.reachable(a, b)).collect())
            .collect()
    }

    type Edge = (usize, usize);

    fn permute(items: &mut Vec<Edge>, k: usize, f: &mut dyn FnMut(&[Edge])) {
        if k == items.len() {
            f(items);
            return;
        }
        for i in k..items.len() {
            items.swap(k, i);
            permute(items, k + 1, f);
            items.swap(k, i);
        }
    }

    #[test]
    fn is_prefix_matches_dominance_expectations() {
        assert!(is_prefix(&[], &[1, 2]));
        assert!(is_prefix(&[1], &[1, 2]));
        assert!(is_prefix(&[1, 2], &[1, 2]));
        assert!(!is_prefix(&[1, 2], &[1]));
        assert!(!is_prefix(&[2], &[1, 2]));
    }

    #[test]
    fn join_seals_a_single_instance_region_only() {
        let mut idx = HbIndex::new();
        idx.regions.push(RegionHb {
            start_tok: 10,
            fn_id: 1,
            ..RegionHb::default()
        });
        idx.bind_handle("h".to_string(), 1);
        idx.on_join("h", 20, 0, vec![7], false);
        assert!(idx.completion(1).is_some());
        idx.regions[1].multi = true;
        assert!(
            idx.completion(1).is_none(),
            "a rebinding loop joins only the last instance"
        );
    }

    #[test]
    fn scope_close_seals_even_multi_regions() {
        let mut idx = HbIndex::new();
        idx.regions.push(RegionHb {
            start_tok: 10,
            fn_id: 1,
            multi: true,
            scopes: vec![7, 8],
            ..RegionHb::default()
        });
        let sid = idx.open_scope(5, 0, 1, vec![7], false);
        idx.close_scope(sid, 30);
        let c = idx.completion(1).expect("scope seals multi");
        assert_eq!(c.kind, SealKind::Scope);
        assert_eq!(c.tok, 30);
    }

    #[test]
    fn synthetic_regions_are_never_sealed() {
        let mut idx = HbIndex::new();
        idx.regions.push(RegionHb {
            start_tok: 10,
            fn_id: 1,
            synthetic: true,
            ..RegionHb::default()
        });
        let sid = idx.open_scope(5, 0, 1, vec![7], false);
        idx.close_scope(sid, 30);
        assert!(idx.completion(1).is_none());
    }
}
