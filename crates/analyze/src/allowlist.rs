//! The escape allowlist: intentional raw-collection usages.
//!
//! The paper's binary rewriter deliberately skips some call sites (its own
//! runtime, synchronized wrappers); this repo's analog is an allowlist file
//! checked in next to the workspace. The format is a small TOML subset,
//! parsed by hand because the build is offline:
//!
//! ```toml
//! [[allow]]
//! path = "crates/collections/src/raw.rs"   # exact file or directory prefix
//! name = "RawCell"                          # optional: only this type
//! line = 40                                 # optional: only this line
//! reason = "the raw cell IS the instrumentation substrate"
//! ```
//!
//! An escape is allowed when any entry's `path` is an exact match or a
//! path-component prefix of the escape's file, and every present optional
//! key also matches.

use std::io;
use std::path::Path;

/// One allowlist entry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file, or a directory prefix (`crates/x/benches`).
    pub path: String,
    /// Restrict to this raw type name (e.g. `HashMap`), if present.
    pub name: Option<String>,
    /// Restrict to this 1-based line, if present.
    pub line: Option<u32>,
    /// Why the raw usage is intentional (documentation; not matched on).
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry cover an escape at `file`:`line` of type `name`?
    /// Both sides are normalized first, so `./`-prefixed or `\`-separated
    /// spellings match the same entries as the canonical form.
    pub fn covers(&self, file: &str, line: u32, name: &str) -> bool {
        let file = crate::walk::normalize_rel(file);
        let entry_path = crate::walk::normalize_rel(&self.path);
        let path_ok = file == entry_path
            || (file.starts_with(&entry_path)
                && file.as_bytes().get(entry_path.len()) == Some(&b'/'));
        path_ok
            && self.line.is_none_or(|l| l == line)
            && self.name.as_deref().is_none_or(|n| n == name)
    }
}

/// A parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    /// The entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty allowlist (nothing is allowed).
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> io::Result<Allowlist> {
        Ok(Self::parse(&std::fs::read_to_string(path)?))
    }

    /// Parses allowlist text. Unknown keys are ignored; entries without a
    /// `path` are dropped (they could never match anything).
    pub fn parse(text: &str) -> Allowlist {
        let mut entries = Vec::new();
        let mut current: Option<AllowEntry> = None;
        for raw_line in text.lines() {
            let line = match raw_line.split_once('#') {
                // A `#` inside quotes is part of the value, not a comment.
                Some((before, _)) if before.matches('"').count() % 2 == 0 => before,
                _ => raw_line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    if !e.path.is_empty() {
                        entries.push(e);
                    }
                }
                current = Some(AllowEntry::default());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            let (key, value) = (key.trim(), value.trim());
            let Some(entry) = current.as_mut() else {
                continue;
            };
            let unquoted = value.trim_matches('"');
            match key {
                "path" => entry.path = unquoted.trim_end_matches('/').to_string(),
                "name" => entry.name = Some(unquoted.to_string()),
                "line" => entry.line = value.parse().ok(),
                "reason" => entry.reason = unquoted.to_string(),
                _ => {}
            }
        }
        if let Some(e) = current.take() {
            if !e.path.is_empty() {
                entries.push(e);
            }
        }
        Allowlist { entries }
    }

    /// Returns `true` if any entry covers the escape.
    pub fn allows(&self, file: &str, line: u32, name: &str) -> bool {
        self.entries.iter().any(|e| e.covers(file, line, name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# intentional raw usages
[[allow]]
path = "crates/collections/src/raw.rs"
reason = "the raw cell is the substrate"

[[allow]]
path = "crates/x/benches"
name = "HashMap"
reason = "bench bookkeeping # not a comment"

[[allow]]
path = "exact.rs"
line = 7
reason = "one line only"
"#;

    #[test]
    fn parses_entries() {
        let al = Allowlist::parse(SAMPLE);
        assert_eq!(al.entries.len(), 3);
        assert_eq!(al.entries[0].path, "crates/collections/src/raw.rs");
        assert_eq!(al.entries[1].name.as_deref(), Some("HashMap"));
        assert!(al.entries[1].reason.contains("# not a comment"));
        assert_eq!(al.entries[2].line, Some(7));
    }

    #[test]
    fn exact_file_match() {
        let al = Allowlist::parse(SAMPLE);
        assert!(al.allows("crates/collections/src/raw.rs", 99, "RawCell"));
        assert!(!al.allows("crates/collections/src/raw.rs.bak", 1, "RawCell"));
    }

    #[test]
    fn directory_prefix_match_respects_components() {
        let al = Allowlist::parse(SAMPLE);
        assert!(al.allows("crates/x/benches/b.rs", 1, "HashMap"));
        assert!(
            !al.allows("crates/x/benches/b.rs", 1, "VecDeque"),
            "name-restricted"
        );
        assert!(!al.allows("crates/x/benches_extra/b.rs", 1, "HashMap"));
    }

    #[test]
    fn line_restriction() {
        let al = Allowlist::parse(SAMPLE);
        assert!(al.allows("exact.rs", 7, "HashMap"));
        assert!(!al.allows("exact.rs", 8, "HashMap"));
    }

    #[test]
    fn pathless_entries_are_dropped() {
        let al = Allowlist::parse("[[allow]]\nreason = \"no path\"\n");
        assert!(al.entries.is_empty());
    }

    #[test]
    fn path_spellings_normalize_on_both_sides() {
        let al = Allowlist::parse(SAMPLE);
        assert!(al.allows("./crates/x/benches/b.rs", 1, "HashMap"));
        assert!(al.allows("crates\\x\\benches\\b.rs", 1, "HashMap"));
        let dotted = Allowlist::parse(
            "[[allow]]\npath = \".\\\\crates\\\\y\"\nreason = \"windows spelling\"\n",
        );
        assert!(dotted.allows("crates/y/z.rs", 3, "HashMap"));
    }
}
