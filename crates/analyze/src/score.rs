//! The precision scoreboard: join static pair candidates against dynamic
//! run outcomes and report per-rule precision and recall.
//!
//! The TSVD paper validates its static proxy heuristics by measuring how
//! many predicted pairs the dynamic detector actually confirms (§5). This
//! module is that measurement for the reproduction: feed it the analyzer's
//! output (JSONL or trap-file JSON) and a dynamic side (a violation-sink
//! run report or a trap file written after runs), and it reports
//!
//! - per-rule precision: of the pairs each overlap rule emitted, how many
//!   a dynamic run confirmed;
//! - overall precision and recall (against the distinct dynamic pairs);
//! - pruned-pair audit: a *pruned* candidate that the dynamic detector
//!   confirmed is a true-candidate loss — the lockset pruning was wrong.
//!
//! Sites join on [`tsvd_core::sink::normalize_pair`] order, so `(a, b)`
//! and `(b, a)` count as the same pair on both sides.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize, Value};
use tsvd_core::sink::normalize_pair;
use tsvd_core::{PairOrigin, TrapFileData};

/// One static pair candidate, reduced to what scoring needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// Normalized `(first, second)` site pair.
    pub key: (String, String),
    /// The rule that emitted it: an overlap reason (`cross-task`, ...) for
    /// analyzer JSONL, or the pair origin (`static`/`dynamic`) for trap
    /// files, which do not record reasons.
    pub rule: String,
    /// The analyzer's confidence (1.0 when the source carries none).
    pub confidence: f64,
}

/// Precision tally for one rule.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RuleScore {
    /// Candidates the rule emitted.
    pub emitted: u32,
    /// Emitted candidates a dynamic outcome confirmed.
    pub confirmed: u32,
    /// `confirmed / emitted` (0.0 when nothing was emitted).
    pub precision: f64,
}

/// The full scoreboard.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScoreReport {
    /// Per-rule tallies, keyed by rule name.
    pub rules: BTreeMap<String, RuleScore>,
    /// Total candidates scored.
    pub emitted: u32,
    /// Candidates confirmed by a dynamic outcome.
    pub confirmed: u32,
    /// Distinct dynamic pairs on the outcome side.
    pub dynamic_total: u32,
    /// Distinct dynamic pairs some candidate predicted.
    pub matched_dynamic: u32,
    /// `confirmed / emitted`.
    pub precision: f64,
    /// `matched_dynamic / dynamic_total`.
    pub recall: f64,
    /// Lockset-pruned candidates seen on the static side.
    pub pruned: u32,
    /// Pruned candidates a dynamic outcome confirmed anyway — each one is
    /// a true candidate the pruning wrongly removed. Should be zero.
    pub pruned_confirmed: u32,
}

/// A recorded floor for CI regression gating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Minimum acceptable overall precision.
    pub precision: f64,
    /// Minimum acceptable overall recall.
    pub recall: f64,
}

fn str_field<'a>(m: &'a BTreeMap<String, Value>, key: &str) -> Option<&'a str> {
    match m.get(key)? {
        Value::Str(s) => Some(s),
        _ => None,
    }
}

fn num_field(m: &BTreeMap<String, Value>, key: &str) -> Option<f64> {
    match m.get(key)? {
        Value::Float(f) => Some(*f),
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

fn trap_file_candidates(data: &TrapFileData) -> Vec<Candidate> {
    data.pairs
        .iter()
        .enumerate()
        .map(|(i, (a, b))| Candidate {
            key: normalize_pair(a, b),
            rule: match data.origins.get(i) {
                Some(PairOrigin::Static) => "static".to_string(),
                _ => "dynamic".to_string(),
            },
            confidence: data.confidence(i),
        })
        .collect()
}

/// Loads the static side: `(kept, pruned)` candidates. Accepts analyzer
/// JSONL (`record: "pair"` / `"pruned_pair"` lines) or a trap-file JSON
/// object (everything kept; trap files never carry pruned pairs).
pub fn load_candidates(path: &Path) -> io::Result<(Vec<Candidate>, Vec<Candidate>)> {
    let text = std::fs::read_to_string(path)?;
    if let Some(data) = parse_trap_file(&text) {
        return Ok((trap_file_candidates(&data), Vec::new()));
    }
    let mut kept = Vec::new();
    let mut pruned = Vec::new();
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(Value::Object(m)) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        let record = str_field(&m, "record").unwrap_or("");
        if record != "pair" && record != "pruned_pair" {
            continue;
        }
        let (Some(first), Some(second)) = (str_field(&m, "first"), str_field(&m, "second")) else {
            continue;
        };
        let c = Candidate {
            key: normalize_pair(first, second),
            rule: str_field(&m, "reason").unwrap_or("unknown").to_string(),
            confidence: num_field(&m, "confidence").unwrap_or(1.0),
        };
        if record == "pair" {
            kept.push(c);
        } else {
            pruned.push(c);
        }
    }
    Ok((kept, pruned))
}

/// Loads the dynamic side: distinct normalized pairs that actually fired.
/// Accepts a violation-sink run report (JSONL with `location_trapped` /
/// `location_hitter`, or generic `first`/`second` outcome lines) or a
/// trap-file JSON object (every recorded pair counts as an outcome).
pub fn load_outcomes(path: &Path) -> io::Result<Vec<(String, String)>> {
    let text = std::fs::read_to_string(path)?;
    let mut keys: BTreeSet<(String, String)> = BTreeSet::new();
    if let Some(data) = parse_trap_file(&text) {
        keys.extend(data.pairs.iter().map(|(a, b)| normalize_pair(a, b)));
        return Ok(keys.into_iter().collect());
    }
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let Ok(Value::Object(m)) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        let pair = match (
            str_field(&m, "location_trapped"),
            str_field(&m, "location_hitter"),
        ) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => match (str_field(&m, "first"), str_field(&m, "second")) {
                (Some(a), Some(b)) => Some((a, b)),
                _ => None,
            },
        };
        if let Some((a, b)) = pair {
            keys.insert(normalize_pair(a, b));
        }
    }
    Ok(keys.into_iter().collect())
}

/// A trap file is a single JSON object with a `pairs` key; JSONL never is
/// (its first line is a tagged record).
fn parse_trap_file(text: &str) -> Option<TrapFileData> {
    let trimmed = text.trim_start();
    if !trimmed.starts_with('{') || !trimmed.contains("\"pairs\"") {
        return None;
    }
    serde_json::from_str::<TrapFileData>(text).ok()
}

fn ratio(num: u32, den: u32) -> f64 {
    if den == 0 {
        0.0
    } else {
        f64::from(num) / f64::from(den)
    }
}

/// Joins the sides and computes the scoreboard.
pub fn score(
    kept: &[Candidate],
    pruned: &[Candidate],
    outcomes: &[(String, String)],
) -> ScoreReport {
    let dynamic: BTreeSet<&(String, String)> = outcomes.iter().collect();
    let mut report = ScoreReport {
        dynamic_total: dynamic.len() as u32,
        ..ScoreReport::default()
    };
    let mut matched: BTreeSet<&(String, String)> = BTreeSet::new();
    for c in kept {
        let rule = report.rules.entry(c.rule.clone()).or_default();
        rule.emitted += 1;
        report.emitted += 1;
        if dynamic.contains(&c.key) {
            rule.confirmed += 1;
            report.confirmed += 1;
            matched.insert(&c.key);
        }
    }
    for rule in report.rules.values_mut() {
        rule.precision = ratio(rule.confirmed, rule.emitted);
    }
    report.matched_dynamic = matched.len() as u32;
    report.precision = ratio(report.confirmed, report.emitted);
    report.recall = ratio(report.matched_dynamic, report.dynamic_total);
    report.pruned = pruned.len() as u32;
    report.pruned_confirmed = pruned.iter().filter(|c| dynamic.contains(&c.key)).count() as u32;
    report
}

impl ScoreReport {
    /// Human-readable scoreboard.
    pub fn render_human(&self) -> String {
        let mut out = format!(
            "score: {} static candidates vs {} dynamic pairs: \
             precision {:.4}, recall {:.4}\n",
            self.emitted, self.dynamic_total, self.precision, self.recall
        );
        if self.dynamic_total == 0 {
            out.push_str(
                "note: dynamic side is empty (no outcomes, or every sink line was torn); \
                 recall is vacuous\n",
            );
        }
        for (name, rule) in &self.rules {
            out.push_str(&format!(
                "rule {name}: {} emitted, {} confirmed, precision {:.4}\n",
                rule.emitted, rule.confirmed, rule.precision
            ));
        }
        out.push_str(&format!(
            "pruned: {} candidates, {} confirmed dynamically{}\n",
            self.pruned,
            self.pruned_confirmed,
            if self.pruned_confirmed == 0 {
                " (no true-candidate loss)"
            } else {
                " — TRUE CANDIDATES WERE PRUNED"
            }
        ));
        out
    }

    /// One-line JSON record (for appending to analyzer JSONL output).
    pub fn to_json_value(&self) -> Value {
        let mut m = BTreeMap::new();
        m.insert("record".to_string(), Value::Str("score".to_string()));
        m.insert("emitted".to_string(), Value::UInt(u64::from(self.emitted)));
        m.insert(
            "confirmed".to_string(),
            Value::UInt(u64::from(self.confirmed)),
        );
        m.insert(
            "dynamic_total".to_string(),
            Value::UInt(u64::from(self.dynamic_total)),
        );
        m.insert(
            "matched_dynamic".to_string(),
            Value::UInt(u64::from(self.matched_dynamic)),
        );
        m.insert("precision".to_string(), Value::Float(self.precision));
        m.insert("recall".to_string(), Value::Float(self.recall));
        m.insert("pruned".to_string(), Value::UInt(u64::from(self.pruned)));
        m.insert(
            "pruned_confirmed".to_string(),
            Value::UInt(u64::from(self.pruned_confirmed)),
        );
        let rules: BTreeMap<String, Value> = self
            .rules
            .iter()
            .map(|(name, r)| {
                let mut rm = BTreeMap::new();
                rm.insert("emitted".to_string(), Value::UInt(u64::from(r.emitted)));
                rm.insert("confirmed".to_string(), Value::UInt(u64::from(r.confirmed)));
                rm.insert("precision".to_string(), Value::Float(r.precision));
                (name.clone(), Value::Object(rm))
            })
            .collect();
        m.insert("rules".to_string(), Value::Object(rules));
        Value::Object(m)
    }

    /// Checks this scoreboard against a recorded floor. `Err` carries the
    /// regression description (for the CI gate's failure message).
    pub fn check_baseline(&self, baseline: &Baseline) -> Result<(), String> {
        const EPS: f64 = 1e-9;
        if self.precision + EPS < baseline.precision {
            return Err(format!(
                "precision regressed: {:.4} < baseline {:.4}",
                self.precision, baseline.precision
            ));
        }
        // An empty dynamic side makes recall vacuous, not zero-and-failing:
        // a sink with no outcomes (or all torn lines) means there was
        // nothing to recall, so the floor cannot meaningfully apply.
        if self.dynamic_total > 0 && self.recall + EPS < baseline.recall {
            return Err(format!(
                "recall regressed: {:.4} < baseline {:.4}",
                self.recall, baseline.recall
            ));
        }
        Ok(())
    }
}

impl Baseline {
    /// Loads a baseline JSON file (`{"precision": ..., "recall": ...}`).
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path:?}: {e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(a: &str, b: &str, rule: &str) -> Candidate {
        Candidate {
            key: normalize_pair(a, b),
            rule: rule.to_string(),
            confidence: 0.5,
        }
    }

    #[test]
    fn precision_and_recall_join_on_normalized_pairs() {
        let kept = vec![
            cand("a.rs:1:1", "a.rs:2:2", "cross-task"),
            cand("a.rs:3:3", "a.rs:4:4", "cross-task"),
            cand("a.rs:5:5", "a.rs:5:5", "multi-instance-task"),
        ];
        // Dynamic side reversed relative to the static pair.
        let outcomes = vec![
            normalize_pair("a.rs:2:2", "a.rs:1:1"),
            normalize_pair("b.rs:9:9", "b.rs:9:9"),
        ];
        let report = score(&kept, &[], &outcomes);
        assert_eq!(report.emitted, 3);
        assert_eq!(report.confirmed, 1);
        assert_eq!(report.dynamic_total, 2);
        assert_eq!(report.matched_dynamic, 1);
        assert!((report.precision - 1.0 / 3.0).abs() < 1e-9);
        assert!((report.recall - 0.5).abs() < 1e-9);
        assert_eq!(report.rules["cross-task"].confirmed, 1);
        assert_eq!(report.rules["multi-instance-task"].confirmed, 0);
    }

    #[test]
    fn pruned_confirmations_are_reported_as_losses() {
        let pruned = vec![cand("a.rs:1:1", "a.rs:2:2", "cross-task")];
        let outcomes = vec![normalize_pair("a.rs:1:1", "a.rs:2:2")];
        let report = score(&[], &pruned, &outcomes);
        assert_eq!(report.pruned, 1);
        assert_eq!(report.pruned_confirmed, 1);
        assert!(report.render_human().contains("TRUE CANDIDATES"));
    }

    #[test]
    fn loads_jsonl_and_trap_file_sides() {
        let dir = std::env::temp_dir().join(format!("tsvd_score_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let static_path = dir.join("static.jsonl");
        std::fs::write(
            &static_path,
            concat!(
                "{\"record\": \"summary\", \"files_scanned\": 1}\n",
                "{\"record\": \"pair\", \"first\": \"a.rs:1:1\", \"second\": \"a.rs:2:2\", \
                 \"reason\": \"cross-task\", \"confidence\": 0.8}\n",
                "{\"record\": \"pruned_pair\", \"first\": \"a.rs:3:3\", \"second\": \"a.rs:4:4\", \
                 \"reason\": \"cross-task\", \"confidence\": 0.0}\n",
            ),
        )
        .expect("write");
        let (kept, pruned) = load_candidates(&static_path).expect("load");
        assert_eq!(kept.len(), 1);
        assert_eq!(pruned.len(), 1);
        assert!((kept[0].confidence - 0.8).abs() < 1e-9);

        let dyn_path = dir.join("run.jsonl");
        std::fs::write(
            &dyn_path,
            concat!(
                "{\"location_trapped\": \"a.rs:2:2\", \"location_hitter\": \"a.rs:1:1\"}\n",
                "{\"first\": \"c.rs:1:1\", \"second\": \"c.rs:2:2\"}\n",
                "not json\n",
            ),
        )
        .expect("write");
        let outcomes = load_outcomes(&dyn_path).expect("load");
        assert_eq!(outcomes.len(), 2);
        let report = score(&kept, &pruned, &outcomes);
        assert_eq!(report.confirmed, 1);

        let mut tf = TrapFileData::default();
        tf.push(
            ("a.rs:1:1".to_string(), "a.rs:2:2".to_string()),
            PairOrigin::Static,
        );
        let tf_path = dir.join("traps.json");
        std::fs::write(&tf_path, serde_json::to_string(&tf).expect("json")).expect("write");
        let (tf_kept, tf_pruned) = load_candidates(&tf_path).expect("load");
        assert_eq!(tf_kept.len(), 1);
        assert_eq!(tf_kept[0].rule, "static");
        assert!(tf_pruned.is_empty());
        let tf_outcomes = load_outcomes(&tf_path).expect("load");
        assert_eq!(tf_outcomes, vec![normalize_pair("a.rs:1:1", "a.rs:2:2")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dynamic_sink_scores_zero_recall_without_failing() {
        // Satellite regression: an empty or all-torn sink must produce a
        // well-formed scoreboard (zero recall, no division blow-up) and
        // must not trip the recall floor — there was nothing to recall.
        let dir = std::env::temp_dir().join(format!("tsvd_score_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let dyn_path = dir.join("empty.jsonl");
        // Every line torn or non-JSON: the joiner sees zero outcomes.
        std::fs::write(
            &dyn_path,
            "{\"location_trapped\": \"a.rs:1:1\", \"location_hi\ngarbage\n\n",
        )
        .expect("write");
        let outcomes = load_outcomes(&dyn_path).expect("torn sink must load");
        assert!(outcomes.is_empty());

        let kept = vec![cand("a.rs:1:1", "a.rs:2:2", "cross-task")];
        let report = score(&kept, &[], &outcomes);
        assert_eq!(report.dynamic_total, 0);
        assert_eq!(report.recall, 0.0);
        assert_eq!(report.precision, 0.0);
        assert!(report.render_human().contains("recall is vacuous"));
        // The recall floor is vacuous with no dynamic pairs; precision
        // still gates normally.
        assert!(report
            .check_baseline(&Baseline {
                precision: 0.0,
                recall: 0.9
            })
            .is_ok());
        assert!(report
            .check_baseline(&Baseline {
                precision: 0.5,
                recall: 0.0
            })
            .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn baseline_gate_detects_regressions() {
        let report = ScoreReport {
            precision: 0.5,
            recall: 0.75,
            dynamic_total: 4,
            ..ScoreReport::default()
        };
        assert!(report
            .check_baseline(&Baseline {
                precision: 0.5,
                recall: 0.75
            })
            .is_ok());
        assert!(report
            .check_baseline(&Baseline {
                precision: 0.6,
                recall: 0.0
            })
            .is_err());
        assert!(report
            .check_baseline(&Baseline {
                precision: 0.0,
                recall: 0.8
            })
            .is_err());
    }
}
