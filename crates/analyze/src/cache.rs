//! Incremental per-file artifact cache for the analyzer.
//!
//! The whole-workspace analysis does strictly per-file work twice per file
//! — parsing function-summary fragments and the site/pair pass — plus one
//! whole-tree step (summary propagation) that depends on *every* file.
//! The cache stores both per-file artifacts under
//! `.tsvd-analyze-cache/`, keyed so staleness is impossible by
//! construction:
//!
//! - **Fragment entries** (pre-propagation [`FnSummary`] lists) are keyed
//!   by `(schema version, relative path, content hash)` — they depend on
//!   one file's bytes only.
//! - **Analysis entries** (the full [`FileAnalysis`]) additionally carry
//!   the **workspace digest** — a hash over every analyzed file's `(path,
//!   content hash)` — because interprocedural summaries let any other
//!   file's edit change this file's materialized sites.
//!
//! A fully unchanged workspace therefore hits the analysis cache for every
//! file and skips summary construction entirely; one edited file re-parses
//! and re-analyzes everything's *analysis* (the digest changed) but reuses
//! every other file's fragment parse.
//!
//! Every entry is self-describing JSON validated against all key fields on
//! load. Any mismatch — stale schema, path collision, content change,
//! foreign digest — and any parse failure (truncated write, corruption)
//! is a silent miss: the caller falls back to fresh analysis and
//! overwrites the entry. The cache can never panic the analyzer and never
//! serves stale output.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize, Value};
use tsvd_core::OpKind;

use crate::analysis::FileAnalysis;
use crate::callgraph::{CallEdge, FnSummary, GuardMode, Param, ParamOp};
use crate::report::{AwaitPoint, Escape, StaticPair, StaticSite};

/// Cache entry layout version. Bump on any change to what entries hold or
/// how keys are derived; old entries then miss and are overwritten.
pub const SCHEMA_VERSION: u32 = 1;

/// FNV-1a 64-bit over raw bytes: cheap, dependency-free, and stable across
/// platforms and runs (unlike `DefaultHasher`, which is seeded).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// The content key of one source file: its bytes, hashed.
pub fn content_hash(src: &str) -> String {
    format!("{:016x}", fnv1a(src.as_bytes()))
}

/// The whole-workspace digest: every `(relative path, content hash)` pair,
/// sorted by path, hashed. Order-independent of the caller's file list.
pub fn workspace_digest(files: &[(&str, &str)]) -> String {
    let mut sorted: Vec<&(&str, &str)> = files.iter().collect();
    sorted.sort();
    let mut acc = String::new();
    for (rel, hash) in sorted {
        acc.push_str(rel);
        acc.push('\0');
        acc.push_str(hash);
        acc.push('\n');
    }
    format!("{:016x}", fnv1a(acc.as_bytes()))
}

/// The on-disk cache. `dir: None` disables it: every load misses, every
/// store is a no-op — the `--no-cache` path with zero branches elsewhere.
#[derive(Debug, Clone, Default)]
pub struct Cache {
    dir: Option<PathBuf>,
}

impl Cache {
    /// A cache rooted at `dir` (`None` = disabled).
    pub fn new(dir: Option<PathBuf>) -> Self {
        Cache { dir }
    }

    /// Where the fragment entry for `rel` lives (`None` when disabled).
    /// Entries are named by the *path* hash; the content hash lives inside
    /// the entry, so an edited file overwrites its own entry instead of
    /// accumulating one per revision.
    pub fn fragment_path(&self, rel: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("frag-{:016x}.json", fnv1a(rel.as_bytes()))))
    }

    /// Where the analysis entry for `rel` lives (`None` when disabled).
    pub fn analysis_path(&self, rel: &str) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("file-{:016x}.json", fnv1a(rel.as_bytes()))))
    }

    /// Loads `rel`'s pre-propagation summaries if an entry matches the
    /// schema, path, and content hash exactly.
    pub fn load_fragments(&self, rel: &str, content_hash: &str) -> Option<Vec<FnSummary>> {
        let payload = self.load_entry(
            &self.fragment_path(rel)?,
            "fragments",
            rel,
            content_hash,
            None,
        )?;
        let Value::Array(items) = payload else {
            return None;
        };
        items.iter().map(summary_from_value).collect()
    }

    /// Stores `rel`'s pre-propagation summaries. Best-effort: IO errors
    /// are swallowed (a cache that cannot write is just a slow cache).
    pub fn store_fragments(&self, rel: &str, content_hash: &str, fragments: &[FnSummary]) {
        let Some(path) = self.fragment_path(rel) else {
            return;
        };
        let payload = Value::Array(fragments.iter().map(summary_to_value).collect());
        self.store_entry(&path, "fragments", rel, content_hash, None, payload);
    }

    /// Loads `rel`'s full per-file analysis if an entry matches schema,
    /// path, content hash, *and* workspace digest exactly.
    pub fn load_analysis(
        &self,
        rel: &str,
        content_hash: &str,
        ws_digest: &str,
    ) -> Option<FileAnalysis> {
        let payload = self.load_entry(
            &self.analysis_path(rel)?,
            "analysis",
            rel,
            content_hash,
            Some(ws_digest),
        )?;
        analysis_from_value(&payload)
    }

    /// Stores `rel`'s full per-file analysis under the workspace digest.
    pub fn store_analysis(
        &self,
        rel: &str,
        content_hash: &str,
        ws_digest: &str,
        analysis: &FileAnalysis,
    ) {
        let Some(path) = self.analysis_path(rel) else {
            return;
        };
        self.store_entry(
            &path,
            "analysis",
            rel,
            content_hash,
            Some(ws_digest),
            analysis_to_value(analysis),
        );
    }

    /// Reads and validates one entry; any mismatch or parse failure is a
    /// miss.
    fn load_entry(
        &self,
        path: &Path,
        kind: &str,
        rel: &str,
        content_hash: &str,
        ws_digest: Option<&str>,
    ) -> Option<Value> {
        let text = std::fs::read_to_string(path).ok()?;
        let Ok(Value::Object(m)) = serde_json::from_str::<Value>(&text) else {
            return None;
        };
        if m.get("schema") != Some(&Value::UInt(u64::from(SCHEMA_VERSION)))
            || m.get("kind") != Some(&Value::Str(kind.to_string()))
            || m.get("rel") != Some(&Value::Str(rel.to_string()))
            || m.get("content_hash") != Some(&Value::Str(content_hash.to_string()))
        {
            return None;
        }
        if let Some(d) = ws_digest {
            if m.get("ws_digest") != Some(&Value::Str(d.to_string())) {
                return None;
            }
        }
        m.get("payload").cloned()
    }

    /// Writes one entry crash-safely (temp file + rename): a reader racing
    /// the write sees either the old entry or the new one, never a torn
    /// hybrid — and a torn *crash* leftover fails validation anyway.
    fn store_entry(
        &self,
        path: &Path,
        kind: &str,
        rel: &str,
        content_hash: &str,
        ws_digest: Option<&str>,
        payload: Value,
    ) {
        let mut m = BTreeMap::new();
        m.insert("schema".to_string(), Value::UInt(u64::from(SCHEMA_VERSION)));
        m.insert("kind".to_string(), Value::Str(kind.to_string()));
        m.insert("rel".to_string(), Value::Str(rel.to_string()));
        m.insert(
            "content_hash".to_string(),
            Value::Str(content_hash.to_string()),
        );
        if let Some(d) = ws_digest {
            m.insert("ws_digest".to_string(), Value::Str(d.to_string()));
        }
        m.insert("payload".to_string(), payload);
        let Ok(json) = serde_json::to_string(&Value::Object(m)) else {
            return;
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, path).is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

// ---------------------------------------------------------------------------
// Manual (de)serialization for the callgraph types: their `&'static str`
// class names come from the shared API table, so strings resolve back
// through `tsvd_core::access::api_classes()` instead of deriving.

fn class_to_value(class: Option<&'static str>) -> Value {
    match class {
        Some(c) => Value::Str(c.to_string()),
        None => Value::Null,
    }
}

fn class_from_value(v: &Value) -> Option<Option<&'static str>> {
    match v {
        Value::Null => Some(None),
        Value::Str(s) => tsvd_core::access::api_classes()
            .into_iter()
            .find(|c| *c == s.as_str())
            .map(Some),
        _ => None,
    }
}

fn kind_to_value(kind: OpKind) -> Value {
    Value::Str(
        match kind {
            OpKind::Read => "read",
            OpKind::Write => "write",
        }
        .to_string(),
    )
}

fn kind_from_value(v: &Value) -> Option<OpKind> {
    match v {
        Value::Str(s) if s == "read" => Some(OpKind::Read),
        Value::Str(s) if s == "write" => Some(OpKind::Write),
        _ => None,
    }
}

fn mode_to_value(mode: GuardMode) -> Value {
    Value::Str(
        match mode {
            GuardMode::Exclusive => "exclusive",
            GuardMode::Shared => "shared",
        }
        .to_string(),
    )
}

fn mode_from_value(v: &Value) -> Option<GuardMode> {
    match v {
        Value::Str(s) if s == "exclusive" => Some(GuardMode::Exclusive),
        Value::Str(s) if s == "shared" => Some(GuardMode::Shared),
        _ => None,
    }
}

fn u32_from(v: &Value) -> Option<u32> {
    match v {
        Value::UInt(u) => u32::try_from(*u).ok(),
        _ => None,
    }
}

fn usize_from(v: &Value) -> Option<usize> {
    match v {
        Value::UInt(u) => usize::try_from(*u).ok(),
        _ => None,
    }
}

fn str_from(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn summary_to_value(s: &FnSummary) -> Value {
    let mut m = BTreeMap::new();
    m.insert("file".to_string(), Value::Str(s.file.clone()));
    m.insert("name".to_string(), Value::Str(s.name.clone()));
    m.insert(
        "params".to_string(),
        Value::Array(
            s.params
                .iter()
                .map(|p| {
                    let mut pm = BTreeMap::new();
                    pm.insert("name".to_string(), Value::Str(p.name.clone()));
                    pm.insert("class".to_string(), class_to_value(p.class));
                    pm.insert("lock".to_string(), Value::Bool(p.lock));
                    Value::Object(pm)
                })
                .collect(),
        ),
    );
    m.insert("returns_class".to_string(), class_to_value(s.returns_class));
    m.insert(
        "ops".to_string(),
        Value::Array(
            s.ops
                .iter()
                .map(|op| {
                    let mut om = BTreeMap::new();
                    om.insert("param".to_string(), Value::UInt(op.param as u64));
                    om.insert("class".to_string(), Value::Str(op.class.to_string()));
                    om.insert("method".to_string(), Value::Str(op.method.clone()));
                    om.insert("kind".to_string(), kind_to_value(op.kind));
                    om.insert("file".to_string(), Value::Str(op.file.clone()));
                    om.insert("line".to_string(), Value::UInt(u64::from(op.line)));
                    om.insert("col".to_string(), Value::UInt(u64::from(op.col)));
                    om.insert(
                        "spawned".to_string(),
                        match op.spawned {
                            Some((rid, multi)) => {
                                Value::Array(vec![Value::UInt(u64::from(rid)), Value::Bool(multi)])
                            }
                            None => Value::Null,
                        },
                    );
                    om.insert(
                        "lock_param".to_string(),
                        match op.lock_param {
                            Some((idx, mode)) => {
                                Value::Array(vec![Value::UInt(idx as u64), mode_to_value(mode)])
                            }
                            None => Value::Null,
                        },
                    );
                    om.insert("hops".to_string(), Value::UInt(u64::from(op.hops)));
                    Value::Object(om)
                })
                .collect(),
        ),
    );
    m.insert(
        "calls".to_string(),
        Value::Array(
            s.calls
                .iter()
                .map(|c| {
                    let mut cm = BTreeMap::new();
                    cm.insert("callee".to_string(), Value::Str(c.callee.clone()));
                    cm.insert(
                        "args".to_string(),
                        Value::Array(
                            c.args
                                .iter()
                                .map(|a| match a {
                                    Some(s) => Value::Str(s.clone()),
                                    None => Value::Null,
                                })
                                .collect(),
                        ),
                    );
                    Value::Object(cm)
                })
                .collect(),
        ),
    );
    Value::Object(m)
}

fn summary_from_value(v: &Value) -> Option<FnSummary> {
    let m = v.as_object()?;
    let params = match m.get("params")? {
        Value::Array(items) => items
            .iter()
            .map(|p| {
                let pm = p.as_object()?;
                Some(Param {
                    name: str_from(pm.get("name")?)?,
                    class: class_from_value(pm.get("class")?)?,
                    lock: matches!(pm.get("lock")?, Value::Bool(true)),
                })
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let ops = match m.get("ops")? {
        Value::Array(items) => items
            .iter()
            .map(|o| {
                let om = o.as_object()?;
                Some(ParamOp {
                    param: usize_from(om.get("param")?)?,
                    class: class_from_value(om.get("class")?)??,
                    method: str_from(om.get("method")?)?,
                    kind: kind_from_value(om.get("kind")?)?,
                    file: str_from(om.get("file")?)?,
                    line: u32_from(om.get("line")?)?,
                    col: u32_from(om.get("col")?)?,
                    spawned: match om.get("spawned")? {
                        Value::Null => None,
                        Value::Array(a) if a.len() == 2 => {
                            Some((u32_from(&a[0])?, matches!(&a[1], Value::Bool(true))))
                        }
                        _ => return None,
                    },
                    lock_param: match om.get("lock_param")? {
                        Value::Null => None,
                        Value::Array(a) if a.len() == 2 => {
                            Some((usize_from(&a[0])?, mode_from_value(&a[1])?))
                        }
                        _ => return None,
                    },
                    hops: u32_from(om.get("hops")?)?,
                })
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    let calls = match m.get("calls")? {
        Value::Array(items) => items
            .iter()
            .map(|c| {
                let cm = c.as_object()?;
                Some(CallEdge {
                    callee: str_from(cm.get("callee")?)?,
                    args: match cm.get("args")? {
                        Value::Array(a) => a
                            .iter()
                            .map(|x| match x {
                                Value::Null => Some(None),
                                Value::Str(s) => Some(Some(s.clone())),
                                _ => None,
                            })
                            .collect::<Option<Vec<_>>>()?,
                        _ => return None,
                    },
                })
            })
            .collect::<Option<Vec<_>>>()?,
        _ => return None,
    };
    Some(FnSummary {
        file: str_from(m.get("file")?)?,
        name: str_from(m.get("name")?)?,
        params,
        returns_class: class_from_value(m.get("returns_class")?)?,
        ops,
        calls,
    })
}

fn analysis_to_value(fa: &FileAnalysis) -> Value {
    let mut m = BTreeMap::new();
    m.insert(
        "escapes".to_string(),
        Value::Array(fa.escapes.iter().map(Serialize::to_value).collect()),
    );
    m.insert(
        "sites".to_string(),
        Value::Array(fa.sites.iter().map(Serialize::to_value).collect()),
    );
    m.insert(
        "pairs".to_string(),
        Value::Array(fa.pairs.iter().map(Serialize::to_value).collect()),
    );
    m.insert(
        "pruned_pairs".to_string(),
        Value::Array(fa.pruned_pairs.iter().map(Serialize::to_value).collect()),
    );
    m.insert(
        "awaits".to_string(),
        Value::Array(fa.awaits.iter().map(Serialize::to_value).collect()),
    );
    Value::Object(m)
}

fn analysis_from_value(v: &Value) -> Option<FileAnalysis> {
    fn vec_of<T: Deserialize>(v: &Value) -> Option<Vec<T>> {
        match v {
            Value::Array(items) => items.iter().map(|x| T::from_value(x).ok()).collect(),
            _ => None,
        }
    }
    let m = v.as_object()?;
    Some(FileAnalysis {
        escapes: vec_of::<Escape>(m.get("escapes")?)?,
        sites: vec_of::<StaticSite>(m.get("sites")?)?,
        pairs: vec_of::<StaticPair>(m.get("pairs")?)?,
        pruned_pairs: vec_of::<StaticPair>(m.get("pruned_pairs")?)?,
        awaits: vec_of::<AwaitPoint>(m.get("awaits")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_cache(tag: &str) -> (PathBuf, Cache) {
        let dir = std::env::temp_dir().join(format!("tsvd_cache_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        (dir.clone(), Cache::new(Some(dir)))
    }

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn workspace_digest_is_order_independent() {
        let a = workspace_digest(&[("a.rs", "1111"), ("b.rs", "2222")]);
        let b = workspace_digest(&[("b.rs", "2222"), ("a.rs", "1111")]);
        assert_eq!(a, b);
        let c = workspace_digest(&[("a.rs", "1111"), ("b.rs", "3333")]);
        assert_ne!(a, c, "content change must change the digest");
    }

    #[test]
    fn fragments_round_trip_through_the_cache() {
        let (dir, cache) = tmp_cache("frag");
        let src = "use tsvd_collections::Dictionary;\n\
                   fn bump(d: &Dictionary<u64, u64>) { d.set(1, 1); }\n";
        let frags = crate::callgraph::Summaries::file_fragments("src/a.rs", src);
        assert_eq!(frags.len(), 1);
        let hash = content_hash(src);
        assert!(cache.load_fragments("src/a.rs", &hash).is_none(), "cold");
        cache.store_fragments("src/a.rs", &hash, &frags);
        let back = cache.load_fragments("src/a.rs", &hash).expect("warm");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].name, "bump");
        assert_eq!(back[0].ops.len(), frags[0].ops.len());
        assert_eq!(back[0].params.len(), frags[0].params.len());
        assert_eq!(back[0].params[0].class, frags[0].params[0].class);
        // A different content hash must miss.
        assert!(cache
            .load_fragments("src/a.rs", "0000000000000000")
            .is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disabled_cache_is_inert() {
        let cache = Cache::new(None);
        assert!(cache.fragment_path("a.rs").is_none());
        cache.store_fragments("a.rs", "1234", &[]);
        assert!(cache.load_fragments("a.rs", "1234").is_none());
    }

    #[test]
    fn stale_schema_entries_are_rejected() {
        // A hash-collision-shaped stale entry: every key field matches
        // except the schema version — exactly what an old build's entry
        // looks like after an upgrade. It must miss, not load.
        let (dir, cache) = tmp_cache("schema");
        cache.store_fragments("a.rs", "1234", &[]);
        let path = cache.fragment_path("a.rs").expect("path");
        let text = std::fs::read_to_string(&path).expect("read");
        let bumped = text.replace(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            &format!("\"schema\":{}", SCHEMA_VERSION + 1),
        );
        assert_ne!(text, bumped, "fixture must actually change the schema");
        std::fs::write(&path, bumped).expect("write");
        assert!(cache.load_fragments("a.rs", "1234").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_truncated_entries_miss_without_panicking() {
        let (dir, cache) = tmp_cache("corrupt");
        cache.store_fragments("a.rs", "1234", &[]);
        let path = cache.fragment_path("a.rs").expect("path");
        // Truncated mid-write.
        let text = std::fs::read_to_string(&path).expect("read");
        std::fs::write(&path, &text[..text.len() / 2]).expect("write");
        assert!(cache.load_fragments("a.rs", "1234").is_none());
        // Outright garbage.
        std::fs::write(&path, b"\x00\xff not json at all").expect("write");
        assert!(cache.load_fragments("a.rs", "1234").is_none());
        // Valid JSON, wrong shape.
        std::fs::write(&path, "[1, 2, 3]").expect("write");
        assert!(cache.load_fragments("a.rs", "1234").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn entries_for_another_path_or_kind_are_rejected() {
        // Defends the name-by-path-hash scheme: even if two paths collided
        // into one file name, the embedded `rel` would still mismatch.
        let (dir, cache) = tmp_cache("rel");
        cache.store_fragments("a.rs", "1234", &[]);
        let frag = cache.fragment_path("a.rs").expect("path");
        let other = cache.fragment_path("b.rs").expect("path");
        std::fs::copy(&frag, &other).expect("copy");
        assert!(cache.load_fragments("b.rs", "1234").is_none());
        // An analysis load must not accept a fragments entry either.
        let analysis = cache.analysis_path("a.rs").expect("path");
        std::fs::copy(&frag, &analysis).expect("copy");
        assert!(cache.load_analysis("a.rs", "1234", "d").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analysis_entries_round_trip_and_gate_on_workspace_digest() {
        let (dir, cache) = tmp_cache("analysis");
        let src = "use tsvd_collections::Dictionary;\n\
                   fn f(pool: &Pool) {\n\
                       let d = Dictionary::new();\n\
                       let d1 = d.clone();\n\
                       pool.spawn(move || d1.set(1, 1));\n\
                       d.set(2, 2);\n\
                   }\n";
        let fa = crate::analysis::analyze_file("x.rs", src);
        assert!(!fa.pairs.is_empty(), "fixture must produce a pair");
        let hash = content_hash(src);
        cache.store_analysis("x.rs", &hash, "digest-1", &fa);
        let back = cache
            .load_analysis("x.rs", &hash, "digest-1")
            .expect("warm hit");
        assert_eq!(back.pairs, fa.pairs);
        assert_eq!(back.sites, fa.sites);
        assert_eq!(back.escapes, fa.escapes);
        assert_eq!(back.pruned_pairs, fa.pruned_pairs);
        assert_eq!(back.awaits, fa.awaits);
        // Same file, different workspace: another file's edit could have
        // changed the summaries this file's analysis depends on.
        assert!(cache.load_analysis("x.rs", &hash, "digest-2").is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
