//! Unified-diff rendering for span-anchored fix suggestions.
//!
//! The repair pass never applies an edit; it *shows* one. This module
//! turns a small set of line edits against a source file into a standard
//! unified diff (`--- a/…` / `+++ b/…` / `@@` hunks) that a human can
//! read, a terminal can colorize, and `git apply` could take verbatim.
//! Rendering is a pure function of (file text, edits), so the CI baseline
//! can gate suggestions byte-for-byte.

/// One line-granular edit: replace `deleted` original lines starting at
/// `start` (1-based) with `lines`. `deleted == 0` inserts *before*
/// `start`; `start == line_count + 1` with `deleted == 0` appends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEdit {
    /// 1-based first original line the edit touches.
    pub start: u32,
    /// How many original lines are removed (0 = pure insertion).
    pub deleted: u32,
    /// Replacement lines (empty = pure deletion).
    pub lines: Vec<String>,
}

impl SpanEdit {
    /// Inserts `lines` before original line `start`.
    pub fn insert_before(start: u32, lines: Vec<String>) -> SpanEdit {
        SpanEdit {
            start,
            deleted: 0,
            lines,
        }
    }

    /// Replaces the single original line `line` with `lines`.
    pub fn replace_line(line: u32, lines: Vec<String>) -> SpanEdit {
        SpanEdit {
            start: line,
            deleted: 1,
            lines,
        }
    }

    /// Deletes the single original line `line`.
    pub fn delete_line(line: u32) -> SpanEdit {
        SpanEdit {
            start: line,
            deleted: 1,
            lines: Vec::new(),
        }
    }
}

/// Renders `edits` against `original` as a unified diff with `context`
/// lines of context. Edits are sorted internally; returns `None` when any
/// edit falls outside the file or two edits overlap — a malformed
/// suggestion must degrade to "no diff", never to a wrong one.
pub fn render_unified(
    file: &str,
    original: &str,
    edits: &[SpanEdit],
    context: u32,
) -> Option<String> {
    if edits.is_empty() {
        return None;
    }
    let orig: Vec<&str> = original.lines().collect();
    let len = orig.len() as u32;
    let mut sorted: Vec<&SpanEdit> = edits.iter().collect();
    sorted.sort_by_key(|e| (e.start, e.deleted));
    for e in &sorted {
        let valid = e.start >= 1
            && (e.start + e.deleted).checked_sub(1)? <= len
            && (e.deleted > 0 || e.start <= len + 1);
        if !valid {
            return None;
        }
    }
    for w in sorted.windows(2) {
        if w[0].start + w[0].deleted > w[1].start {
            return None; // overlapping edits
        }
    }

    // Group edits whose context windows touch into one hunk.
    let mut groups: Vec<Vec<&SpanEdit>> = Vec::new();
    for e in sorted {
        match groups.last_mut() {
            Some(group) => {
                let last = group.last().expect("non-empty group");
                let last_end = last.start + last.deleted; // first line after the edit
                if e.start.saturating_sub(context) <= last_end.saturating_add(context) {
                    group.push(e);
                } else {
                    groups.push(vec![e]);
                }
            }
            None => groups.push(vec![e]),
        }
    }

    let mut out = format!("--- a/{file}\n+++ b/{file}\n");
    let mut delta: i64 = 0; // new-file minus old-file lines, before this hunk
    for group in groups {
        let first = group.first().expect("non-empty");
        let last = group.last().expect("non-empty");
        let old_start = first.start.saturating_sub(context).max(1);
        let old_end = (last.start + last.deleted)
            .saturating_sub(1)
            .saturating_add(context)
            .min(len); // inclusive; may be < old_start for an empty file
        let mut body = String::new();
        let mut old_count: u32 = 0;
        let mut new_count: u32 = 0;
        let mut pos = old_start; // 1-based cursor into the original
        for e in &group {
            while pos < e.start {
                body.push_str(&format!(" {}\n", orig[(pos - 1) as usize]));
                pos += 1;
                old_count += 1;
                new_count += 1;
            }
            for _ in 0..e.deleted {
                body.push_str(&format!("-{}\n", orig[(pos - 1) as usize]));
                pos += 1;
                old_count += 1;
            }
            for l in &e.lines {
                body.push_str(&format!("+{l}\n"));
                new_count += 1;
            }
        }
        while pos <= old_end {
            body.push_str(&format!(" {}\n", orig[(pos - 1) as usize]));
            pos += 1;
            old_count += 1;
            new_count += 1;
        }
        // Unified-diff convention: a zero-length range anchors to the line
        // *before* the position.
        let shown_old_start = if old_count == 0 {
            old_start.saturating_sub(1)
        } else {
            old_start
        };
        let new_start = if new_count == 0 {
            (i64::from(shown_old_start) + delta).max(0) as u32
        } else {
            (i64::from(old_start) + delta).max(1) as u32
        };
        out.push_str(&format!(
            "@@ -{shown_old_start},{old_count} +{new_start},{new_count} @@\n"
        ));
        out.push_str(&body);
        delta += group
            .iter()
            .map(|e| e.lines.len() as i64 - i64::from(e.deleted))
            .sum::<i64>();
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str =
        "fn main() {\n    let d = Dictionary::new();\n    d.set(1, 1);\n    d.get(&1);\n}\n";

    #[test]
    fn insertion_renders_one_hunk_with_context() {
        let diff = render_unified(
            "a.rs",
            SRC,
            &[SpanEdit::insert_before(
                3,
                vec!["    let _g = m.lock();".to_string()],
            )],
            1,
        )
        .expect("diff");
        assert_eq!(
            diff,
            "--- a/a.rs\n+++ b/a.rs\n\
             @@ -2,2 +2,3 @@\n\
             \x20    let d = Dictionary::new();\n\
             +    let _g = m.lock();\n\
             \x20    d.set(1, 1);\n"
        );
    }

    #[test]
    fn replacement_shows_minus_and_plus() {
        let diff = render_unified(
            "a.rs",
            SRC,
            &[SpanEdit::replace_line(
                2,
                vec!["    let d = Arc::new(Dictionary::new());".to_string()],
            )],
            0,
        )
        .expect("diff");
        assert!(diff.contains("-    let d = Dictionary::new();\n"));
        assert!(diff.contains("+    let d = Arc::new(Dictionary::new());\n"));
        assert!(diff.contains("@@ -2,1 +2,1 @@"));
    }

    #[test]
    fn nearby_edits_merge_into_one_hunk_distant_ones_do_not() {
        let one_hunk = render_unified(
            "a.rs",
            SRC,
            &[
                SpanEdit::insert_before(3, vec!["    // A".to_string()]),
                SpanEdit::insert_before(4, vec!["    // B".to_string()]),
            ],
            1,
        )
        .expect("diff");
        assert_eq!(one_hunk.matches("@@").count(), 2, "one @@ pair = one hunk");

        let many = "l1\nl2\nl3\nl4\nl5\nl6\nl7\nl8\nl9\nl10\n";
        let two_hunks = render_unified(
            "b.rs",
            many,
            &[
                SpanEdit::insert_before(1, vec!["// top".to_string()]),
                SpanEdit::insert_before(10, vec!["// bottom".to_string()]),
            ],
            1,
        )
        .expect("diff");
        assert_eq!(two_hunks.matches("@@").count(), 4, "two separate hunks");
        // The second hunk's new-file start accounts for the first insertion.
        assert!(two_hunks.contains("@@ -9,2 +10,3 @@"), "{two_hunks}");
    }

    #[test]
    fn out_of_range_or_overlapping_edits_degrade_to_none() {
        assert!(render_unified("a.rs", SRC, &[], 1).is_none());
        assert!(render_unified("a.rs", SRC, &[SpanEdit::delete_line(99)], 1).is_none());
        assert!(render_unified(
            "a.rs",
            SRC,
            &[SpanEdit::replace_line(2, vec![]), SpanEdit::delete_line(2)],
            1
        )
        .is_none());
    }

    #[test]
    fn append_at_end_of_file_is_valid() {
        let diff = render_unified(
            "a.rs",
            "only line\n",
            &[SpanEdit::insert_before(2, vec!["appended".to_string()])],
            1,
        )
        .expect("diff");
        assert!(diff.contains("+appended\n"));
        assert!(diff.contains(" only line\n"));
    }
}
