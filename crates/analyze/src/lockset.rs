//! Lockset/guard analysis: which critical sections protect which sites.
//!
//! Tracks, per function, three things the pair deriver consumes:
//!
//! - **Lock bindings**: `let m = TsvdMutex::new(..)` (also `Mutex`,
//!   `RwLock`, through `Arc::new(..)`), plus the aliasing forms
//!   `let m2 = m.clone()` and `let m2 = Arc::clone(&m)` — a clone guards
//!   the same lock, so clones resolve to their root.
//! - **Guard regions**: `let g = m.lock()` / `.write()` (exclusive) /
//!   `.read()` (shared), live until the enclosing block closes. Only
//!   `let`-bound guards create a region; a temporary like
//!   `m.lock().push(x)` guards a single expression and is deliberately
//!   ignored (it cannot span two sites, so it never changes a verdict).
//! - **Channels**: `let (tx, rx) = channel()` registers both endpoints
//!   under one per-function channel id; `tx.send(x)` marks `x`'s root as
//!   channel-transferred, which *demotes* (not prunes) pairs on that
//!   receiver — ownership transfer usually serializes, but the receiver
//!   may still alias. The happens-before pass ([`crate::hb`]) additionally
//!   uses the endpoint ids to draw send→recv ordering edges.

use std::collections::HashMap;

pub use crate::callgraph::GuardMode;
use crate::callgraph::LOCK_TYPES;
use crate::lexer::{TokKind, Token};

/// One active guard region.
#[derive(Debug, Clone)]
pub struct Guard {
    /// Root lock binding the guard came from.
    pub root: String,
    /// Exclusive or shared.
    pub mode: GuardMode,
    /// Brace depth at the `let`; the guard dies when that block closes.
    depth: usize,
}

/// Per-function lock/guard/channel state, driven by the site pass.
#[derive(Debug, Default)]
pub struct LockTracker {
    /// Lock binding name → root lock name.
    locks: HashMap<String, String>,
    guards: Vec<Guard>,
    /// Registered mpsc sender binding names → channel id.
    senders: HashMap<String, u32>,
    /// Registered mpsc receiver binding names → channel id.
    receivers: HashMap<String, u32>,
    /// Next per-function channel id.
    next_channel: u32,
}

impl LockTracker {
    /// A fresh tracker with nothing held.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears everything; called at each `fn` item boundary.
    pub fn reset(&mut self) {
        self.locks.clear();
        self.guards.clear();
        self.senders.clear();
        self.receivers.clear();
        self.next_channel = 0;
    }

    /// The locks currently held, strongest mode per root.
    pub fn active(&self) -> Vec<(String, GuardMode)> {
        let mut out: Vec<(String, GuardMode)> = Vec::new();
        for g in &self.guards {
            match out.iter_mut().find(|(root, _)| *root == g.root) {
                Some((_, mode)) => {
                    if g.mode == GuardMode::Exclusive {
                        *mode = GuardMode::Exclusive;
                    }
                }
                None => out.push((g.root.clone(), g.mode)),
            }
        }
        out
    }

    /// Root lock name for a binding, if it is a tracked lock.
    pub fn lock_root(&self, name: &str) -> Option<&str> {
        self.locks.get(name).map(String::as_str)
    }

    /// Whether `name` is a registered channel sender.
    pub fn is_sender(&self, name: &str) -> bool {
        self.senders.contains_key(name)
    }

    /// Channel id behind a sender binding, if tracked.
    pub fn sender_channel(&self, name: &str) -> Option<u32> {
        self.senders.get(name).copied()
    }

    /// Channel id behind a receiver binding, if tracked.
    pub fn receiver_channel(&self, name: &str) -> Option<u32> {
        self.receivers.get(name).copied()
    }

    /// Drops guards whose block has closed; `depth` is the brace depth
    /// *after* the closing `}` was popped.
    pub fn on_close_brace(&mut self, depth: usize) {
        self.guards.retain(|g| g.depth <= depth);
    }

    /// Removes a rebound name (shadowing `let` with an untracked RHS).
    pub fn forget(&mut self, name: &str) {
        self.locks.remove(name);
        self.senders.remove(name);
        self.receivers.remove(name);
    }

    /// Inspects a `let` statement at `let_idx`; returns `true` when it was
    /// lock-relevant (lock constructor, lock alias, guard, or channel) and
    /// was consumed. `depth` is the current brace depth.
    pub fn on_let(&mut self, toks: &[Token], let_idx: usize, depth: usize) -> bool {
        let mut i = let_idx + 1;
        let Some(first) = toks.get(i) else {
            return false;
        };
        // Tuple pattern: only the channel form is tracked.
        if first.is_punct('(') {
            return self.on_channel_let(toks, i);
        }
        if first.is_ident("mut") {
            i += 1;
        }
        let Some(name_tok) = toks.get(i) else {
            return false;
        };
        if name_tok.kind != TokKind::Ident {
            return false;
        }
        let name = name_tok.text.clone();
        i += 1;
        while i < toks.len() && !toks[i].is_punct('=') {
            if toks[i].is_punct(';') {
                return false;
            }
            i += 1;
        }
        i += 1; // past `=`

        // Guard: `RECV.lock()/read()/write()` on a tracked lock.
        if let Some((root, mode)) = self.parse_guard_rhs(toks, i) {
            self.guards.push(Guard { root, mode, depth });
            // The guard binding itself shadows whatever held the name.
            self.forget(&name);
            return true;
        }
        // Alias: `SRC.clone()` or `Arc::clone(&SRC)` of a tracked lock.
        if let Some(root) = self.parse_alias_rhs(toks, i) {
            self.locks.insert(name, root);
            return true;
        }
        // Constructor: a lock type's ctor anywhere in the RHS head —
        // `TsvdMutex::new(..)`, `Arc::new(Mutex::new(..))`.
        if rhs_is_lock_ctor(toks, i) {
            self.locks.insert(name.clone(), name);
            return true;
        }
        false
    }

    fn parse_guard_rhs(&self, toks: &[Token], i: usize) -> Option<(String, GuardMode)> {
        let recv = toks.get(i)?;
        if recv.kind != TokKind::Ident || !toks.get(i + 1)?.is_punct('.') {
            return None;
        }
        let mode = match toks.get(i + 2)?.text.as_str() {
            "lock" | "write" => GuardMode::Exclusive,
            "read" => GuardMode::Shared,
            _ => return None,
        };
        if !toks.get(i + 3)?.is_punct('(') {
            return None;
        }
        let root = self.locks.get(&recv.text)?.clone();
        Some((root, mode))
    }

    fn parse_alias_rhs(&self, toks: &[Token], i: usize) -> Option<String> {
        // `SRC.clone()`
        if toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
            && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("clone"))
        {
            return self.locks.get(&toks[i].text).cloned();
        }
        // `Arc::clone(&SRC)`
        if toks.get(i).is_some_and(|t| t.is_ident("Arc"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("clone"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            let mut j = i + 5;
            if toks.get(j).is_some_and(|t| t.is_punct('&')) {
                j += 1;
            }
            let src = toks.get(j)?;
            return self.locks.get(&src.text).cloned();
        }
        None
    }

    /// `let (tx, rx) = [mpsc::]channel()` — registers `tx` as a sender and
    /// `rx` as a receiver of the same fresh channel id.
    fn on_channel_let(&mut self, toks: &[Token], open_idx: usize) -> bool {
        let tx = toks.get(open_idx + 1);
        let comma = toks.get(open_idx + 2);
        let rx = toks.get(open_idx + 3);
        let close = toks.get(open_idx + 4);
        let (Some(tx), Some(comma), Some(rx), Some(close)) = (tx, comma, rx, close) else {
            return false;
        };
        if tx.kind != TokKind::Ident
            || !comma.is_punct(',')
            || rx.kind != TokKind::Ident
            || !close.is_punct(')')
        {
            return false;
        }
        // RHS must call `channel(` before the statement ends.
        let mut i = open_idx + 5;
        while i < toks.len() && !toks[i].is_punct(';') {
            if toks[i].is_ident("channel") && toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
                let id = self.next_channel;
                self.next_channel += 1;
                self.senders.insert(tx.text.clone(), id);
                self.receivers.insert(rx.text.clone(), id);
                return true;
            }
            i += 1;
        }
        false
    }
}

/// Whether the RHS head (from `i` to the statement end) constructs a lock:
/// a lock type name followed by `::ctor(`, possibly inside `Arc::new(..)`.
fn rhs_is_lock_ctor(toks: &[Token], i: usize) -> bool {
    let mut j = i;
    while j < toks.len() && !toks[j].is_punct(';') {
        if toks[j].kind == TokKind::Ident
            && LOCK_TYPES.contains(&toks[j].text.as_str())
            && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        {
            return true;
        }
        j += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn let_indices(toks: &[Token]) -> Vec<usize> {
        toks.iter()
            .enumerate()
            .filter(|(_, t)| t.is_ident("let"))
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn ctor_alias_and_guard_chain() {
        let toks = tokenize(
            "let m = TsvdMutex::new(0);\n\
             let m2 = m.clone();\n\
             let g = m2.lock();\n",
        );
        let mut lt = LockTracker::new();
        for idx in let_indices(&toks) {
            assert!(lt.on_let(&toks, idx, 0));
        }
        assert_eq!(lt.lock_root("m2"), Some("m"), "clone aliases the root");
        let active = lt.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0], ("m".to_string(), GuardMode::Exclusive));
    }

    #[test]
    fn arc_wrapped_ctor_and_arc_clone() {
        let toks = tokenize(
            "let m = Arc::new(Mutex::new(0));\n\
             let m2 = Arc::clone(&m);\n\
             let g = m2.read();\n",
        );
        let mut lt = LockTracker::new();
        for idx in let_indices(&toks) {
            assert!(lt.on_let(&toks, idx, 0));
        }
        assert_eq!(lt.active(), vec![("m".to_string(), GuardMode::Shared)]);
    }

    #[test]
    fn guard_dies_with_its_block() {
        let toks = tokenize("let m = TsvdMutex::new(0); let g = m.lock();");
        let mut lt = LockTracker::new();
        let lets = let_indices(&toks);
        lt.on_let(&toks, lets[0], 0);
        lt.on_let(&toks, lets[1], 2); // guard taken two blocks deep
        assert_eq!(lt.active().len(), 1);
        lt.on_close_brace(1); // inner block closed
        assert!(lt.active().is_empty());
    }

    #[test]
    fn non_lock_lets_are_not_consumed() {
        let toks = tokenize("let d = Dictionary::new(); let x = 5;");
        let mut lt = LockTracker::new();
        for idx in let_indices(&toks) {
            assert!(!lt.on_let(&toks, idx, 0));
        }
        assert!(lt.active().is_empty());
    }

    #[test]
    fn channel_sender_is_registered() {
        let toks = tokenize("let (tx, rx) = mpsc::channel(); let y = 1;");
        let mut lt = LockTracker::new();
        let lets = let_indices(&toks);
        assert!(lt.on_let(&toks, lets[0], 0));
        assert!(!lt.on_let(&toks, lets[1], 0));
        assert!(lt.is_sender("tx"));
        assert!(!lt.is_sender("rx"));
    }

    #[test]
    fn channel_endpoints_share_an_id_and_distinct_channels_differ() {
        let toks = tokenize("let (tx, rx) = mpsc::channel(); let (tx2, rx2) = mpsc::channel();");
        let mut lt = LockTracker::new();
        for idx in let_indices(&toks) {
            assert!(lt.on_let(&toks, idx, 0));
        }
        assert_eq!(lt.sender_channel("tx"), Some(0));
        assert_eq!(lt.receiver_channel("rx"), Some(0));
        assert_eq!(lt.sender_channel("tx2"), Some(1));
        assert_eq!(lt.receiver_channel("rx2"), Some(1));
        assert_eq!(lt.receiver_channel("tx"), None, "tx is not a receiver");
        lt.forget("rx");
        assert_eq!(lt.receiver_channel("rx"), None, "shadowed rx is dropped");
    }

    #[test]
    fn exclusive_beats_shared_on_the_same_root() {
        let toks = tokenize("let m = RwLock::new(0); let a = m.read(); let b = m.write();");
        let mut lt = LockTracker::new();
        for idx in let_indices(&toks) {
            lt.on_let(&toks, idx, 0);
        }
        assert_eq!(lt.active(), vec![("m".to_string(), GuardMode::Exclusive)]);
    }
}
