//! The per-file analyses: escape lint, site database, dangerous-pair
//! candidates.
//!
//! Everything here is a token-level heuristic, deliberately so — the
//! offline build has no real Rust parser, and the paper's own static
//! proxy-method pass (§3.1) is similarly shallow: find the call sites that
//! *look* thread-unsafe and let the dynamic detector confirm. False
//! positives cost a wasted trap; false negatives fall back to dynamic
//! near-miss discovery. The heuristics and their known limits:
//!
//! - **Provenance** comes from `use` statements and fully-qualified paths.
//!   A bare `HashSet` with no import evidence is not flagged.
//! - **Bindings** are tracked through `let x = Class::new()` /
//!   `::unmonitored()` / `::with_*` and `let y = x.clone()` (wrapper
//!   handles share storage, so a clone aliases its root), plus
//!   `Arc::clone(&x)` and constructor-returning helpers resolved through
//!   [`Summaries`]. A shadowing `let` whose RHS is unrecognized *drops*
//!   the old meaning instead of leaking it. Bindings reset at each `fn`
//!   item; fields (`self.map`) are not tracked.
//! - **Interprocedural flow**: a plain call `bump(&d1, 1)` whose callee is
//!   summarized materializes the callee's wrapper accesses at the callee's
//!   own site positions (what `#[track_caller]` reports), attributed to
//!   the caller's binding. Each extra call hop weakens the pair's
//!   confidence.
//! - **Locksets**: `let g = m.lock()` guard regions (see
//!   [`lockset`](crate::lockset)) annotate each site with the locks held.
//!   A pair whose both sides hold an exclusive guard on the same lock is
//!   *pruned* (serialized by construction); weaker evidence only demotes.
//! - **Concurrency regions** are the parenthesized extents of
//!   `spawn`/`spawn_fast`/`parallel_for_each`/`parallel_invoke` calls (plus
//!   `.run`/`.run_with_hook` in files that mention `Task`). A region inside
//!   a loop, or started by `parallel_for_each`/`parallel_invoke`, is
//!   *multi-instance*: its body races with itself.

use std::collections::{HashMap, HashSet};

use tsvd_core::access::classify_op;
use tsvd_core::OpKind;

use crate::callgraph::{call_args, GuardMode, Summaries};
use crate::hb::{ChanEvent, HbEndpoint, HbEvidence, HbIndex, RegionHb};
use crate::lexer::{tokenize, TokKind, Token};
use crate::lockset::LockTracker;
use crate::report::{site_text, AwaitPoint, Escape, StaticPair, StaticSite};

/// Raw (uninstrumented) collection type names worth flagging.
const RAW_TYPES: &[&str] = &[
    "HashMap",
    "HashSet",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "LinkedList",
    "BinaryHeap",
    "RawCell",
];

/// Idents that start a concurrency region when directly called.
pub(crate) const SPAWN_CALLS: &[&str] = &[
    "spawn",
    "spawn_fast",
    "parallel_for_each",
    "parallel_invoke",
];

/// Inherently multi-instance spawn calls: the closure runs once per item.
pub(crate) const MULTI_SPAWN_CALLS: &[&str] = &["parallel_for_each", "parallel_invoke"];

/// Everything the analyzer learned about one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Raw-collection escapes (unfiltered; allowlisting happens later).
    pub escapes: Vec<Escape>,
    /// Instrumented-collection call sites.
    pub sites: Vec<StaticSite>,
    /// Dangerous-pair candidates derived from the sites.
    pub pairs: Vec<StaticPair>,
    /// Candidates removed by lockset or happens-before pruning (reported,
    /// never armed).
    pub pruned_pairs: Vec<StaticPair>,
    /// `.await` task-boundary markers (see [`crate::hb`]).
    pub awaits: Vec<AwaitPoint>,
}

/// Analyzes one file in isolation: a single-file summary set, so
/// constructor returns and helper calls within the file still resolve.
pub fn analyze_file(file: &str, src: &str) -> FileAnalysis {
    let one = [(file.to_string(), src.to_string())];
    analyze_file_with(file, src, &Summaries::build(&one))
}

/// Analyzes one file against a pre-built (usually whole-tree) summary set.
/// `file` must be the analysis-root-relative path with forward slashes —
/// it is embedded verbatim in site texts.
pub fn analyze_file_with(file: &str, src: &str, summaries: &Summaries) -> FileAnalysis {
    let toks = tokenize(src);
    let evidence = concurrency_evidence(&toks);
    let imports = collect_imports(&toks);
    let use_ranges = use_statement_ranges(&toks);
    let mut out = FileAnalysis::default();
    if let Some(ev) = &evidence {
        out.escapes = find_escapes(file, &toks, &imports, &use_ranges, ev);
    }
    let pass = find_sites(file, &toks, &imports, summaries);
    let derived = derive_pairs(&pass.sites, &pass.regions, &pass.channeled, &pass.hb);
    out.pairs = derived.kept;
    out.pruned_pairs = derived.pruned;
    out.awaits = pass
        .hb
        .awaits
        .iter()
        .map(|&(line, column)| AwaitPoint {
            file: file.to_string(),
            line,
            column,
        })
        .collect();
    out.sites = pass.sites.into_iter().map(|s| s.site).collect();
    out
}

/// Why a file counts as concurrent, if it does.
fn concurrency_evidence(toks: &[Token]) -> Option<String> {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "tsvd_tasks" => return Some("uses tsvd_tasks".to_string()),
            "spawn" | "spawn_fast" | "parallel_for_each" | "parallel_invoke" | "scope"
                if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) =>
            {
                return Some(format!("calls {}", t.text));
            }
            _ => {}
        }
    }
    None
}

/// One resolved `use` import: local name → full path segments.
#[derive(Debug, Clone, PartialEq)]
struct Import {
    path: Vec<String>,
}

impl Import {
    fn is_raw(&self) -> bool {
        let p = &self.path;
        (p.len() >= 2 && p[0] == "std" && p[1] == "collections")
            || (p.len() >= 2
                && p.iter().any(|s| s == "raw")
                && matches!(
                    p[0].as_str(),
                    "tsvd_collections" | "crate" | "super" | "self"
                ))
    }

    fn is_wrapper(&self) -> bool {
        !self.is_raw()
            && matches!(
                self.path.first().map(String::as_str),
                Some("tsvd_collections" | "crate" | "super" | "self")
            )
            && self
                .path
                .last()
                .is_some_and(|leaf| tsvd_core::access::api_classes().contains(&leaf.as_str()))
    }

    /// The path without its leaf: the module the name came from.
    fn module_path(&self) -> String {
        self.path[..self.path.len().saturating_sub(1)].join("::")
    }
}

/// Token index ranges (inclusive start, exclusive end) of `use` statements,
/// so escape scanning can skip the imports themselves.
fn use_statement_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            ranges.push((start, i + 1));
        }
        i += 1;
    }
    ranges
}

/// Maps local names to their import paths, flattening `{a, b as c}` groups.
fn collect_imports(toks: &[Token]) -> HashMap<String, Import> {
    let mut map = HashMap::new();
    for (start, end) in use_statement_ranges(toks) {
        let body = &toks[start + 1..end.saturating_sub(1).max(start + 1)];
        collect_use_tree(body, &mut 0, &mut Vec::new(), &mut map);
    }
    map
}

/// Recursive descent over one use-tree. `prefix` holds the segments before
/// the current position.
fn collect_use_tree(
    toks: &[Token],
    i: &mut usize,
    prefix: &mut Vec<String>,
    out: &mut HashMap<String, Import>,
) {
    let depth_at_entry = prefix.len();
    let mut alias: Option<String> = None;
    while *i < toks.len() {
        let t = &toks[*i];
        if t.kind == TokKind::Ident {
            if t.text == "as" {
                *i += 1;
                if let Some(a) = toks.get(*i) {
                    alias = Some(a.text.clone());
                    *i += 1;
                }
                continue;
            }
            prefix.push(t.text.clone());
            *i += 1;
        } else if t.is_punct(':') {
            *i += 1; // each `::` lexes as two `:` tokens
        } else if t.is_punct('{') {
            *i += 1;
            collect_use_tree(toks, i, prefix, out);
            // The group consumed the path; nothing is pending at this level.
            prefix.truncate(depth_at_entry);
        } else if t.is_punct(',') || t.is_punct('}') {
            // End of one path in a group: register the leaf.
            if prefix.len() > depth_at_entry || alias.is_some() {
                register_leaf(prefix, alias.take(), out);
                prefix.truncate(depth_at_entry);
            }
            let closing = t.is_punct('}');
            *i += 1;
            if closing {
                return;
            }
        } else if t.is_punct('*') {
            // Glob imports carry no leaf name; nothing to register.
            prefix.truncate(depth_at_entry);
            *i += 1;
        } else {
            *i += 1;
        }
    }
    if prefix.len() > depth_at_entry || alias.is_some() {
        register_leaf(prefix, alias.take(), out);
        prefix.truncate(depth_at_entry);
    }
}

fn register_leaf(path: &[String], alias: Option<String>, out: &mut HashMap<String, Import>) {
    if path.is_empty() {
        return;
    }
    let name = alias.unwrap_or_else(|| path.last().expect("non-empty").clone());
    out.insert(
        name,
        Import {
            path: path.to_vec(),
        },
    );
}

/// The escape lint: raw-collection call sites in a file with concurrency
/// evidence. One escape per `(line, type name)`.
fn find_escapes(
    file: &str,
    toks: &[Token],
    imports: &HashMap<String, Import>,
    use_ranges: &[(usize, usize)],
    evidence: &str,
) -> Vec<Escape> {
    let in_use = |i: usize| use_ranges.iter().any(|&(s, e)| i >= s && i < e);
    let mut escapes: Vec<Escape> = Vec::new();
    let mut push = |t: &Token, name: &str, via: String| {
        if escapes
            .iter()
            .any(|e: &Escape| e.line == t.line && e.name == name)
        {
            return;
        }
        escapes.push(Escape {
            file: file.to_string(),
            line: t.line,
            name: name.to_string(),
            via,
            evidence: evidence.to_string(),
            allowed: false,
        });
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || in_use(i) {
            continue;
        }
        // Fully qualified: std::collections::T or <...>::raw::T.
        if RAW_TYPES.contains(&t.text.as_str()) {
            if let Some(prefix) = qualified_prefix(toks, i) {
                if prefix.ends_with(&["std".to_string(), "collections".to_string()][..]) {
                    push(t, &t.text, "std::collections".to_string());
                    continue;
                }
                if prefix.last().is_some_and(|s| s == "raw") {
                    push(t, &t.text, "tsvd_collections::raw".to_string());
                    continue;
                }
            }
        }
        // Imported raw name used as a constructor path: `HashMap::new()`.
        let followed_by_path = toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(i + 2).is_some_and(|b| b.is_punct(':'));
        if followed_by_path {
            if let Some(imp) = imports.get(&t.text) {
                if imp.is_raw() {
                    push(t, &t.text, imp.module_path());
                }
            }
        }
    }
    escapes
}

/// The `::`-separated ident segments immediately before token `i`, if any.
fn qualified_prefix(toks: &[Token], i: usize) -> Option<Vec<String>> {
    let mut segs = Vec::new();
    let mut j = i;
    while j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        j -= 2;
        if j == 0 || toks[j - 1].kind != TokKind::Ident {
            break;
        }
        j -= 1;
        segs.push(toks[j].text.clone());
    }
    if segs.is_empty() {
        None
    } else {
        segs.reverse();
        Some(segs)
    }
}

/// A site plus the bookkeeping pair derivation needs.
#[derive(Debug)]
struct SiteCtx {
    site: StaticSite,
    region: u32,
    tok_index: usize,
    kind: OpKind,
    /// Locks held at the site, strongest mode per root.
    locks: Vec<(String, GuardMode)>,
    /// Provenance distance: call hops between the binding's constructor
    /// evidence (plus the op's own propagation depth) and the site.
    hops: u32,
    /// Which `fn` item the site appears in (HB facts are per-function).
    fn_id: u32,
    /// Enclosing-brace chain at the site (HB dominance test input).
    scopes: Vec<u32>,
}

/// A concurrency region: one spawn-call extent.
#[derive(Debug)]
struct Region {
    /// Token index of the spawn call's opening paren.
    start_tok: usize,
    /// Whether the region body can run against itself.
    multi: bool,
}

#[derive(Debug, Default)]
struct SitePass {
    sites: Vec<SiteCtx>,
    /// Index 0 is the implicit top-level region.
    regions: Vec<Region>,
    /// Receiver roots sent through an mpsc channel (ownership transfer).
    channeled: HashSet<String>,
    /// Happens-before facts gathered during the same walk.
    hb: HbIndex,
}

/// One paren-stack entry.
#[derive(Debug, Clone, Copy)]
enum Paren {
    /// A spawn call extent: its body is this concurrency region.
    Region(u32),
    /// A `scope(...)` call extent (index into the HB scope list).
    Scope(usize),
    /// Any other paren.
    Plain,
}

/// The innermost enclosing spawn region, 0 at top level.
fn ambient_region(parens: &[Paren]) -> u32 {
    parens
        .iter()
        .rev()
        .find_map(|p| match p {
            Paren::Region(id) => Some(*id),
            _ => None,
        })
        .unwrap_or(0)
}

/// The enclosing-brace id chain, outermost first.
fn scope_chain(braces: &[(u32, bool)]) -> Vec<u32> {
    braces.iter().map(|&(id, _)| id).collect()
}

/// What a tracked binding denotes.
#[derive(Debug, Clone)]
struct Binding {
    class: &'static str,
    /// The original binding an aliasing `.clone()` chain leads back to.
    root: String,
    /// 0 for a lexical constructor; 1 when the class came from a
    /// summarized helper's return type.
    hops: u32,
}

fn find_sites(
    file: &str,
    toks: &[Token],
    imports: &HashMap<String, Import>,
    summaries: &Summaries,
) -> SitePass {
    let file_has_task = toks.iter().any(|t| t.is_ident("Task"));
    let mut pass = SitePass::default();
    pass.regions.push(Region {
        start_tok: 0,
        multi: false,
    });
    pass.hb.regions.push(RegionHb::default());
    let mut bindings: HashMap<String, Binding> = HashMap::new();
    let mut locks = LockTracker::new();
    let mut parens: Vec<Paren> = Vec::new();
    // Brace stack entries: (scope id, is-loop-body).
    let mut braces: Vec<(u32, bool)> = Vec::new();
    let mut next_scope: u32 = 0;
    let mut cur_fn: u32 = 0;
    let mut pending_loop = false;
    // One fresh region per (call token, callee file, callee region id), so
    // every op a single call materializes from the same spawned task lands
    // in the same region, while two calls get distinct regions.
    let mut spawn_region_map: HashMap<(usize, String, u32), u32> = HashMap::new();

    for i in 0..toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    cur_fn += 1;
                    bindings.clear();
                    locks.reset();
                    pass.hb.on_fn();
                }
                "await" if i > 0 && toks[i - 1].is_punct('.') => {
                    pass.hb.awaits.push((t.line, t.col));
                }
                "for" | "while" | "loop" => {
                    // `impl Trait for Type` also uses `for`; a loop keyword
                    // in statement position follows a brace, semicolon, or
                    // nothing.
                    let stmt_pos = i == 0
                        || matches!(&toks[i - 1], p if p.is_punct('{')
                            || p.is_punct('}')
                            || p.is_punct(';')
                            || p.is_punct(')'));
                    if stmt_pos {
                        pending_loop = true;
                    }
                }
                "let" => {
                    handle_let(
                        toks,
                        i,
                        file,
                        imports,
                        summaries,
                        &mut bindings,
                        &mut locks,
                        braces.len(),
                    );
                    // A rebinding `let` also retires any spawn handle of
                    // the same name (the binding the join would resolve to
                    // is gone). The handle a spawn RHS binds is recorded
                    // later, at the spawn call's own paren.
                    if let Some(name) = single_let_name(toks, i) {
                        pass.hb.forget_handle(&name);
                    }
                }
                _ => {}
            },
            TokKind::Punct => match t.text.as_bytes().first() {
                Some(b'(') => {
                    // Instrumented call site: `recv . method (`.
                    if i >= 3
                        && toks[i - 1].kind == TokKind::Ident
                        && toks[i - 2].is_punct('.')
                        && toks[i - 3].kind == TokKind::Ident
                    {
                        if let Some(b) = bindings.get(&toks[i - 3].text) {
                            let method = &toks[i - 1];
                            let op = format!("{}.{}", b.class, method.text);
                            if let Some(kind) = classify_op(&op) {
                                let region = ambient_region(&parens);
                                let active = locks.active();
                                pass.sites.push(SiteCtx {
                                    site: StaticSite {
                                        file: file.to_string(),
                                        line: method.line,
                                        column: method.col,
                                        receiver: b.root.clone(),
                                        class: b.class.to_string(),
                                        method: method.text.clone(),
                                        kind: kind_str(kind).to_string(),
                                        region,
                                        guards: guard_strings(&active),
                                    },
                                    region,
                                    tok_index: i,
                                    kind,
                                    locks: active,
                                    hops: b.hops,
                                    fn_id: cur_fn,
                                    scopes: scope_chain(&braces),
                                });
                            }
                        }
                        // Channel transfer: `tx.send(x)` hands x's root to
                        // whoever holds the receiver. The send itself is an
                        // HB event on the channel.
                        if toks[i - 1].is_ident("send") {
                            if let Some(chan) = locks.sender_channel(&toks[i - 3].text) {
                                if let Some(root) = call_args(toks, i)
                                    .first()
                                    .and_then(|a| a.as_deref())
                                    .and_then(|a| bindings.get(a).map(|b| b.root.clone()))
                                {
                                    pass.channeled.insert(root);
                                }
                                pass.hb.sends.push(ChanEvent {
                                    chan,
                                    tok: i,
                                    region: ambient_region(&parens),
                                    fn_id: cur_fn,
                                    scopes: scope_chain(&braces),
                                    in_loop: braces.iter().any(|&(_, l)| l),
                                });
                            }
                        }
                        // A blocking `rx.recv()` is the matching HB event
                        // (`try_recv` deliberately is not: it can return
                        // before the send).
                        if toks[i - 1].is_ident("recv") {
                            if let Some(chan) = locks.receiver_channel(&toks[i - 3].text) {
                                pass.hb.recvs.push(ChanEvent {
                                    chan,
                                    tok: i,
                                    region: ambient_region(&parens),
                                    fn_id: cur_fn,
                                    scopes: scope_chain(&braces),
                                    in_loop: braces.iter().any(|&(_, l)| l),
                                });
                            }
                        }
                        // `h.join()` on a spawn handle seals that region.
                        if toks[i - 1].is_ident("join") {
                            pass.hb.on_join(
                                &toks[i - 3].text,
                                i,
                                ambient_region(&parens),
                                scope_chain(&braces),
                                braces.iter().any(|&(_, l)| l),
                            );
                        }
                    }
                    // Spawn call: this paren extent is a new region.
                    let spawn_ident = toks
                        .get(i.wrapping_sub(1))
                        .filter(|p| p.kind == TokKind::Ident)
                        .map(|p| p.text.as_str());
                    let is_spawn = match spawn_ident {
                        Some(s) if SPAWN_CALLS.contains(&s) => true,
                        Some("run" | "run_with_hook") => {
                            file_has_task && i >= 2 && toks[i - 2].is_punct('.')
                        }
                        _ => false,
                    };
                    if is_spawn {
                        let in_loop = braces.iter().any(|&(_, l)| l);
                        let multi =
                            in_loop || spawn_ident.is_some_and(|s| MULTI_SPAWN_CALLS.contains(&s));
                        let id = pass.regions.len() as u32;
                        pass.regions.push(Region {
                            start_tok: i,
                            multi,
                        });
                        pass.hb.regions.push(RegionHb {
                            start_tok: i,
                            parent_region: ambient_region(&parens),
                            fn_id: cur_fn,
                            multi,
                            synthetic: false,
                            scopes: scope_chain(&braces),
                            handle: None,
                            join: None,
                        });
                        if let Some(name) = spawn_handle(toks, i) {
                            pass.hb.bind_handle(name, id);
                        }
                        parens.push(Paren::Region(id));
                    } else if spawn_ident == Some("scope") {
                        // A scoped-thread block: every region spawned inside
                        // these parens completes at the closing paren.
                        let sid = pass.hb.open_scope(
                            i,
                            ambient_region(&parens),
                            cur_fn,
                            scope_chain(&braces),
                            braces.iter().any(|&(_, l)| l),
                        );
                        parens.push(Paren::Scope(sid));
                    } else {
                        // Interprocedural: a plain call to a summarized fn
                        // materializes its wrapper accesses here.
                        let after_path =
                            i >= 2 && (toks[i - 2].is_punct('.') || toks[i - 2].is_punct(':'));
                        if let Some(callee) = spawn_ident.filter(|_| !after_path) {
                            if let Some(sum) = summaries.lookup(file, callee) {
                                let argv = call_args(toks, i);
                                let caller_region = ambient_region(&parens);
                                let in_loop = braces.iter().any(|&(_, l)| l);
                                let call_scopes = scope_chain(&braces);
                                for op in &sum.ops {
                                    let Some(Some(arg)) = argv.get(op.param) else {
                                        continue;
                                    };
                                    let Some(b) = bindings.get(arg.as_str()) else {
                                        continue;
                                    };
                                    if b.class != op.class {
                                        continue;
                                    }
                                    let region = match op.spawned {
                                        None => caller_region,
                                        Some((rid, op_multi)) => {
                                            let key = (i, op.file.clone(), rid);
                                            *spawn_region_map.entry(key).or_insert_with(|| {
                                                let id = pass.regions.len() as u32;
                                                pass.regions.push(Region {
                                                    start_tok: i,
                                                    multi: op_multi || in_loop,
                                                });
                                                // Synthetic: the spawn lives
                                                // in the callee, so nothing
                                                // in this file can seal it.
                                                pass.hb.regions.push(RegionHb {
                                                    start_tok: i,
                                                    parent_region: caller_region,
                                                    fn_id: cur_fn,
                                                    multi: op_multi || in_loop,
                                                    synthetic: true,
                                                    scopes: call_scopes.clone(),
                                                    handle: None,
                                                    join: None,
                                                });
                                                id
                                            })
                                        }
                                    };
                                    let mut site_locks = locks.active();
                                    if let Some((q, mode)) = op.lock_param {
                                        if let Some(root) = argv
                                            .get(q)
                                            .and_then(|a| a.as_deref())
                                            .and_then(|a| locks.lock_root(a))
                                        {
                                            push_lock(&mut site_locks, root.to_string(), mode);
                                        }
                                    }
                                    pass.sites.push(SiteCtx {
                                        site: StaticSite {
                                            file: op.file.clone(),
                                            line: op.line,
                                            column: op.col,
                                            receiver: b.root.clone(),
                                            class: op.class.to_string(),
                                            method: op.method.clone(),
                                            kind: kind_str(op.kind).to_string(),
                                            region,
                                            guards: guard_strings(&site_locks),
                                        },
                                        region,
                                        tok_index: i,
                                        kind: op.kind,
                                        locks: site_locks,
                                        hops: b.hops + op.hops + 1,
                                        fn_id: cur_fn,
                                        scopes: call_scopes.clone(),
                                    });
                                }
                            }
                        }
                        parens.push(Paren::Plain);
                    }
                }
                Some(b')') => {
                    if let Some(Paren::Scope(sid)) = parens.pop() {
                        pass.hb.close_scope(sid, i);
                    }
                }
                Some(b'{') => {
                    braces.push((next_scope, std::mem::take(&mut pending_loop)));
                    next_scope += 1;
                }
                Some(b'}') => {
                    braces.pop();
                    locks.on_close_brace(braces.len());
                }
                _ => {}
            },
            _ => {}
        }
    }
    pass.hb.finalize();
    pass
}

/// The `let [mut] NAME =` binding a spawn call's return lands in, found by
/// walking back over the call chain (`pool . spawn`, `tsvd_tasks :: spawn`)
/// from the spawn call's opening paren — the same binding-reader shape the
/// repair pass uses, applied at analysis time so joins resolve to regions.
fn spawn_handle(toks: &[Token], open: usize) -> Option<String> {
    let mut j = open.checked_sub(1)?; // the spawn ident itself
    while j > 0 {
        let p = &toks[j - 1];
        if p.kind == TokKind::Ident || p.is_punct('.') || p.is_punct(':') {
            j -= 1;
        } else {
            break;
        }
    }
    // toks[j] is the chain's first token; `=` must sit right before it.
    if j == 0 || !toks[j - 1].is_punct('=') {
        return None;
    }
    let name_idx = j.checked_sub(2)?;
    let name = &toks[name_idx];
    if name.kind != TokKind::Ident {
        return None;
    }
    let mut let_idx = name_idx.checked_sub(1)?;
    if toks[let_idx].is_ident("mut") {
        let_idx = let_idx.checked_sub(1)?;
    }
    if toks[let_idx].is_ident("let") {
        Some(name.text.clone())
    } else {
        None
    }
}

/// Renders held locks as sorted `root:mode` strings for the site database
/// (what the repair pass reads to name a reusable guard).
fn guard_strings(locks: &[(String, GuardMode)]) -> Vec<String> {
    let mut out: Vec<String> = locks
        .iter()
        .map(|(root, mode)| {
            let mode = match mode {
                GuardMode::Exclusive => "exclusive",
                GuardMode::Shared => "shared",
            };
            format!("{root}:{mode}")
        })
        .collect();
    out.sort();
    out
}

/// Adds a held lock, upgrading to exclusive when both modes appear.
fn push_lock(locks: &mut Vec<(String, GuardMode)>, root: String, mode: GuardMode) {
    match locks.iter_mut().find(|(r, _)| *r == root) {
        Some((_, m)) => {
            if mode == GuardMode::Exclusive {
                *m = GuardMode::Exclusive;
            }
        }
        None => locks.push((root, mode)),
    }
}

/// Dispatches one `let` statement across the trackers, in priority order:
/// wrapper binding (lexical ctor / clone), constructor-returning helper,
/// lock machinery, and finally — crucially — *shadow removal*: a rebind
/// whose RHS none of them recognize must not leak the old meaning.
#[allow(clippy::too_many_arguments)]
fn handle_let(
    toks: &[Token],
    let_idx: usize,
    file: &str,
    imports: &HashMap<String, Import>,
    summaries: &Summaries,
    bindings: &mut HashMap<String, Binding>,
    locks: &mut LockTracker,
    depth: usize,
) {
    if let Some((name, binding)) = parse_let(toks, let_idx, imports, bindings) {
        locks.forget(&name);
        bindings.insert(name, binding);
        return;
    }
    if let Some((name, binding)) = parse_ctor_return(toks, let_idx, file, summaries) {
        locks.forget(&name);
        bindings.insert(name, binding);
        return;
    }
    if locks.on_let(toks, let_idx, depth) {
        if let Some(name) = single_let_name(toks, let_idx) {
            bindings.remove(&name);
        }
        return;
    }
    if let Some(name) = single_let_name(toks, let_idx) {
        bindings.remove(&name);
        locks.forget(&name);
    }
}

/// The name bound by `let [mut] NAME [: T] = ...`, `None` for tuple or
/// value-less (`let x;`) forms.
fn single_let_name(toks: &[Token], let_idx: usize) -> Option<String> {
    let mut i = let_idx + 1;
    if toks.get(i)?.is_ident("mut") {
        i += 1;
    }
    let name = toks.get(i)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    i += 1;
    while i < toks.len() {
        if toks[i].is_punct('=') {
            return Some(name.text.clone());
        }
        if toks[i].is_punct(';') {
            return None;
        }
        i += 1;
    }
    None
}

/// Recognizes `let NAME = helper(...)` where `helper`'s summary declares a
/// wrapper return class: constructor-return provenance, one hop out.
fn parse_ctor_return(
    toks: &[Token],
    let_idx: usize,
    file: &str,
    summaries: &Summaries,
) -> Option<(String, Binding)> {
    let name = single_let_name(toks, let_idx)?;
    let mut i = let_idx + 1;
    while i < toks.len() && !toks[i].is_punct('=') {
        i += 1;
    }
    i += 1;
    let callee = toks.get(i)?;
    if callee.kind != TokKind::Ident || !toks.get(i + 1)?.is_punct('(') {
        return None;
    }
    let class = summaries.lookup(file, &callee.text)?.returns_class?;
    Some((
        name.clone(),
        Binding {
            class,
            root: name,
            hops: 1,
        },
    ))
}

/// Recognizes `let [mut] NAME = <path>::{new,unmonitored,with_*,from,default}(`
/// for a wrapper class (also through an `Arc::new(..)` shell), and the
/// aliasing forms `let NAME = SRC.clone()` and `let NAME = Arc::clone(&SRC)`.
fn parse_let(
    toks: &[Token],
    let_idx: usize,
    imports: &HashMap<String, Import>,
    bindings: &HashMap<String, Binding>,
) -> Option<(String, Binding)> {
    let mut i = let_idx + 1;
    if toks.get(i)?.is_ident("mut") {
        i += 1;
    }
    let name = toks.get(i)?;
    if name.kind != TokKind::Ident {
        return None;
    }
    i += 1;
    // Skip an optional `: Type<...>` ascription up to `=`, bailing at `;`.
    while i < toks.len() && !toks[i].is_punct('=') {
        if toks[i].is_punct(';') {
            return None;
        }
        i += 1;
    }
    i += 1; // past `=`
            // Aliasing clone: `SRC.clone()`.
    if toks.get(i).is_some_and(|t| t.kind == TokKind::Ident)
        && toks.get(i + 1).is_some_and(|t| t.is_punct('.'))
        && toks.get(i + 2).is_some_and(|t| t.is_ident("clone"))
    {
        let src = bindings.get(&toks[i].text)?;
        return Some((name.text.clone(), src.clone()));
    }
    // Aliasing `Arc::clone(&SRC)`.
    if toks.get(i).is_some_and(|t| t.is_ident("Arc"))
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("clone"))
        && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
    {
        let mut j = i + 5;
        if toks.get(j).is_some_and(|t| t.is_punct('&')) {
            j += 1;
        }
        let src = bindings.get(&toks.get(j)?.text)?;
        return Some((name.text.clone(), src.clone()));
    }
    // Constructor path: collect `A::B::C` segments up to `(` or `<`,
    // unwrapping at most one `Arc::new(` shell.
    let mut segs: Vec<&str> = Vec::new();
    loop {
        while i < toks.len() {
            let t = &toks[i];
            if t.kind == TokKind::Ident {
                segs.push(&t.text);
                i += 1;
            } else if t.is_punct(':') {
                i += 1;
            } else if t.is_punct('<') {
                // Skip a turbofish / generic argument list.
                let mut depth = 1;
                i += 1;
                while i < toks.len() && depth > 0 {
                    if toks[i].is_punct('<') {
                        depth += 1;
                    } else if toks[i].is_punct('>') {
                        depth -= 1;
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        if segs == ["Arc", "new"] && toks.get(i).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            segs.clear();
            continue;
        }
        break;
    }
    // The path must end in a constructor-ish name preceded by a class.
    let ctor = segs.pop()?;
    let is_ctor =
        matches!(ctor, "new" | "unmonitored" | "from" | "default") || ctor.starts_with("with_");
    if !is_ctor {
        return None;
    }
    let class_seg = segs.last()?;
    let class = tsvd_core::access::api_classes()
        .into_iter()
        .find(|c| c == class_seg)?;
    // Qualified paths carry their own provenance; bare class names lean on
    // imports. `HashSet` is the one name std shares, so a bare `HashSet`
    // with no import evidence stays unclassified rather than guessed.
    let provenance_ok = if segs.len() > 1 {
        matches!(segs[0], "tsvd_collections" | "crate" | "super" | "self")
    } else if class == "HashSet" {
        imports.get(class).is_some_and(|imp| imp.is_wrapper())
    } else {
        imports.get(class).is_none_or(|imp| imp.is_wrapper())
    };
    if !provenance_ok {
        return None;
    }
    Some((
        name.text.clone(),
        Binding {
            class,
            root: name.text.clone(),
            hops: 0,
        },
    ))
}

fn kind_str(kind: OpKind) -> &'static str {
    match kind {
        OpKind::Read => "read",
        OpKind::Write => "write",
    }
}

/// Pair candidates split by the lockset verdict.
#[derive(Debug, Default)]
struct DerivedPairs {
    kept: Vec<StaticPair>,
    pruned: Vec<StaticPair>,
}

/// Derives dangerous-pair candidates from the sites of one file.
///
/// Two sites on the same root receiver conflict when at least one writes
/// and the regions can overlap in time:
///
/// - two *different* spawned regions always can;
/// - one *multi-instance* region can overlap itself (including a single
///   write site racing with its own other instances);
/// - the top level can overlap any region whose spawn started lexically
///   earlier (the spawn has happened; the join may not have).
///
/// Each candidate is then graded: lockset evidence prunes (both sides
/// exclusively guarded by the same lock) or demotes; the happens-before
/// pass prunes provably ordered pairs (`reason: ordered`) and scales the
/// confidence of pairs with weaker ordering evidence (`hb_evidence`);
/// provenance hops and region distance scale the confidence further (see
/// DESIGN.md for the formula).
fn derive_pairs(
    sites: &[SiteCtx],
    regions: &[Region],
    channeled: &HashSet<String>,
    hb: &HbIndex,
) -> DerivedPairs {
    let mut out = DerivedPairs::default();
    let mut seen: Vec<(String, String)> = Vec::new();
    for (ai, a) in sites.iter().enumerate() {
        for b in &sites[ai..] {
            if a.site.receiver != b.site.receiver || a.site.class != b.site.class {
                continue;
            }
            if a.kind != OpKind::Write && b.kind != OpKind::Write {
                continue;
            }
            let (ra, rb) = (a.region as usize, b.region as usize);
            let reason = if ra != 0 && rb != 0 && ra != rb {
                "cross-task"
            } else if ra == rb && ra != 0 && regions[ra].multi {
                "multi-instance-task"
            } else if (ra == 0 && rb != 0 && regions[rb].start_tok < a.tok_index)
                || (rb == 0 && ra != 0 && regions[ra].start_tok < b.tok_index)
            {
                "main-vs-spawned"
            } else {
                continue;
            };
            // Self-pairs only make sense when one site races its own clones.
            if std::ptr::eq(a, b) && !(ra != 0 && regions[ra].multi && a.kind == OpKind::Write) {
                continue;
            }
            let (first, second) = (
                site_text(&a.site.file, a.site.line, a.site.column),
                site_text(&b.site.file, b.site.line, b.site.column),
            );
            let key = if first <= second {
                (first.clone(), second.clone())
            } else {
                (second.clone(), first.clone())
            };
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let (guard, guard_factor, lock_prune) = guard_evidence(a, b, channeled);
            // Lockset pruning keeps precedence (it names the serializing
            // guard); HB only weighs in on pairs the locks let through.
            let hb_verdict = if lock_prune {
                HbEvidence::None
            } else {
                hb.relate(
                    &HbEndpoint {
                        tok: a.tok_index,
                        region: a.region,
                        fn_id: a.fn_id,
                        scopes: &a.scopes,
                    },
                    &HbEndpoint {
                        tok: b.tok_index,
                        region: b.region,
                        fn_id: b.fn_id,
                        scopes: &b.scopes,
                    },
                )
            };
            let ordered = hb_verdict.is_ordered();
            let prune = lock_prune || ordered;
            let reason = if ordered { "ordered" } else { reason };
            let hops = a.hops.max(b.hops);
            let provenance = if hops == 0 {
                "direct".to_string()
            } else {
                format!("via-calls:{hops}")
            };
            let confidence = if prune {
                0.0
            } else {
                let distance = 1.0 / (1.0 + 0.1 * (ra as f64 - rb as f64).abs());
                round4(
                    reason_base(reason)
                        * 0.85f64.powi(hops as i32)
                        * guard_factor
                        * hb_verdict.factor()
                        * distance,
                )
            };
            let pair = StaticPair {
                first,
                second,
                receiver: a.site.receiver.clone(),
                class: a.site.class.clone(),
                first_op: format!("{}.{}", a.site.class, a.site.method),
                second_op: format!("{}.{}", b.site.class, b.site.method),
                reason: reason.to_string(),
                confidence,
                guard,
                provenance,
                hb_evidence: hb_verdict.label(),
            };
            if prune {
                out.pruned.push(pair);
            } else {
                out.kept.push(pair);
            }
        }
    }
    out
}

/// Grades the lockset relation of two sites: `(label, factor, prune)`.
fn guard_evidence(a: &SiteCtx, b: &SiteCtx, channeled: &HashSet<String>) -> (String, f64, bool) {
    let mut shared = false;
    for (root, ma) in &a.locks {
        if let Some((_, mb)) = b.locks.iter().find(|(rb, _)| rb == root) {
            if *ma == GuardMode::Shared && *mb == GuardMode::Shared {
                // Two read guards do not exclude each other.
                shared = true;
            } else {
                // An exclusive guard on a common lock serializes the pair.
                return (format!("both-guarded:{root}"), 1.0, true);
            }
        }
    }
    if shared {
        return ("shared-guard".to_string(), 1.0, false);
    }
    if a.locks.is_empty() != b.locks.is_empty() {
        return ("one-side-guarded".to_string(), 1.0, false);
    }
    if !a.locks.is_empty() {
        return ("inconsistent-locks".to_string(), 0.9, false);
    }
    if channeled.contains(&a.site.receiver) {
        return ("channel-transfer".to_string(), 0.6, false);
    }
    ("none".to_string(), 1.0, false)
}

/// How strongly each overlap reason predicts a real race, before grading.
fn reason_base(reason: &str) -> f64 {
    match reason {
        "cross-task" => 0.9,
        "multi-instance-task" => 0.85,
        _ => 0.75, // main-vs-spawned: the join often intervenes
    }
}

/// Confidences are rounded to 4 decimals so they serialize compactly and
/// compare exactly in tests.
fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

/// Extracts the `(op name, kind)` literals from wrapper source: every
/// `.write(site, "Class.op", ...)` / `.read(site, "Class.op", ...)` call.
/// The wrapper-audit test uses this to prove the shipped wrappers and the
/// shared API table agree exactly.
pub fn instrumented_op_literals(src: &str) -> Vec<(String, OpKind)> {
    let toks = tokenize(src);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || (t.text != "write" && t.text != "read") {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        let (Some(open), Some(site_arg), Some(comma), Some(op)) = (
            toks.get(i + 1),
            toks.get(i + 2),
            toks.get(i + 3),
            toks.get(i + 4),
        ) else {
            continue;
        };
        if open.is_punct('(')
            && site_arg.is_ident("site")
            && comma.is_punct(',')
            && op.kind == TokKind::Str
        {
            let kind = if t.text == "write" {
                OpKind::Write
            } else {
                OpKind::Read
            };
            out.push((op.text.clone(), kind));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_flagged_with_concurrency_evidence() {
        let src = r#"
use std::collections::HashMap;
use tsvd_tasks::Pool;
fn f(pool: &Pool) {
    let m = HashMap::new();
    pool.spawn(move || drop(m));
}
"#;
        let fa = analyze_file("x.rs", src);
        assert_eq!(fa.escapes.len(), 1);
        assert_eq!(fa.escapes[0].name, "HashMap");
        assert_eq!(fa.escapes[0].via, "std::collections");
        assert_eq!(fa.escapes[0].line, 5);
    }

    #[test]
    fn no_escape_without_concurrency_evidence() {
        let src = "use std::collections::HashMap;\nfn f() { let m = HashMap::new(); }\n";
        let fa = analyze_file("x.rs", src);
        assert!(fa.escapes.is_empty());
    }

    #[test]
    fn fully_qualified_raw_is_flagged_once_per_line() {
        let src = "fn f() { let a = std::collections::HashSet::<u32>::new(); spawn(|| ()); }";
        let fa = analyze_file("x.rs", src);
        assert_eq!(fa.escapes.len(), 1);
        assert_eq!(fa.escapes[0].via, "std::collections");
    }

    #[test]
    fn use_statement_itself_is_not_an_escape() {
        let src = "use std::collections::HashMap;\nfn f() { spawn(|| ()); }\n";
        let fa = analyze_file("x.rs", src);
        assert!(
            fa.escapes.is_empty(),
            "import line alone is not a call site"
        );
    }

    #[test]
    fn wrapper_hashset_is_not_confused_with_std() {
        let src = r#"
use tsvd_collections::HashSet;
fn f() {
    let s = HashSet::new();
    spawn(move || s.add(1));
}
"#;
        let fa = analyze_file("x.rs", src);
        assert!(fa.escapes.is_empty(), "wrapper HashSet is instrumented");
        assert_eq!(fa.sites.len(), 1);
        assert_eq!(fa.sites[0].class, "HashSet");
    }

    #[test]
    fn sites_use_method_ident_column() {
        let src = "use tsvd_collections::Dictionary;\nfn f() {\n    let d = Dictionary::new();\n    d.set(1, 2);\n}\n";
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 1);
        let s = &fa.sites[0];
        assert_eq!((s.line, s.column), (4, 7), "column of `set`, not `d`");
        assert_eq!(s.kind, "write");
        assert_eq!(s.receiver, "d");
    }

    #[test]
    fn clone_aliases_to_root_receiver() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f() {
    let d = Dictionary::new();
    let d2 = d.clone();
    d2.set(1, 2);
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 1);
        assert_eq!(fa.sites[0].receiver, "d", "clone resolves to its root");
    }

    #[test]
    fn arc_new_and_arc_clone_track_like_plain_forms() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Arc::new(Dictionary::new());
    let d1 = Arc::clone(&d);
    pool.spawn(move || d1.set(1, 1));
    pool.spawn(move || d.set(2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(fa.sites.iter().all(|s| s.receiver == "d"));
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].reason, "cross-task");
    }

    #[test]
    fn cross_task_write_write_pair() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    pool.spawn(move || d1.set(1, 1));
    pool.spawn(move || d2.set(2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].reason, "cross-task");
        assert_eq!(fa.pairs[0].first_op, "Dictionary.set");
        assert_eq!(fa.pairs[0].confidence, 0.8182, "0.9 / 1.1, rounded");
        assert_eq!(fa.pairs[0].guard, "none");
        assert_eq!(fa.pairs[0].provenance, "direct");
    }

    #[test]
    fn read_read_is_not_a_pair() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    pool.spawn(move || d1.get(&1));
    pool.spawn(move || d2.get(&2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(fa.pairs.is_empty());
    }

    #[test]
    fn parallel_for_each_write_races_itself() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::parallel_for_each;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    parallel_for_each(pool, 0..10, move |n| { d1.set(n, n); });
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 1);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].reason, "multi-instance-task");
        assert_eq!(fa.pairs[0].first, fa.pairs[0].second);
        assert_eq!(
            fa.pairs[0].confidence, 0.85,
            "same region: no distance decay"
        );
    }

    #[test]
    fn single_task_does_not_race_itself() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    pool.spawn(move || { d1.set(1, 1); d1.set(2, 2); });
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(fa.pairs.is_empty(), "one task instance is sequential");
    }

    #[test]
    fn spawn_in_loop_is_multi_instance() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    for i in 0..4 {
        let di = d.clone();
        pool.spawn(move || di.set(i, i));
    }
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].reason, "multi-instance-task");
    }

    #[test]
    fn main_thread_access_after_spawn_pairs() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
    d.set(2, 2);
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].reason, "main-vs-spawned");
    }

    #[test]
    fn main_thread_access_before_spawn_does_not_pair() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    d.set(2, 2);
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(
            fa.sites.len(),
            2,
            "pre-spawn write happens-before the spawn"
        );
        assert!(fa.pairs.is_empty());
    }

    #[test]
    fn different_receivers_do_not_pair() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let a = Dictionary::new();
    let b = Dictionary::new();
    let a1 = a.clone();
    let b1 = b.clone();
    pool.spawn(move || a1.set(1, 1));
    pool.spawn(move || b1.set(2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(fa.pairs.is_empty());
    }

    #[test]
    fn bindings_reset_between_functions() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f() { let d = Dictionary::new(); }
fn g() { d.set(1, 2); }
"#;
        let fa = analyze_file("w.rs", src);
        assert!(fa.sites.is_empty(), "d is out of scope in g");
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let src = r#"
use tsvd_collections::Dictionary;
trait T {}
struct S;
impl T for S {}
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert!(fa.pairs.is_empty(), "impl-for must not mark multi-instance");
    }

    #[test]
    fn shadowing_let_drops_the_stale_binding() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let m = Dictionary::new();
    let m = compute_input();
    let m1 = m.clone();
    pool.spawn(move || m1.set(1, 1));
    pool.spawn(move || m.set(2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert!(fa.sites.is_empty(), "rebound `m` is no longer a wrapper");
        assert!(fa.pairs.is_empty());
    }

    #[test]
    fn shadowing_let_switches_to_the_new_class() {
        let src = r#"
use tsvd_collections::{Dictionary, HashSet};
fn f(pool: &Pool) {
    let m = Dictionary::new();
    let m = HashSet::new();
    let m1 = m.clone();
    pool.spawn(move || m1.add(1));
    pool.spawn(move || m.add(2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(fa.sites.iter().all(|s| s.class == "HashSet"));
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].class, "HashSet");
    }

    #[test]
    fn interprocedural_ops_attribute_to_the_caller_binding() {
        let src = r#"
use tsvd_collections::Dictionary;
fn bump(d: &Dictionary<u64, u64>, k: u64) {
    d.set(k, k);
}
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    pool.spawn(move || bump(&d1, 1));
    pool.spawn(move || bump(&d2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2, "one materialized site per call");
        assert!(fa.sites.iter().all(|s| s.receiver == "d"));
        assert_eq!(
            (fa.sites[0].line, fa.sites[0].column),
            (4, 7),
            "callee's `set`"
        );
        assert_eq!(fa.pairs.len(), 1);
        let p = &fa.pairs[0];
        assert_eq!(p.reason, "cross-task");
        assert_eq!(p.first, p.second, "both calls hit the same callee site");
        assert_eq!(p.provenance, "via-calls:1");
        assert_eq!(p.confidence, 0.6955, "0.9 * 0.85 / 1.1, rounded");
    }

    #[test]
    fn ctor_return_tracks_provenance() {
        let src = r#"
use tsvd_collections::Dictionary;
fn fresh() -> Dictionary<u64, u64> {
    Dictionary::new()
}
fn f(pool: &Pool) {
    let d = fresh();
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
    d.set(2, 2);
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert_eq!(fa.pairs.len(), 1);
        let p = &fa.pairs[0];
        assert_eq!(p.reason, "main-vs-spawned");
        assert_eq!(p.provenance, "via-calls:1");
        assert_eq!(p.confidence, 0.5795, "0.75 * 0.85 / 1.1, rounded");
    }

    #[test]
    fn both_sides_guarded_pair_is_pruned() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let m = TsvdMutex::new(0);
    let d1 = d.clone();
    let m1 = m.clone();
    let d2 = d.clone();
    let m2 = m.clone();
    pool.spawn(move || { let g = m1.lock(); d1.set(1, 1); });
    pool.spawn(move || { let g = m2.lock(); d2.set(2, 2); });
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.sites.len(), 2);
        assert!(
            fa.pairs.is_empty(),
            "consistently locked pair is serialized"
        );
        assert_eq!(fa.pruned_pairs.len(), 1);
        let p = &fa.pruned_pairs[0];
        assert_eq!(p.guard, "both-guarded:m");
        assert_eq!(p.confidence, 0.0);
        assert_eq!(p.reason, "cross-task");
    }

    #[test]
    fn one_side_guarded_pair_is_kept() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let m = TsvdMutex::new(0);
    let d1 = d.clone();
    let m1 = m.clone();
    let d2 = d.clone();
    pool.spawn(move || { let g = m1.lock(); d1.set(1, 1); });
    pool.spawn(move || d2.set(2, 2));
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1);
        assert!(fa.pruned_pairs.is_empty());
        assert_eq!(fa.pairs[0].guard, "one-side-guarded");
        assert_eq!(
            fa.pairs[0].confidence, 0.8182,
            "no demotion: the race stands"
        );
    }

    #[test]
    fn disjoint_locks_demote_but_keep() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let m = TsvdMutex::new(0);
    let n = TsvdMutex::new(0);
    let d1 = d.clone();
    let m1 = m.clone();
    let d2 = d.clone();
    let n1 = n.clone();
    pool.spawn(move || { let g = m1.lock(); d1.set(1, 1); });
    pool.spawn(move || { let g = n1.lock(); d2.set(2, 2); });
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].guard, "inconsistent-locks");
        assert_eq!(fa.pairs[0].confidence, 0.7364, "0.9 * 0.9 / 1.1, rounded");
    }

    #[test]
    fn shared_read_guards_do_not_prune() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let m = RwLock::new(0);
    let d1 = d.clone();
    let m1 = m.clone();
    let d2 = d.clone();
    let m2 = m.clone();
    pool.spawn(move || { let g = m1.read(); d1.set(1, 1); });
    pool.spawn(move || { let g = m2.read(); d2.set(2, 2); });
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1, "read guards do not exclude each other");
        assert!(fa.pruned_pairs.is_empty());
        assert_eq!(fa.pairs[0].guard, "shared-guard");
        assert_eq!(fa.pairs[0].confidence, 0.8182);
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let src = r#"
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let m = TsvdMutex::new(0);
    let d1 = d.clone();
    let m1 = m.clone();
    pool.spawn(move || {
        { let g = m1.lock(); }
        d1.set(1, 1);
    });
    d.set(2, 2);
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1);
        assert_eq!(fa.pairs[0].guard, "none", "guard died before the site");
    }

    #[test]
    fn channel_transfer_demotes_the_pair() {
        let src = r#"
use tsvd_collections::Dictionary;
fn f(pool: &Pool) {
    let d = Dictionary::new();
    let (tx, rx) = mpsc::channel();
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
    tx.send(d.clone());
    d.set(2, 2);
}
"#;
        let fa = analyze_file("w.rs", src);
        assert_eq!(fa.pairs.len(), 1);
        let p = &fa.pairs[0];
        assert_eq!(p.reason, "main-vs-spawned");
        assert_eq!(p.guard, "channel-transfer");
        assert_eq!(p.confidence, 0.4091, "0.75 * 0.6 / 1.1, rounded");
    }

    #[test]
    fn op_literal_extraction() {
        let src = r#"
impl D {
    pub fn add(&self) {
        let site = tsvd_core::site!();
        self.inner.write(site, "Dictionary.add", |m| m.insert(1))
    }
    pub fn len(&self) -> usize {
        let site = tsvd_core::site!();
        self.inner.read(site, "Dictionary.len", |m| m.len())
    }
}
"#;
        let lits = instrumented_op_literals(src);
        assert_eq!(
            lits,
            vec![
                ("Dictionary.add".to_string(), OpKind::Write),
                ("Dictionary.len".to_string(), OpKind::Read),
            ]
        );
    }
}
