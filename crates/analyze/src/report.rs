//! Report types: what `tsvd-analyze` hands to humans, CI, and the runtime.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};
use tsvd_core::{PairOrigin, TrapFileData};

use crate::allowlist::Allowlist;

/// Renders a site in the `file:line:column` shape [`tsvd_core::SiteId`]
/// parses, so static sites intern to the same ids dynamic runs produce.
pub fn site_text(file: &str, line: u32, column: u32) -> String {
    format!("{file}:{line}:{column}")
}

/// A raw-collection call site in concurrent code: instrumentation the
/// dynamic detector will never see.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Escape {
    /// Analysis-root-relative path.
    pub file: String,
    /// 1-based line of the raw usage.
    pub line: u32,
    /// The raw type (e.g. `HashMap`).
    pub name: String,
    /// Provenance that marked it raw (e.g. `std::collections`).
    pub via: String,
    /// Why the file counts as concurrent.
    pub evidence: String,
    /// Whether an allowlist entry covers it.
    #[serde(default)]
    pub allowed: bool,
}

/// One instrumented-collection call site, classified by the same API table
/// the wrappers use at run time.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSite {
    /// Analysis-root-relative path.
    pub file: String,
    /// 1-based line of the **method ident** (what `#[track_caller]` records).
    pub line: u32,
    /// 1-based column of the method ident.
    pub column: u32,
    /// Root receiver binding (clones resolved to their origin).
    pub receiver: String,
    /// Wrapper class (e.g. `Dictionary`).
    pub class: String,
    /// Method name (e.g. `set`).
    pub method: String,
    /// `"read"` or `"write"` per the shared API table.
    pub kind: String,
    /// Concurrency region id within the file; 0 is the top level.
    pub region: u32,
    /// Locks held at the site, as `root:mode` (`cache_lock:exclusive`).
    /// Empty when the site runs unguarded. The repair pass reads this to
    /// name the lock an extend-existing-guard fix should reuse.
    #[serde(default)]
    pub guards: Vec<String>,
}

impl StaticSite {
    /// The `file:line:column` text for this site.
    pub fn site_text(&self) -> String {
        site_text(&self.file, self.line, self.column)
    }
}

/// A statically predicted dangerous pair, in trap-file site syntax.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticPair {
    /// First site (`file:line:column`).
    pub first: String,
    /// Second site; equal to `first` for a self-racing multi-instance site.
    pub second: String,
    /// Shared root receiver.
    pub receiver: String,
    /// Wrapper class.
    pub class: String,
    /// Qualified op at the first site (e.g. `Dictionary.set`).
    pub first_op: String,
    /// Qualified op at the second site.
    pub second_op: String,
    /// Why the pair can overlap: `cross-task`, `multi-instance-task`, or
    /// `main-vs-spawned`.
    pub reason: String,
    /// Analysis confidence in (0, 1] (0.0 on pruned pairs): base(reason) ×
    /// provenance × guard-evidence × region-distance, rounded to 4
    /// decimals. See DESIGN.md for the formula.
    #[serde(default = "default_confidence")]
    pub confidence: f64,
    /// Guard evidence: `none`, `one-side-guarded`, `shared-guard`,
    /// `inconsistent-locks`, `channel-transfer`, or `both-guarded:<lock>`
    /// (pruned pairs only).
    #[serde(default = "default_guard")]
    pub guard: String,
    /// Receiver provenance: `direct` or `via-calls:<hops>`.
    #[serde(default = "default_provenance")]
    pub provenance: String,
    /// Happens-before evidence (see [`crate::hb`]): `ordered:join:<h>` /
    /// `ordered:scope` / `ordered:channel` on pruned pairs,
    /// `window-join:<h>` / `window-scope` / `channel-partial` on kept pairs
    /// with a bounded overlap window, `none` otherwise (and on records
    /// predating the field).
    #[serde(default = "default_hb_evidence")]
    pub hb_evidence: String,
}

fn default_confidence() -> f64 {
    1.0
}

fn default_guard() -> String {
    "none".to_string()
}

fn default_provenance() -> String {
    "direct".to_string()
}

fn default_hb_evidence() -> String {
    "none".to_string()
}

impl Default for StaticPair {
    fn default() -> Self {
        StaticPair {
            first: String::new(),
            second: String::new(),
            receiver: String::new(),
            class: String::new(),
            first_op: String::new(),
            second_op: String::new(),
            reason: String::new(),
            confidence: default_confidence(),
            guard: default_guard(),
            provenance: default_provenance(),
            hb_evidence: default_hb_evidence(),
        }
    }
}

/// One `.await` yield point: a task-boundary marker recorded for the async
/// frontier (no ordering edges are drawn from it yet — see [`crate::hb`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AwaitPoint {
    /// Analysis-root-relative path.
    pub file: String,
    /// 1-based line of the `await` keyword.
    pub line: u32,
    /// 1-based column of the `await` keyword.
    pub column: u32,
}

/// The full analyzer output for one tree.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// How many `.rs` files were scanned.
    pub files_scanned: u32,
    /// Files that could not be read (unreadable, non-UTF-8); each carries
    /// a matching entry in [`warnings`](Self::warnings).
    #[serde(default)]
    pub files_skipped: u32,
    /// Per-file warnings accumulated during the walk.
    #[serde(default)]
    pub warnings: Vec<String>,
    /// Escape-lint findings (allowlisted ones included, flagged).
    pub escapes: Vec<Escape>,
    /// The static site database.
    pub sites: Vec<StaticSite>,
    /// Dangerous-pair candidates surviving lockset pruning.
    pub pairs: Vec<StaticPair>,
    /// Candidates the lockset analysis pruned (both sides consistently
    /// behind the same guard) or the happens-before pass proved ordered;
    /// kept for the precision scoreboard.
    #[serde(default)]
    pub pruned_pairs: Vec<StaticPair>,
    /// `.await` task-boundary markers found during the walk.
    #[serde(default)]
    pub awaits: Vec<AwaitPoint>,
}

impl AnalysisReport {
    /// Marks escapes covered by `allowlist`.
    pub fn apply_allowlist(&mut self, allowlist: &Allowlist) {
        for e in &mut self.escapes {
            e.allowed = allowlist.allows(&e.file, e.line, &e.name);
        }
    }

    /// Escapes no allowlist entry covers — the CI-blocking set.
    pub fn unallowlisted_escapes(&self) -> Vec<&Escape> {
        self.escapes.iter().filter(|e| !e.allowed).collect()
    }

    /// Converts the pair candidates into a statically-tagged trap file the
    /// runtime can import before the first dynamic run.
    pub fn to_trap_file(&self) -> TrapFileData {
        let mut data = TrapFileData::default();
        for p in &self.pairs {
            let pair = (p.first.clone(), p.second.clone());
            if !data.pairs.contains(&pair) {
                data.push_full(pair, PairOrigin::Static, p.confidence, &p.hb_evidence);
            }
        }
        data
    }

    /// One JSON object per line: a `summary` record, then every escape,
    /// site, and pair, each tagged with a `record` field.
    pub fn to_jsonl(&self) -> String {
        let mut lines =
            Vec::with_capacity(1 + self.escapes.len() + self.sites.len() + self.pairs.len());
        let mut summary = BTreeMap::new();
        summary.insert("record".to_string(), Value::Str("summary".to_string()));
        summary.insert("files_scanned".to_string(), self.files_scanned.to_value());
        summary.insert(
            "escapes".to_string(),
            Value::UInt(self.escapes.len() as u64),
        );
        summary.insert("sites".to_string(), Value::UInt(self.sites.len() as u64));
        summary.insert("pairs".to_string(), Value::UInt(self.pairs.len() as u64));
        summary.insert(
            "pruned_pairs".to_string(),
            Value::UInt(self.pruned_pairs.len() as u64),
        );
        summary.insert("awaits".to_string(), Value::UInt(self.awaits.len() as u64));
        summary.insert(
            "files_skipped".to_string(),
            Value::UInt(u64::from(self.files_skipped)),
        );
        summary.insert(
            "warnings".to_string(),
            Value::UInt(self.warnings.len() as u64),
        );
        lines.push(Value::Object(summary));
        for w in &self.warnings {
            let mut map = BTreeMap::new();
            map.insert("record".to_string(), Value::Str("warning".to_string()));
            map.insert("message".to_string(), Value::Str(w.clone()));
            lines.push(Value::Object(map));
        }
        for e in &self.escapes {
            lines.push(tag("escape", e.to_value()));
        }
        for s in &self.sites {
            lines.push(tag("site", s.to_value()));
        }
        for p in &self.pairs {
            lines.push(tag("pair", p.to_value()));
        }
        for p in &self.pruned_pairs {
            lines.push(tag("pruned_pair", p.to_value()));
        }
        for a in &self.awaits {
            lines.push(tag("await", a.to_value()));
        }
        let mut out = String::new();
        for v in lines {
            out.push_str(&serde_json::to_string(&v).unwrap_or_default());
            out.push('\n');
        }
        out
    }

    /// Reconstructs a report from its own JSONL rendering (the inverse of
    /// [`to_jsonl`](Self::to_jsonl)). Lines that fail to parse — a torn
    /// tail, a foreign record tag like `score` — are skipped, so `repro
    /// fix --static` accepts any analyzer report CI uploaded. The summary
    /// counters are taken from the summary line when present; otherwise
    /// they are left at their defaults (the record lists still load).
    pub fn from_jsonl(text: &str) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let Ok(Value::Object(m)) = serde_json::from_str::<Value>(line) else {
                continue;
            };
            let record = match m.get("record") {
                Some(Value::Str(s)) => s.as_str(),
                _ => continue,
            };
            let value = Value::Object(m.clone());
            match record {
                "summary" => {
                    if let Some(Value::UInt(n)) = m.get("files_scanned") {
                        report.files_scanned = *n as u32;
                    }
                    if let Some(Value::UInt(n)) = m.get("files_skipped") {
                        report.files_skipped = *n as u32;
                    }
                }
                "warning" => {
                    if let Some(Value::Str(msg)) = m.get("message") {
                        report.warnings.push(msg.clone());
                    }
                }
                "escape" => {
                    if let Ok(e) = <Escape as Deserialize>::from_value(&value) {
                        report.escapes.push(e);
                    }
                }
                "site" => {
                    if let Ok(s) = <StaticSite as Deserialize>::from_value(&value) {
                        report.sites.push(s);
                    }
                }
                "pair" => {
                    if let Ok(p) = <StaticPair as Deserialize>::from_value(&value) {
                        report.pairs.push(p);
                    }
                }
                "pruned_pair" => {
                    if let Ok(p) = <StaticPair as Deserialize>::from_value(&value) {
                        report.pruned_pairs.push(p);
                    }
                }
                "await" => {
                    if let Ok(a) = <AwaitPoint as Deserialize>::from_value(&value) {
                        report.awaits.push(a);
                    }
                }
                _ => {}
            }
        }
        report
    }

    /// The human-facing rendering printed by `repro analyze`.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let blocked = self.unallowlisted_escapes();
        out.push_str(&format!(
            "tsvd-analyze: {} files ({} skipped), {} instrumented sites, \
             {} pair candidates ({} pruned), {} escapes ({} blocking)\n",
            self.files_scanned,
            self.files_skipped,
            self.sites.len(),
            self.pairs.len(),
            self.pruned_pairs.len(),
            self.escapes.len(),
            blocked.len(),
        ));
        for w in &self.warnings {
            out.push_str(&format!("  warning: {w}\n"));
        }
        for e in &self.escapes {
            out.push_str(&format!(
                "  {}{}:{}: raw `{}` via {} ({})\n",
                if e.allowed { "[allowed] " } else { "escape: " },
                e.file,
                e.line,
                e.name,
                e.via,
                e.evidence,
            ));
        }
        for p in &self.pairs {
            let hb = if p.hb_evidence == "none" {
                String::new()
            } else {
                format!(", hb {}", p.hb_evidence)
            };
            out.push_str(&format!(
                "  pair: {} <-> {} on `{}` [{} / {}] ({}, conf {:.4}, guard {}, {}{})\n",
                p.first,
                p.second,
                p.receiver,
                p.first_op,
                p.second_op,
                p.reason,
                p.confidence,
                p.guard,
                p.provenance,
                hb,
            ));
        }
        for p in &self.pruned_pairs {
            let why = if p.reason == "ordered" {
                p.hb_evidence.clone()
            } else {
                p.guard.clone()
            };
            out.push_str(&format!(
                "  pruned: {} <-> {} on `{}` ({})\n",
                p.first, p.second, p.receiver, why,
            ));
        }
        for a in &self.awaits {
            out.push_str(&format!(
                "  await: {} (task-boundary marker)\n",
                site_text(&a.file, a.line, a.column)
            ));
        }
        out
    }
}

/// Wraps a serialized record with its `record` tag.
fn tag(kind: &str, value: Value) -> Value {
    let mut map = match value {
        Value::Object(m) => m,
        other => {
            let mut m = BTreeMap::new();
            m.insert("value".to_string(), other);
            m
        }
    };
    map.insert("record".to_string(), Value::Str(kind.to_string()));
    Value::Object(map)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AnalysisReport {
        AnalysisReport {
            files_scanned: 2,
            files_skipped: 0,
            warnings: Vec::new(),
            pruned_pairs: Vec::new(),
            awaits: Vec::new(),
            escapes: vec![Escape {
                file: "a.rs".into(),
                line: 3,
                name: "HashMap".into(),
                via: "std::collections".into(),
                evidence: "calls spawn".into(),
                allowed: false,
            }],
            sites: vec![StaticSite {
                file: "a.rs".into(),
                line: 5,
                column: 7,
                receiver: "d".into(),
                class: "Dictionary".into(),
                method: "set".into(),
                kind: "write".into(),
                region: 1,
                guards: Vec::new(),
            }],
            pairs: vec![StaticPair {
                first: "a.rs:5:7".into(),
                second: "a.rs:6:7".into(),
                receiver: "d".into(),
                class: "Dictionary".into(),
                first_op: "Dictionary.set".into(),
                second_op: "Dictionary.set".into(),
                reason: "cross-task".into(),
                confidence: 0.8182,
                ..StaticPair::default()
            }],
        }
    }

    #[test]
    fn trap_file_carries_pair_confidence() {
        let tf = sample().to_trap_file();
        assert!((tf.confidence(0) - 0.8182).abs() < 1e-9);
    }

    #[test]
    fn pair_without_grading_fields_deserializes_with_defaults() {
        // A PR-3 JSONL pair record has no confidence/guard/provenance.
        let v: Value = serde_json::from_str(
            r#"{"first": "a.rs:1:1", "second": "a.rs:2:2", "receiver": "d",
                "class": "Dictionary", "first_op": "Dictionary.set",
                "second_op": "Dictionary.set", "reason": "cross-task"}"#,
        )
        .expect("json");
        let p = <StaticPair as Deserialize>::from_value(&v).expect("deserialize");
        assert!((p.confidence - 1.0).abs() < 1e-9);
        assert_eq!(p.guard, "none");
        assert_eq!(p.provenance, "direct");
    }

    #[test]
    fn allowlist_marks_and_filters() {
        let mut r = sample();
        assert_eq!(r.unallowlisted_escapes().len(), 1);
        r.apply_allowlist(&Allowlist::parse(
            "[[allow]]\npath = \"a.rs\"\nreason = \"test\"\n",
        ));
        assert!(r.escapes[0].allowed);
        assert!(r.unallowlisted_escapes().is_empty());
    }

    #[test]
    fn trap_file_is_statically_tagged() {
        let tf = sample().to_trap_file();
        assert_eq!(tf.pairs.len(), 1);
        assert_eq!(tf.origin(0), PairOrigin::Static);
        assert_eq!(tf.count_origin(PairOrigin::Static), 1);
        // The textual sites must re-intern.
        assert_eq!(tf.to_pairs().len(), 1);
    }

    #[test]
    fn jsonl_has_one_tagged_record_per_line() {
        let jsonl = sample().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].contains("\"record\": \"summary\"")
                || lines[0].contains("\"record\":\"summary\"")
        );
        for line in &lines {
            assert!(
                serde_json::from_str::<Value>(line).is_ok(),
                "bad JSON: {line}"
            );
        }
        assert!(jsonl.contains("escape"));
        assert!(jsonl.contains("pair"));
    }

    #[test]
    fn jsonl_round_trips_through_from_jsonl() {
        let original = sample();
        let mut jsonl = original.to_jsonl();
        // A foreign trailing record and a torn tail must both be ignored.
        jsonl.push_str("{\"record\": \"score\", \"precision\": 1.0}\n{\"record\": \"sit");
        let back = AnalysisReport::from_jsonl(&jsonl);
        assert_eq!(back.files_scanned, original.files_scanned);
        assert_eq!(back.escapes, original.escapes);
        assert_eq!(back.sites, original.sites);
        assert_eq!(back.pairs, original.pairs);
        assert_eq!(back.pruned_pairs, original.pruned_pairs);
    }

    #[test]
    fn human_rendering_mentions_everything() {
        let text = sample().render_human();
        assert!(text.contains("escape: a.rs:3"));
        assert!(text.contains("a.rs:5:7 <-> a.rs:6:7"));
        assert!(text.contains("2 files"));
    }

    #[test]
    fn site_text_matches_site_id_syntax() {
        let s = sample().sites[0].site_text();
        assert_eq!(s, "a.rs:5:7");
        assert!(tsvd_core::SiteId::parse(&s).is_some());
    }
}
