//! Workspace traversal: find the `.rs` files worth analyzing.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "node_modules"];

/// Recursively collects `.rs` files under `root`, skipping build output,
/// vendored code, and VCS internals. Paths come back **relative to `root`**
/// with forward slashes — the same shape `#[track_caller]` records (cargo
/// compiles from the workspace root), so analyzer output joins against
/// dynamic site ids without normalization. The list is sorted for
/// deterministic reports.
pub fn rust_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let file_type = entry.file_type()?;
        if file_type.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if file_type.is_file() && name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path);
            out.push(PathBuf::from(to_forward_slashes(rel)));
        }
    }
    Ok(())
}

/// Renders a path with `/` separators regardless of platform.
pub fn to_forward_slashes(path: &Path) -> String {
    let mut s = String::new();
    for comp in path.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Normalizes a relative path spelling to the canonical report shape:
/// backslashes become `/`, duplicate separators collapse, and leading or
/// embedded `./` segments are dropped. `./a\b.rs`, `a/./b.rs`, and
/// `a/b.rs` all normalize to `a/b.rs`, so allowlist matching and file
/// dedup are insensitive to how the caller spelled the path.
pub fn normalize_rel(path: &str) -> String {
    path.replace('\\', "/")
        .split('/')
        .filter(|seg| !seg.is_empty() && *seg != ".")
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_rust_files_and_skips_target() {
        let dir = std::env::temp_dir().join(format!("tsvd_walk_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir src");
        std::fs::create_dir_all(dir.join("target/debug")).expect("mkdir target");
        std::fs::create_dir_all(dir.join("vendor/dep")).expect("mkdir vendor");
        std::fs::write(dir.join("src/lib.rs"), "pub fn f() {}").expect("write");
        std::fs::write(dir.join("src/notes.txt"), "not rust").expect("write");
        std::fs::write(dir.join("target/debug/gen.rs"), "fn g() {}").expect("write");
        std::fs::write(dir.join("vendor/dep/lib.rs"), "fn v() {}").expect("write");
        let files = rust_files(&dir).expect("walk");
        assert_eq!(files, vec![PathBuf::from("src/lib.rs")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn paths_are_sorted_and_relative() {
        let dir = std::env::temp_dir().join(format!("tsvd_walk_sort_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("b")).expect("mkdir");
        std::fs::create_dir_all(dir.join("a")).expect("mkdir");
        std::fs::write(dir.join("b/two.rs"), "").expect("write");
        std::fs::write(dir.join("a/one.rs"), "").expect("write");
        let files = rust_files(&dir).expect("walk");
        assert_eq!(
            files,
            vec![PathBuf::from("a/one.rs"), PathBuf::from("b/two.rs")]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn normalize_rel_canonicalizes_spellings() {
        assert_eq!(normalize_rel("a/b.rs"), "a/b.rs");
        assert_eq!(normalize_rel("./a/b.rs"), "a/b.rs");
        assert_eq!(normalize_rel("a\\b.rs"), "a/b.rs");
        assert_eq!(normalize_rel(".\\a\\.\\b.rs"), "a/b.rs");
        assert_eq!(normalize_rel("a//b.rs"), "a/b.rs");
    }
}
