//! `tsvd-analyze`: static instrumentation auditor and dangerous-pair
//! pre-filter for the TSVD dynamic detector.
//!
//! The paper's pipeline starts with a static pass: a binary rewriter walks
//! every call site, identifies calls into thread-unsafe APIs, and rewrites
//! them to route through `OnCall` (§3.1). This crate is that front end for
//! the Rust reproduction, with three outputs:
//!
//! 1. **Instrumentation-coverage lint** ("escapes"): call sites that use
//!    raw `std::collections` / `tsvd_collections::raw` types from code with
//!    concurrency evidence. Such calls never reach [`Runtime::on_call`], so
//!    the dynamic detector is blind to them — exactly the coverage gap the
//!    paper's rewriter exists to close. Intentional raw usage is recorded
//!    in an allowlist file (see [`allowlist`]).
//! 2. **Static site database**: every instrumented-collection call site as
//!    `(file, line, column, receiver, method, read/write)`, classified by
//!    the *same* API table the wrappers consult at run time
//!    ([`tsvd_core::access::API_TABLE`]), with columns matching what
//!    `#[track_caller]` records so static and dynamic sites intern to the
//!    same [`tsvd_core::SiteId`]s. Receiver provenance survives helper
//!    calls through per-crate function summaries ([`callgraph`]).
//! 3. **Dangerous-pair candidates**: conflicting accesses to one shared
//!    receiver reachable from different tasks, graded with a confidence in
//!    `(0, 1]` (provenance hops, lockset evidence, task-region distance —
//!    see [`lockset`] and DESIGN.md) and emitted in trap-file format with
//!    [`tsvd_core::PairOrigin::Static`] so the runtime can arm traps
//!    before the *first* dynamic run — the static analogue of §3.4.6's
//!    cross-run trap persistence, removing the warm-up run entirely for
//!    pairs the analyzer predicts. Pairs whose both sides are consistently
//!    protected by the same exclusive guard are pruned before emission.
//!
//! [`Runtime::on_call`]: tsvd_core::Runtime::on_call

#![warn(missing_docs)]

pub mod allowlist;
pub mod analysis;
pub mod cache;
pub mod callgraph;
pub mod hb;
pub mod lexer;
pub mod lockset;
pub mod patch;
pub mod repair;
pub mod report;
pub mod score;
pub mod walk;

use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use allowlist::{AllowEntry, Allowlist};
pub use analysis::{analyze_file, analyze_file_with, instrumented_op_literals, FileAnalysis};
pub use cache::Cache;
pub use callgraph::Summaries;
pub use report::{AnalysisReport, Escape, StaticPair, StaticSite};

/// Knobs for the incremental parallel analysis engine. The output is
/// byte-identical for every combination: thread count only changes which
/// worker computes a file, the cache only changes whether a file is
/// computed at all, and results always merge in input-file order.
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    /// Worker threads for the per-file pass; `0` or `1` runs inline.
    pub threads: usize,
    /// Artifact cache directory; `None` disables caching entirely.
    pub cache_dir: Option<PathBuf>,
}

/// Analyzes every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// and dot-directories). Paths in the report are `root`-relative with
/// forward slashes.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    analyze_workspace_with(root, &AnalyzeOptions::default())
}

/// [`analyze_workspace`] with explicit engine options.
pub fn analyze_workspace_with(root: &Path, opts: &AnalyzeOptions) -> io::Result<AnalysisReport> {
    let files = walk::rust_files(root)?;
    let rels: Vec<String> = files.iter().map(|f| walk::to_forward_slashes(f)).collect();
    analyze_paths_with(root, &rels, opts)
}

/// Analyzes an explicit list of `root`-relative files. Unreadable or
/// non-UTF-8 files become per-file warnings (and count as skipped) rather
/// than failing the whole run — one unparseable path must not hide every
/// other finding.
pub fn analyze_paths(root: &Path, files: &[String]) -> io::Result<AnalysisReport> {
    analyze_paths_with(root, files, &AnalyzeOptions::default())
}

/// [`analyze_paths`] with explicit engine options: an artifact cache and a
/// file-level thread pool (see [`AnalyzeOptions`] and [`cache`]).
pub fn analyze_paths_with(
    root: &Path,
    files: &[String],
    opts: &AnalyzeOptions,
) -> io::Result<AnalysisReport> {
    let mut report = AnalysisReport::default();
    // Normalize and dedupe first: the same file reachable under two walk
    // roots (or spelled `./a.rs` vs `a.rs`, `a\b.rs` vs `a/b.rs`) must
    // analyze once, not emit duplicate pairs.
    let mut seen: HashSet<String> = HashSet::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in files {
        let rel = walk::normalize_rel(rel);
        if !seen.insert(rel.clone()) {
            continue;
        }
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => sources.push((rel, src)),
            Err(err) => {
                report.files_skipped += 1;
                report.warnings.push(format!("{rel}: {err}"));
            }
        }
    }
    let cache = Cache::new(opts.cache_dir.clone());
    let hashes: Vec<String> = sources
        .iter()
        .map(|(_, src)| cache::content_hash(src))
        .collect();
    let keyed: Vec<(&str, &str)> = sources
        .iter()
        .zip(&hashes)
        .map(|((rel, _), hash)| (rel.as_str(), hash.as_str()))
        .collect();
    let ws_digest = cache::workspace_digest(&keyed);
    // First pass: take every per-file analysis the cache already holds for
    // exactly this workspace state. An unchanged workspace hits on every
    // file here and skips summary construction entirely.
    let mut analyses: Vec<Option<FileAnalysis>> = sources
        .iter()
        .zip(&hashes)
        .map(|((rel, _), hash)| cache.load_analysis(rel, hash, &ws_digest))
        .collect();
    let misses: Vec<usize> = (0..sources.len())
        .filter(|&i| analyses[i].is_none())
        .collect();
    if !misses.is_empty() {
        // Whole-tree function summaries before any per-file pass, so helper
        // calls resolve across files of the same crate. Per-file parse
        // fragments are cache-backed; propagation always reruns (it is
        // global). Fragments feed in input-file order — propagation's
        // output ordering, and therefore every downstream byte, depends
        // only on that order, never on which fragments were cached.
        let summaries = Summaries::from_fragments(sources.iter().zip(&hashes).flat_map(
            |((rel, src), hash)| match cache.load_fragments(rel, hash) {
                Some(fragments) => fragments,
                None => {
                    let fragments = Summaries::file_fragments(rel, src);
                    cache.store_fragments(rel, hash, &fragments);
                    fragments
                }
            },
        ));
        let workers = opts.threads.max(1).min(misses.len());
        if workers <= 1 {
            for &i in &misses {
                let (rel, src) = &sources[i];
                let fa = analysis::analyze_file_with(rel, src, &summaries);
                cache.store_analysis(rel, &hashes[i], &ws_digest, &fa);
                analyses[i] = Some(fa);
            }
        } else {
            // File-level fan-out: workers pull indices from a shared
            // counter and park results in per-file slots. Scheduling
            // order varies with thread count; the slot vector (indexed by
            // miss position, not completion order) erases it again.
            let next = AtomicUsize::new(0);
            let slots: Vec<Mutex<Option<FileAnalysis>>> =
                misses.iter().map(|_| Mutex::new(None)).collect();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = misses.get(k) else { break };
                        let (rel, src) = &sources[i];
                        let fa = analysis::analyze_file_with(rel, src, &summaries);
                        cache.store_analysis(rel, &hashes[i], &ws_digest, &fa);
                        *slots[k].lock().expect("analysis slot poisoned") = Some(fa);
                    });
                }
            });
            for (k, &i) in misses.iter().enumerate() {
                analyses[i] = slots[k].lock().expect("analysis slot poisoned").take();
            }
        }
    }
    // Merge in input-file order regardless of cache state or which worker
    // finished first.
    for fa in analyses.into_iter() {
        let fa = fa.expect("every source file analyzed");
        report.files_scanned += 1;
        report.escapes.extend(fa.escapes);
        report.sites.extend(fa.sites);
        report.pairs.extend(fa.pairs);
        report.pruned_pairs.extend(fa.pruned_pairs);
        report.awaits.extend(fa.awaits);
    }
    dedupe_pairs(&mut report.pairs);
    dedupe_pairs(&mut report.pruned_pairs);
    drop_pruned_twins(&mut report.pruned_pairs, &report.pairs);
    Ok(report)
}

/// The orientation-independent identity of a pair: normalized site order.
fn pair_key(p: &StaticPair) -> (String, String) {
    if p.first <= p.second {
        (p.first.clone(), p.second.clone())
    } else {
        (p.second.clone(), p.first.clone())
    }
}

/// Collapses duplicate site pairs, keeping the highest confidence (the
/// strongest evidence wins when two paths found the pair). Keys are
/// orientation-normalized, so the same pair pruned via two different guard
/// roots — which can surface it in either site order — collapses too.
fn dedupe_pairs(pairs: &mut Vec<StaticPair>) {
    let mut best: Vec<StaticPair> = Vec::new();
    for p in pairs.drain(..) {
        let key = pair_key(&p);
        match best.iter_mut().find(|q| pair_key(q) == key) {
            Some(q) => {
                if p.confidence > q.confidence {
                    *q = p;
                }
            }
            None => best.push(p),
        }
    }
    *pairs = best;
}

/// Drops pruned records whose pair also survives in the kept list: a pair
/// one file's evidence prunes but another path still arms must be reported
/// once, as kept — a pruned twin would double-count it in the scoreboard.
fn drop_pruned_twins(pruned: &mut Vec<StaticPair>, kept: &[StaticPair]) {
    let kept_keys: HashSet<(String, String)> = kept.iter().map(pair_key).collect();
    pruned.retain(|p| !kept_keys.contains(&pair_key(p)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_analysis_end_to_end() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_ws_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(
            dir.join("src/main.rs"),
            r#"
use std::collections::HashMap;
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;
fn main() {
    let raw = HashMap::new();
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    let pool = Pool::new(2);
    pool.spawn(move || d1.set(1, 1));
    pool.spawn(move || d2.set(2, 2));
    drop(raw);
}
"#,
        )
        .expect("write");
        let report = analyze_workspace(&dir).expect("analyze");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.files_skipped, 0);
        assert!(report.warnings.is_empty());
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].file, "src/main.rs");
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.pairs.len(), 1);
        let tf = report.to_trap_file();
        assert_eq!(tf.count_origin(tsvd_core::PairOrigin::Static), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_path_spellings_analyze_once() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_dup_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(
            dir.join("src/lib.rs"),
            "use tsvd_collections::Dictionary;\n\
             fn f(pool: &Pool) {\n\
                 let d = Dictionary::new();\n\
                 let d1 = d.clone();\n\
                 pool.spawn(move || d1.set(1, 1));\n\
                 d.set(2, 2);\n\
             }\n",
        )
        .expect("write");
        let report = analyze_paths(
            &dir,
            &[
                "src/lib.rs".to_string(),
                "./src/lib.rs".to_string(),
                "src\\lib.rs".to_string(),
            ],
        )
        .expect("analyze");
        assert_eq!(report.files_scanned, 1, "three spellings, one file");
        assert_eq!(report.pairs.len(), 1, "no duplicate pair");
        std::fs::remove_dir_all(&dir).ok();
    }

    const TWIN_HELPERS: &str = "use tsvd_collections::Dictionary;\n\
         use tsvd_tasks::sync::TsvdMutex;\n\
         pub fn set_low(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {\n\
             let g = m.lock();\n\
             d.set(1, 1);\n\
         }\n\
         pub fn set_high(d: &Dictionary<u64, u64>, m: &TsvdMutex<u32>) {\n\
             let g = m.lock();\n\
             d.set(2, 2);\n\
         }\n";

    fn twin_caller(lock: &str, first: &str, second: &str) -> String {
        format!(
            "use tsvd_collections::Dictionary;\n\
             use tsvd_tasks::sync::TsvdMutex;\n\
             fn run(pool: &Pool) {{\n\
                 let table = Dictionary::new();\n\
                 let {lock} = TsvdMutex::new(0u32);\n\
                 let d1 = table.clone();\n\
                 let m1 = {lock}.clone();\n\
                 let d2 = table.clone();\n\
                 let m2 = {lock}.clone();\n\
                 pool.spawn(move || {first}(&d1, &m1));\n\
                 pool.spawn(move || {second}(&d2, &m2));\n\
             }}\n"
        )
    }

    #[test]
    fn pruned_twins_across_guard_roots_collapse_to_one_record() {
        // Two caller files prune the *same* helper-site pair under
        // different lock names — and in opposite call order, so the raw
        // records carry opposite site orientation. One pruned record must
        // survive, not one per guard root (the pre-pair_key regression).
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_twins_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("helpers.rs"), TWIN_HELPERS).expect("write");
        std::fs::write(
            dir.join("caller_a.rs"),
            twin_caller("lock_a", "set_low", "set_high"),
        )
        .expect("write");
        std::fs::write(
            dir.join("caller_b.rs"),
            twin_caller("lock_b", "set_high", "set_low"),
        )
        .expect("write");
        let report = analyze_workspace(&dir).expect("analyze");
        assert!(report.pairs.is_empty(), "every candidate is lock-pruned");
        assert_eq!(
            report.pruned_pairs.len(),
            1,
            "one record per pair identity, not per guard root / orientation: {:?}",
            report
                .pruned_pairs
                .iter()
                .map(|p| (&p.first, &p.second, &p.guard))
                .collect::<Vec<_>>()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_pair_kept_anywhere_drops_its_pruned_twin() {
        // caller_a prunes the helper pair (both sides locked); caller_c
        // reaches the same pair unguarded and keeps it. The merged report
        // must show the pair once, as kept — a pruned twin would
        // double-count it in the scoreboard.
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_keep_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("helpers.rs"), TWIN_HELPERS).expect("write");
        std::fs::write(
            dir.join("caller_a.rs"),
            twin_caller("lock_a", "set_low", "set_high"),
        )
        .expect("write");
        std::fs::write(
            dir.join("caller_c.rs"),
            "use tsvd_collections::Dictionary;\n\
             use tsvd_tasks::sync::TsvdMutex;\n\
             fn run_free(pool: &Pool) {\n\
                 let table = Dictionary::new();\n\
                 let relic = TsvdMutex::new(0u32);\n\
                 let m0 = relic.clone();\n\
                 let d1 = table.clone();\n\
                 let d2 = table.clone();\n\
                 pool.spawn(move || set_low(&d1, &m0));\n\
                 pool.spawn(move || set_high(&d2, &m0));\n\
             }\n",
        )
        .expect("write");
        let report = analyze_workspace(&dir).expect("analyze");
        let key = |p: &StaticPair| pair_key(p);
        let kept: Vec<_> = report.pairs.iter().map(key).collect();
        for p in &report.pruned_pairs {
            assert!(
                !kept.contains(&key(p)),
                "pruned twin of a kept pair survived: {:?}",
                (&p.first, &p.second)
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_files_warn_instead_of_failing() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("ok.rs"), "fn f() {}\n").expect("write");
        std::fs::write(dir.join("bad.rs"), [0xffu8, 0xfe, 0x00, 0x9f]).expect("write");
        let report = analyze_paths(
            &dir,
            &[
                "ok.rs".to_string(),
                "bad.rs".to_string(),
                "missing.rs".to_string(),
            ],
        )
        .expect("analyze must not abort");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.files_skipped, 2, "non-UTF-8 and missing");
        assert_eq!(report.warnings.len(), 2);
        assert!(report.warnings.iter().any(|w| w.starts_with("bad.rs:")));
        assert!(report.warnings.iter().any(|w| w.starts_with("missing.rs:")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
