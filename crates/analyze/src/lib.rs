//! `tsvd-analyze`: static instrumentation auditor and dangerous-pair
//! pre-filter for the TSVD dynamic detector.
//!
//! The paper's pipeline starts with a static pass: a binary rewriter walks
//! every call site, identifies calls into thread-unsafe APIs, and rewrites
//! them to route through `OnCall` (§3.1). This crate is that front end for
//! the Rust reproduction, with three outputs:
//!
//! 1. **Instrumentation-coverage lint** ("escapes"): call sites that use
//!    raw `std::collections` / `tsvd_collections::raw` types from code with
//!    concurrency evidence. Such calls never reach [`Runtime::on_call`], so
//!    the dynamic detector is blind to them — exactly the coverage gap the
//!    paper's rewriter exists to close. Intentional raw usage is recorded
//!    in an allowlist file (see [`allowlist`]).
//! 2. **Static site database**: every instrumented-collection call site as
//!    `(file, line, column, receiver, method, read/write)`, classified by
//!    the *same* API table the wrappers consult at run time
//!    ([`tsvd_core::access::API_TABLE`]), with columns matching what
//!    `#[track_caller]` records so static and dynamic sites intern to the
//!    same [`tsvd_core::SiteId`]s. Receiver provenance survives helper
//!    calls through per-crate function summaries ([`callgraph`]).
//! 3. **Dangerous-pair candidates**: conflicting accesses to one shared
//!    receiver reachable from different tasks, graded with a confidence in
//!    `(0, 1]` (provenance hops, lockset evidence, task-region distance —
//!    see [`lockset`] and DESIGN.md) and emitted in trap-file format with
//!    [`tsvd_core::PairOrigin::Static`] so the runtime can arm traps
//!    before the *first* dynamic run — the static analogue of §3.4.6's
//!    cross-run trap persistence, removing the warm-up run entirely for
//!    pairs the analyzer predicts. Pairs whose both sides are consistently
//!    protected by the same exclusive guard are pruned before emission.
//!
//! [`Runtime::on_call`]: tsvd_core::Runtime::on_call

#![warn(missing_docs)]

pub mod allowlist;
pub mod analysis;
pub mod callgraph;
pub mod lexer;
pub mod lockset;
pub mod patch;
pub mod repair;
pub mod report;
pub mod score;
pub mod walk;

use std::collections::HashSet;
use std::io;
use std::path::Path;

pub use allowlist::{AllowEntry, Allowlist};
pub use analysis::{analyze_file, analyze_file_with, instrumented_op_literals, FileAnalysis};
pub use callgraph::Summaries;
pub use report::{AnalysisReport, Escape, StaticPair, StaticSite};

/// Analyzes every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// and dot-directories). Paths in the report are `root`-relative with
/// forward slashes.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    let files = walk::rust_files(root)?;
    let rels: Vec<String> = files.iter().map(|f| walk::to_forward_slashes(f)).collect();
    analyze_paths(root, &rels)
}

/// Analyzes an explicit list of `root`-relative files. Unreadable or
/// non-UTF-8 files become per-file warnings (and count as skipped) rather
/// than failing the whole run — one unparseable path must not hide every
/// other finding.
pub fn analyze_paths(root: &Path, files: &[String]) -> io::Result<AnalysisReport> {
    let mut report = AnalysisReport::default();
    // Normalize and dedupe first: the same file reachable under two walk
    // roots (or spelled `./a.rs` vs `a.rs`, `a\b.rs` vs `a/b.rs`) must
    // analyze once, not emit duplicate pairs.
    let mut seen: HashSet<String> = HashSet::new();
    let mut sources: Vec<(String, String)> = Vec::new();
    for rel in files {
        let rel = walk::normalize_rel(rel);
        if !seen.insert(rel.clone()) {
            continue;
        }
        match std::fs::read_to_string(root.join(&rel)) {
            Ok(src) => sources.push((rel, src)),
            Err(err) => {
                report.files_skipped += 1;
                report.warnings.push(format!("{rel}: {err}"));
            }
        }
    }
    // Whole-tree function summaries before any per-file pass, so helper
    // calls resolve across files of the same crate.
    let summaries = Summaries::build(&sources);
    for (rel, src) in &sources {
        report.files_scanned += 1;
        let fa = analysis::analyze_file_with(rel, src, &summaries);
        report.escapes.extend(fa.escapes);
        report.sites.extend(fa.sites);
        report.pairs.extend(fa.pairs);
        report.pruned_pairs.extend(fa.pruned_pairs);
    }
    dedupe_pairs(&mut report.pairs);
    dedupe_pairs(&mut report.pruned_pairs);
    Ok(report)
}

/// Collapses duplicate `(first, second)` site pairs, keeping the highest
/// confidence (the strongest evidence wins when two paths found the pair).
fn dedupe_pairs(pairs: &mut Vec<StaticPair>) {
    let mut best: Vec<StaticPair> = Vec::new();
    for p in pairs.drain(..) {
        match best
            .iter_mut()
            .find(|q| q.first == p.first && q.second == p.second)
        {
            Some(q) => {
                if p.confidence > q.confidence {
                    *q = p;
                }
            }
            None => best.push(p),
        }
    }
    *pairs = best;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_analysis_end_to_end() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_ws_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(
            dir.join("src/main.rs"),
            r#"
use std::collections::HashMap;
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;
fn main() {
    let raw = HashMap::new();
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    let pool = Pool::new(2);
    pool.spawn(move || d1.set(1, 1));
    pool.spawn(move || d2.set(2, 2));
    drop(raw);
}
"#,
        )
        .expect("write");
        let report = analyze_workspace(&dir).expect("analyze");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.files_skipped, 0);
        assert!(report.warnings.is_empty());
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].file, "src/main.rs");
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.pairs.len(), 1);
        let tf = report.to_trap_file();
        assert_eq!(tf.count_origin(tsvd_core::PairOrigin::Static), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_path_spellings_analyze_once() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_dup_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(
            dir.join("src/lib.rs"),
            "use tsvd_collections::Dictionary;\n\
             fn f(pool: &Pool) {\n\
                 let d = Dictionary::new();\n\
                 let d1 = d.clone();\n\
                 pool.spawn(move || d1.set(1, 1));\n\
                 d.set(2, 2);\n\
             }\n",
        )
        .expect("write");
        let report = analyze_paths(
            &dir,
            &[
                "src/lib.rs".to_string(),
                "./src/lib.rs".to_string(),
                "src\\lib.rs".to_string(),
            ],
        )
        .expect("analyze");
        assert_eq!(report.files_scanned, 1, "three spellings, one file");
        assert_eq!(report.pairs.len(), 1, "no duplicate pair");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unreadable_files_warn_instead_of_failing() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("ok.rs"), "fn f() {}\n").expect("write");
        std::fs::write(dir.join("bad.rs"), [0xffu8, 0xfe, 0x00, 0x9f]).expect("write");
        let report = analyze_paths(
            &dir,
            &[
                "ok.rs".to_string(),
                "bad.rs".to_string(),
                "missing.rs".to_string(),
            ],
        )
        .expect("analyze must not abort");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.files_skipped, 2, "non-UTF-8 and missing");
        assert_eq!(report.warnings.len(), 2);
        assert!(report.warnings.iter().any(|w| w.starts_with("bad.rs:")));
        assert!(report.warnings.iter().any(|w| w.starts_with("missing.rs:")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
