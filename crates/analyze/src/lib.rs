//! `tsvd-analyze`: static instrumentation auditor and dangerous-pair
//! pre-filter for the TSVD dynamic detector.
//!
//! The paper's pipeline starts with a static pass: a binary rewriter walks
//! every call site, identifies calls into thread-unsafe APIs, and rewrites
//! them to route through `OnCall` (§3.1). This crate is that front end for
//! the Rust reproduction, with three outputs:
//!
//! 1. **Instrumentation-coverage lint** ("escapes"): call sites that use
//!    raw `std::collections` / `tsvd_collections::raw` types from code with
//!    concurrency evidence. Such calls never reach [`Runtime::on_call`], so
//!    the dynamic detector is blind to them — exactly the coverage gap the
//!    paper's rewriter exists to close. Intentional raw usage is recorded
//!    in an allowlist file (see [`allowlist`]).
//! 2. **Static site database**: every instrumented-collection call site as
//!    `(file, line, column, receiver, method, read/write)`, classified by
//!    the *same* API table the wrappers consult at run time
//!    ([`tsvd_core::access::API_TABLE`]), with columns matching what
//!    `#[track_caller]` records so static and dynamic sites intern to the
//!    same [`tsvd_core::SiteId`]s.
//! 3. **Dangerous-pair candidates**: conflicting accesses to one shared
//!    receiver reachable from different tasks, emitted in trap-file format
//!    with [`tsvd_core::PairOrigin::Static`] so the runtime can arm traps
//!    before the *first* dynamic run — the static analogue of §3.4.6's
//!    cross-run trap persistence, removing the warm-up run entirely for
//!    pairs the analyzer predicts.
//!
//! [`Runtime::on_call`]: tsvd_core::Runtime::on_call

#![warn(missing_docs)]

pub mod allowlist;
pub mod analysis;
pub mod lexer;
pub mod report;
pub mod walk;

use std::io;
use std::path::Path;

pub use allowlist::{AllowEntry, Allowlist};
pub use analysis::{analyze_file, instrumented_op_literals, FileAnalysis};
pub use report::{AnalysisReport, Escape, StaticPair, StaticSite};

/// Analyzes every `.rs` file under `root` (skipping `target/`, `vendor/`,
/// and dot-directories). Paths in the report are `root`-relative with
/// forward slashes.
pub fn analyze_workspace(root: &Path) -> io::Result<AnalysisReport> {
    let files = walk::rust_files(root)?;
    let rels: Vec<String> = files.iter().map(|f| walk::to_forward_slashes(f)).collect();
    analyze_paths(root, &rels)
}

/// Analyzes an explicit list of `root`-relative files. Unreadable files
/// are skipped rather than failing the whole run — one unparseable path
/// must not hide every other finding.
pub fn analyze_paths(root: &Path, files: &[String]) -> io::Result<AnalysisReport> {
    let mut report = AnalysisReport::default();
    for rel in files {
        let Ok(src) = std::fs::read_to_string(root.join(rel)) else {
            continue;
        };
        report.files_scanned += 1;
        let fa = analysis::analyze_file(rel, &src);
        report.escapes.extend(fa.escapes);
        report.sites.extend(fa.sites);
        report.pairs.extend(fa.pairs);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_analysis_end_to_end() {
        let dir = std::env::temp_dir().join(format!("tsvd_analyze_ws_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("src")).expect("mkdir");
        std::fs::write(
            dir.join("src/main.rs"),
            r#"
use std::collections::HashMap;
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;
fn main() {
    let raw = HashMap::new();
    let d = Dictionary::new();
    let d1 = d.clone();
    let d2 = d.clone();
    let pool = Pool::new(2);
    pool.spawn(move || d1.set(1, 1));
    pool.spawn(move || d2.set(2, 2));
    drop(raw);
}
"#,
        )
        .expect("write");
        let report = analyze_workspace(&dir).expect("analyze");
        assert_eq!(report.files_scanned, 1);
        assert_eq!(report.escapes.len(), 1);
        assert_eq!(report.escapes[0].file, "src/main.rs");
        assert_eq!(report.sites.len(), 2);
        assert_eq!(report.pairs.len(), 1);
        let tf = report.to_trap_file();
        assert_eq!(tf.count_origin(tsvd_core::PairOrigin::Static), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
