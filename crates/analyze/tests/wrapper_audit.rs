//! Wrapper audit: proves the shipped collection wrappers and the shared
//! API table agree *exactly*.
//!
//! The analyzer classifies static sites with [`tsvd_core::access::API_TABLE`];
//! the wrappers classify dynamic calls by which `Instrumented` method they
//! route through. If a wrapper adds a public op without a table entry (or
//! routes it through the wrong side), static and dynamic classification
//! silently diverge. This test lexes the wrapper sources and checks both
//! directions:
//!
//! - every `"Class.op"` literal passed to `.write(site, ..)` /
//!   `.read(site, ..)` is present in the table with the same kind;
//! - every table entry appears in at least one wrapper call.

use std::collections::BTreeMap;
use std::path::Path;

use tsvd_analyze::instrumented_op_literals;
use tsvd_core::{OpKind, API_TABLE};

fn wrapper_ops() -> BTreeMap<String, OpKind> {
    let src_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../collections/src");
    let mut ops = BTreeMap::new();
    for entry in std::fs::read_dir(&src_dir).expect("read collections/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let src = std::fs::read_to_string(&path).expect("read wrapper source");
        for (name, kind) in instrumented_op_literals(&src) {
            if let Some(prev) = ops.insert(name.clone(), kind) {
                assert_eq!(
                    prev, kind,
                    "{name} is reported as both read and write in the wrappers"
                );
            }
        }
    }
    ops
}

#[test]
fn every_wrapper_op_is_classified_in_the_shared_table() {
    let ops = wrapper_ops();
    assert!(
        !ops.is_empty(),
        "found no instrumented ops — pattern drift?"
    );
    for (name, kind) in &ops {
        let entry = API_TABLE
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("wrapper op {name} missing from tsvd_core API_TABLE"));
        assert_eq!(
            entry.kind, *kind,
            "{name}: wrapper routes it as {kind:?} but the table says {:?}",
            entry.kind
        );
    }
}

#[test]
fn every_table_entry_is_implemented_by_a_wrapper() {
    let ops = wrapper_ops();
    for entry in API_TABLE {
        assert!(
            ops.contains_key(entry.name),
            "table entry {} has no wrapper implementation",
            entry.name
        );
    }
    assert_eq!(
        ops.len(),
        API_TABLE.len(),
        "wrapper op count and table size must match exactly"
    );
}
