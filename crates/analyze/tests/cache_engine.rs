//! End-to-end tests for the incremental parallel analysis engine: the
//! on-disk cache and the thread fan-out must never change the report,
//! only how fast it is produced.

use std::fs;
use std::path::{Path, PathBuf};

use tsvd_analyze::{analyze_workspace_with, AnalyzeOptions};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsvd_engine_{}_{}", tag, std::process::id()));
    fs::remove_dir_all(&dir).ok();
    fs::create_dir_all(&dir).expect("mkdir scratch");
    dir
}

fn jsonl_with(threads: usize, cache_dir: Option<&Path>) -> String {
    let opts = AnalyzeOptions {
        threads,
        cache_dir: cache_dir.map(|d| d.to_path_buf()),
    };
    analyze_workspace_with(&fixture_root(), &opts)
        .expect("analyze")
        .to_jsonl()
}

#[test]
fn warm_runs_are_byte_identical_and_populate_the_cache() {
    let cache = scratch("warm");
    let cold = jsonl_with(1, Some(&cache));
    let entries: Vec<_> = fs::read_dir(&cache)
        .expect("cache dir exists after a cold run")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        entries.iter().any(|n| n.starts_with("frag-")),
        "cold run stores fragment entries: {entries:?}"
    );
    assert!(
        entries.iter().any(|n| n.starts_with("file-")),
        "cold run stores analysis entries: {entries:?}"
    );
    let warm = jsonl_with(1, Some(&cache));
    assert_eq!(cold, warm, "warm output must be byte-identical to cold");
    fs::remove_dir_all(&cache).ok();
}

#[test]
fn thread_count_and_cache_state_never_change_the_output() {
    let cache = scratch("threads");
    let reference = jsonl_with(1, None);
    for threads in [2, 8] {
        assert_eq!(
            jsonl_with(threads, None),
            reference,
            "uncached, {threads} threads"
        );
    }
    // Cold parallel run against an empty cache, then warm runs at
    // several widths: all byte-identical to the single-threaded,
    // uncached reference.
    assert_eq!(jsonl_with(8, Some(&cache)), reference, "cold, 8 threads");
    for threads in [1, 4] {
        assert_eq!(
            jsonl_with(threads, Some(&cache)),
            reference,
            "warm, {threads} threads"
        );
    }
    fs::remove_dir_all(&cache).ok();
}

#[test]
fn corrupted_cache_entries_fall_back_to_fresh_analysis() {
    let cache = scratch("corrupt");
    let reference = jsonl_with(1, Some(&cache));
    // Mangle every entry a different way: truncation, garbage bytes,
    // valid-JSON-wrong-shape. The engine must treat each as a miss.
    for (style, entry) in fs::read_dir(&cache).expect("read cache").enumerate() {
        let path = entry.expect("entry").path();
        match style % 3 {
            0 => {
                let text = fs::read_to_string(&path).expect("read entry");
                fs::write(&path, &text[..text.len() / 2]).expect("truncate");
            }
            1 => fs::write(&path, b"\x00\xff not json at all").expect("garbage"),
            _ => fs::write(&path, "[1, 2, 3]").expect("wrong shape"),
        }
    }
    assert_eq!(
        jsonl_with(4, Some(&cache)),
        reference,
        "a fully corrupted cache degrades to a cold run, not a panic or drift"
    );
    // And the run above repaired the cache: a further warm run matches too.
    assert_eq!(jsonl_with(1, Some(&cache)), reference);
    fs::remove_dir_all(&cache).ok();
}

#[test]
fn stale_schema_entries_are_recomputed() {
    let cache = scratch("stale");
    let reference = jsonl_with(1, Some(&cache));
    for entry in fs::read_dir(&cache).expect("read cache") {
        let path = entry.expect("entry").path();
        let text = fs::read_to_string(&path).expect("read entry");
        // Entries are written compactly, so the version literal is `"schema":N`.
        fs::write(&path, text.replace("\"schema\":1", "\"schema\":99")).expect("rewrite");
    }
    assert_eq!(
        jsonl_with(1, Some(&cache)),
        reference,
        "future-schema entries are ignored, not misparsed"
    );
    fs::remove_dir_all(&cache).ok();
}
