//! Fixture: intentional raw usage, covered by `allowlist.toml`.
use std::collections::VecDeque;
use tsvd_tasks::Pool;

pub fn scratch(pool: &Pool) {
    let q = VecDeque::new();
    pool.spawn(move || drop(q));
}
