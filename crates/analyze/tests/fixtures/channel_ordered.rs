//! Fixture: a unique send→recv orders the spawned prologue before the
//! main thread's post-recv write (planted false candidate, pruned); the
//! post-send tail has no such edge and stays (channel-partial evidence).
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn handoff(pool: &Pool) {
    let stats = Dictionary::new();
    let s1 = stats.clone();
    let (tx, rx) = mpsc::channel();
    pool.spawn(move || {
        s1.set(1, 1);
        tx.send(1);
        s1.set(2, 2);
    });
    rx.recv();
    stats.set(3, 3);
}
