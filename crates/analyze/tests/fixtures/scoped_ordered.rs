//! Fixture: a scoped-thread block joins every spawn at its closing
//! paren. The post-scope write is a planted false candidate; the read
//! inside the scope still races the spawned body (window evidence).
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn scope_then_write(pool: &Pool) {
    let grid = Dictionary::new();
    let g1 = grid.clone();
    pool.scope(|s| {
        s.spawn(move || g1.set(1, 1));
        grid.get(&1);
    });
    grid.set(2, 2);
}
