//! Fixture: a raw std map escaping instrumentation in concurrent code.
use std::collections::HashMap;
use tsvd_tasks::Pool;

pub fn leak(pool: &Pool) {
    let mut cache = HashMap::new();
    cache.insert(1, 2);
    pool.spawn(move || drop(cache));
}
