//! Fixture: consistently locked accesses — every candidate prunes.
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
use tsvd_tasks::Pool;

pub fn disciplined(pool: &Pool) {
    let table = Dictionary::new();
    let lock = TsvdMutex::new(0u32);
    let t1 = table.clone();
    let l1 = lock.clone();
    let t2 = table.clone();
    let l2 = lock.clone();
    pool.spawn(move || {
        let g = l1.lock();
        t1.set(1, 1);
    });
    pool.spawn(move || {
        let g = l2.lock();
        t2.set(2, 2);
        t2.get(&1);
    });
}
