//! Fixture: a closure-captured shared dictionary with conflicting accesses.
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn racy(pool: &Pool) {
    let shared = Dictionary::new();
    let a = shared.clone();
    let b = shared.clone();
    pool.spawn(move || a.set(1, 10));
    pool.spawn(move || {
        b.set(2, 20);
        b.get(&1);
    });
    shared.len();
}
