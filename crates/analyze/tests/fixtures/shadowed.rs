//! Fixture: a shadowing rebind must not keep the old classification.
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn rebound(pool: &Pool) {
    let log = Dictionary::new();
    log.set(0, 0);
    let log = plain_vec();
    let l1 = log.clone();
    pool.spawn(move || l1.push(1));
    pool.spawn(move || log.push(2));
}
