//! Fixture: a joined spawn orders its body before later main accesses.
//! The post-join write is a planted false candidate the HB pass must
//! prune; the pre-join write still races (window evidence only).
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn join_then_write(pool: &Pool) {
    let ledger = Dictionary::new();
    let l1 = ledger.clone();
    let worker = pool.spawn(move || l1.set(1, 1));
    ledger.set(2, 2);
    let _ = worker.join();
    ledger.set(3, 3);
}
