//! Fixture: `.await` points are recorded as task-boundary markers for
//! the report; the threads-only runtime draws no ordering edges from
//! them yet, so the lone write produces no pair either way.
use tsvd_collections::Dictionary;

pub async fn refresh() {
    let warm = Dictionary::new();
    let value = fetch(1).await;
    warm.set(1, value);
    publish(&warm).await;
}
