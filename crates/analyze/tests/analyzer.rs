//! End-to-end analyzer tests against the checked-in fixture tree.
//!
//! The counts below are exact on purpose: the fixtures are frozen inputs,
//! and any analyzer change that shifts what is found must update both
//! sides consciously.

use std::path::{Path, PathBuf};

use tsvd_analyze::score::{load_candidates, load_outcomes, score, Baseline};
use tsvd_analyze::{analyze_workspace, Allowlist};
use tsvd_core::PairOrigin;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_counts_are_exact() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    assert_eq!(report.files_scanned, 11);
    assert_eq!(report.files_skipped, 0);
    assert!(report.warnings.is_empty());

    // Two raw escapes: the std HashMap and the allowlisted VecDeque.
    assert_eq!(report.escapes.len(), 2);
    let hashmap = report
        .escapes
        .iter()
        .find(|e| e.name == "HashMap")
        .expect("HashMap escape");
    assert_eq!(hashmap.file, "escape_raw.rs");
    assert_eq!(hashmap.line, 6);
    assert_eq!(hashmap.via, "std::collections");
    let vecdeque = report
        .escapes
        .iter()
        .find(|e| e.name == "VecDeque")
        .expect("VecDeque escape");
    assert_eq!(vecdeque.file, "allowlisted_raw.rs");
    assert_eq!(vecdeque.line, 6);

    // Twenty-two instrumented sites, columns on the method ident (the
    // #[track_caller] convention). The two helper_flow.rs sites share one
    // location — both spawns route through the same `bump` helper — and
    // shadowed.rs contributes only the pre-rebind write.
    let site_texts: Vec<String> = report.sites.iter().map(|s| s.site_text()).collect();
    assert_eq!(
        site_texts,
        vec![
            "async_markers.rs:9:10",    // warm.set after the first await
            "channel_ordered.rs:12:12", // s1.set before the send
            "channel_ordered.rs:14:12", // s1.set after the send
            "channel_ordered.rs:17:11", // stats.set after the recv
            "guarded.rs:15:12",         // t1.set under l1.lock()
            "guarded.rs:19:12",         // t2.set under l2.lock()
            "guarded.rs:20:12",         // t2.get under l2.lock()
            "half_guarded.rs:14:12",    // t1.set under l1.lock()
            "half_guarded.rs:17:12",    // t2.set, unguarded
            "helper_flow.rs:6:7",       // bump's d.set, via spawn #1
            "helper_flow.rs:6:7",       // bump's d.set, via spawn #2
            "join_ordered.rs:10:40",    // l1.set in the joined spawn
            "join_ordered.rs:11:12",    // ledger.set before the join
            "join_ordered.rs:13:12",    // ledger.set after the join
            "scoped_ordered.rs:11:28",  // g1.set in the scoped spawn
            "scoped_ordered.rs:12:14",  // grid.get inside the scope
            "scoped_ordered.rs:14:10",  // grid.set after the scope
            "shadowed.rs:7:9",          // log.set before the shadowing rebind
            "shared_map.rs:9:26",       // a.set
            "shared_map.rs:11:11",      // b.set
            "shared_map.rs:12:11",      // b.get
            "shared_map.rs:14:12",      // shared.len
        ]
    );
    assert_eq!(
        report.sites.iter().filter(|s| s.kind == "write").count(),
        18
    );
    // The async fixture's two `.await` points land as task-boundary
    // markers, not ordering edges.
    let awaits: Vec<String> = report
        .awaits
        .iter()
        .map(|a| format!("{}:{}:{}", a.file, a.line, a.column))
        .collect();
    assert_eq!(
        awaits,
        vec!["async_markers.rs:8:26", "async_markers.rs:10:20"]
    );

    // Kept pairs: shared_map's four, half_guarded's one-side-guarded
    // write-write, helper_flow's interprocedural self-pair, and one
    // window-bounded pair from each of the three HB fixtures.
    assert_eq!(report.pairs.len(), 9);
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "cross-task")
            .count(),
        4
    );
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "main-vs-spawned")
            .count(),
        5
    );
    let ww = report
        .pairs
        .iter()
        .find(|p| p.first == "shared_map.rs:9:26" && p.second == "shared_map.rs:11:11")
        .expect("write-write pair");
    assert_eq!(ww.first_op, "Dictionary.set");
    assert_eq!(ww.second_op, "Dictionary.set");
    assert_eq!(ww.confidence, 0.8182);
    assert_eq!(ww.guard, "none");
    assert_eq!(ww.provenance, "direct");
    assert_eq!(ww.hb_evidence, "none");

    let half = report
        .pairs
        .iter()
        .find(|p| p.first.starts_with("half_guarded.rs"))
        .expect("one-side-guarded pair");
    assert_eq!(half.guard, "one-side-guarded");
    assert_eq!(half.confidence, 0.8182);

    let helper = report
        .pairs
        .iter()
        .find(|p| p.first.starts_with("helper_flow.rs"))
        .expect("interprocedural pair");
    assert_eq!(helper.first, "helper_flow.rs:6:7");
    assert_eq!(helper.second, "helper_flow.rs:6:7", "same-site self pair");
    assert_eq!(helper.provenance, "via-calls:1");
    assert_eq!(helper.confidence, 0.6955);

    // Window evidence scales but keeps: the pre-join write can still race
    // the spawned body (0.75 * 0.95 / 1.1), and the post-send tail has
    // only partial channel evidence (0.75 * 0.9 / 1.1).
    let window = report
        .pairs
        .iter()
        .find(|p| p.first == "join_ordered.rs:10:40")
        .expect("window-join pair");
    assert_eq!(window.second, "join_ordered.rs:11:12");
    assert_eq!(window.hb_evidence, "window-join:worker");
    assert_eq!(window.confidence, 0.6477);
    let scoped = report
        .pairs
        .iter()
        .find(|p| p.first == "scoped_ordered.rs:11:28")
        .expect("window-scope pair");
    assert_eq!(scoped.second, "scoped_ordered.rs:12:14");
    assert_eq!(scoped.hb_evidence, "window-scope");
    assert_eq!(scoped.confidence, 0.6477);
    let partial = report
        .pairs
        .iter()
        .find(|p| p.first == "channel_ordered.rs:14:12")
        .expect("channel-partial pair");
    assert_eq!(partial.second, "channel_ordered.rs:17:11");
    assert_eq!(partial.hb_evidence, "channel-partial");
    assert_eq!(partial.confidence, 0.6136);
}

#[test]
fn lockset_and_hb_pruning_cut_false_candidates_with_zero_true_loss() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");

    // Five pruned candidates: guarded.rs's two lockset prunes plus one
    // planted provably-ordered false candidate per HB fixture.
    assert_eq!(report.pruned_pairs.len(), 5);
    let guarded: Vec<_> = report
        .pruned_pairs
        .iter()
        .filter(|p| p.first.starts_with("guarded.rs"))
        .collect();
    assert_eq!(guarded.len(), 2);
    for p in &guarded {
        assert_eq!(p.guard, "both-guarded:lock");
        assert_eq!(p.confidence, 0.0);
        assert_eq!(p.hb_evidence, "none", "lockset pruning takes precedence");
    }
    let ordered: Vec<_> = report
        .pruned_pairs
        .iter()
        .filter(|p| p.reason == "ordered")
        .collect();
    assert_eq!(ordered.len(), 3, "one planted ordered pair per HB fixture");
    for (pair_first, pair_second, evidence) in [
        (
            "channel_ordered.rs:12:12",
            "channel_ordered.rs:17:11",
            "ordered:channel",
        ),
        (
            "join_ordered.rs:10:40",
            "join_ordered.rs:13:12",
            "ordered:join:worker",
        ),
        (
            "scoped_ordered.rs:11:28",
            "scoped_ordered.rs:14:10",
            "ordered:scope",
        ),
    ] {
        let p = ordered
            .iter()
            .find(|p| p.first == pair_first && p.second == pair_second)
            .unwrap_or_else(|| panic!("missing ordered prune {pair_first} <-> {pair_second}"));
        assert_eq!(p.hb_evidence, evidence);
        assert_eq!(p.confidence, 0.0);
    }

    // Zero true-candidate loss: every genuinely racy fixture pair is still
    // emitted, and nothing from guarded.rs survives.
    assert_eq!(report.pairs.len(), 9);
    assert!(report
        .pairs
        .iter()
        .all(|p| !p.first.starts_with("guarded.rs")));
    for must_keep in [
        ("channel_ordered.rs:14:12", "channel_ordered.rs:17:11"),
        ("half_guarded.rs:14:12", "half_guarded.rs:17:12"),
        ("helper_flow.rs:6:7", "helper_flow.rs:6:7"),
        ("join_ordered.rs:10:40", "join_ordered.rs:11:12"),
        ("scoped_ordered.rs:11:28", "scoped_ordered.rs:12:14"),
        ("shared_map.rs:9:26", "shared_map.rs:11:11"),
        ("shared_map.rs:9:26", "shared_map.rs:12:11"),
        ("shared_map.rs:9:26", "shared_map.rs:14:12"),
        ("shared_map.rs:11:11", "shared_map.rs:14:12"),
    ] {
        assert!(
            report
                .pairs
                .iter()
                .any(|p| p.first == must_keep.0 && p.second == must_keep.1),
            "true candidate lost: {must_keep:?}"
        );
    }
}

#[test]
fn allowlist_splits_intended_from_blocking() {
    let mut report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let allowlist =
        Allowlist::load(&fixtures_root().join("allowlist.toml")).expect("load allowlist");
    report.apply_allowlist(&allowlist);
    let blocking = report.unallowlisted_escapes();
    assert_eq!(blocking.len(), 1, "only the HashMap escape blocks");
    assert_eq!(blocking[0].name, "HashMap");
    assert_eq!(blocking[0].file, "escape_raw.rs");
}

#[test]
fn fixture_pairs_become_a_static_trap_file() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let tf = report.to_trap_file();
    assert_eq!(tf.pairs.len(), 9, "pruned pairs stay out of the trap file");
    assert_eq!(tf.count_origin(PairOrigin::Static), 9);
    // Every textual pair must re-intern as real SiteIds.
    assert_eq!(tf.to_pairs().len(), 9);
    // HB evidence rides along for the repair pass to read back.
    let labels: Vec<&str> = (0..tf.pairs.len()).map(|i| tf.hb_evidence(i)).collect();
    assert!(labels.contains(&"window-join:worker"));
    assert!(labels.contains(&"window-scope"));
    assert!(labels.contains(&"channel-partial"));
    // Confidence survives the trap file and drives arming order: the
    // highest-confidence pairs come first; the channel-partial pair is
    // the weakest evidence we still arm.
    let order = tf.arming_order();
    let confs: Vec<f64> = order.iter().map(|&i| tf.confidence(i)).collect();
    assert!(confs.windows(2).all(|w| w[0] >= w[1]), "sorted: {confs:?}");
    assert_eq!(confs[0], 0.8182);
    assert_eq!(*confs.last().expect("nonempty"), 0.6136);
}

#[test]
fn jsonl_round_trips_every_fixture_record() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let jsonl = report.to_jsonl();
    // summary + 2 escapes + 22 sites + 9 pairs + 5 pruned pairs + 2 awaits
    assert_eq!(jsonl.lines().count(), 41);
    for line in jsonl.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        let obj = v.as_object().expect("object");
        assert!(obj.contains_key("record"));
    }
    assert_eq!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"pruned_pair\""))
            .count(),
        5
    );
    assert_eq!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"await\""))
            .count(),
        2
    );
}

#[test]
fn score_on_fixture_run_report_meets_the_checked_in_baseline() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let dir = std::env::temp_dir().join(format!("tsvd_analyzer_score_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let static_path = dir.join("static.jsonl");
    std::fs::write(&static_path, report.to_jsonl()).expect("write jsonl");

    let (kept, pruned) = load_candidates(&static_path).expect("load candidates");
    assert_eq!(kept.len(), 9);
    assert_eq!(pruned.len(), 5);
    let outcomes =
        load_outcomes(&fixtures_root().join("score/run-report.jsonl")).expect("load outcomes");
    assert_eq!(outcomes.len(), 6);

    let sr = score(&kept, &pruned, &outcomes);
    // 4 of 9 static candidates confirmed dynamically; 4 of 6 dynamic pairs
    // predicted; nothing confirmed was pruned — in particular none of the
    // three HB-ordered prunes.
    assert_eq!(sr.emitted, 9);
    assert_eq!(sr.confirmed, 4);
    assert_eq!(sr.dynamic_total, 6);
    assert_eq!(sr.matched_dynamic, 4);
    assert_eq!(sr.pruned, 5);
    assert_eq!(sr.pruned_confirmed, 0, "no true candidate was pruned");
    let cross = sr.rules.get("cross-task").expect("cross-task rule");
    assert_eq!((cross.emitted, cross.confirmed), (4, 2));
    let main = sr
        .rules
        .get("main-vs-spawned")
        .expect("main-vs-spawned rule");
    assert_eq!((main.emitted, main.confirmed), (5, 2));

    let baseline =
        Baseline::load(&fixtures_root().join("score/baseline.json")).expect("load baseline");
    sr.check_baseline(&baseline)
        .expect("fixture precision/recall must meet the recorded baseline");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hb_pruning_strictly_improves_precision_at_equal_recall() {
    // The A/B the baseline refresh rests on: re-admit the HB-pruned
    // records as if the pass did not exist and score both ways. Pruning
    // must raise precision and must not lose a single dynamic match.
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let dir = std::env::temp_dir().join(format!("tsvd_analyzer_ab_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let static_path = dir.join("static.jsonl");
    std::fs::write(&static_path, report.to_jsonl()).expect("write jsonl");
    let (kept, pruned) = load_candidates(&static_path).expect("load candidates");
    let outcomes =
        load_outcomes(&fixtures_root().join("score/run-report.jsonl")).expect("load outcomes");

    let with_hb = score(&kept, &pruned, &outcomes);
    let mut without_kept = kept.clone();
    without_kept.extend(
        pruned
            .iter()
            .filter(|c| c.rule == "ordered")
            .cloned()
            .map(|mut c| {
                c.confidence = 0.5;
                c
            }),
    );
    let without_pruned: Vec<_> = pruned
        .iter()
        .filter(|c| c.rule != "ordered")
        .cloned()
        .collect();
    let without_hb = score(&without_kept, &without_pruned, &outcomes);

    assert_eq!(without_hb.emitted, 12, "three re-admitted candidates");
    assert!(
        with_hb.precision > without_hb.precision,
        "HB pruning must strictly improve precision: {} vs {}",
        with_hb.precision,
        without_hb.precision
    );
    assert_eq!(
        with_hb.matched_dynamic, without_hb.matched_dynamic,
        "recall must be unchanged"
    );
    assert_eq!(with_hb.pruned_confirmed, 0);
    std::fs::remove_dir_all(&dir).ok();
}
