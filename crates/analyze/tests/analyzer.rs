//! End-to-end analyzer tests against the checked-in fixture tree.
//!
//! The counts below are exact on purpose: the fixtures are frozen inputs,
//! and any analyzer change that shifts what is found must update both
//! sides consciously.

use std::path::{Path, PathBuf};

use tsvd_analyze::{analyze_workspace, Allowlist};
use tsvd_core::PairOrigin;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_counts_are_exact() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    assert_eq!(report.files_scanned, 3);

    // Two raw escapes: the std HashMap and the allowlisted VecDeque.
    assert_eq!(report.escapes.len(), 2);
    let hashmap = report
        .escapes
        .iter()
        .find(|e| e.name == "HashMap")
        .expect("HashMap escape");
    assert_eq!(hashmap.file, "escape_raw.rs");
    assert_eq!(hashmap.line, 6);
    assert_eq!(hashmap.via, "std::collections");
    let vecdeque = report
        .escapes
        .iter()
        .find(|e| e.name == "VecDeque")
        .expect("VecDeque escape");
    assert_eq!(vecdeque.file, "allowlisted_raw.rs");
    assert_eq!(vecdeque.line, 6);

    // Four instrumented sites, all in shared_map.rs, columns on the
    // method ident (the #[track_caller] convention).
    assert_eq!(report.sites.len(), 4);
    let site_texts: Vec<String> = report.sites.iter().map(|s| s.site_text()).collect();
    assert_eq!(
        site_texts,
        vec![
            "shared_map.rs:9:26",  // a.set
            "shared_map.rs:11:11", // b.set
            "shared_map.rs:12:11", // b.get
            "shared_map.rs:14:12", // shared.len
        ]
    );
    assert!(report.sites.iter().all(|s| s.receiver == "shared"));
    assert_eq!(report.sites.iter().filter(|s| s.kind == "write").count(), 2);

    // Pairs: set x set and set x get across the two tasks, plus both
    // writes against the main thread's post-spawn len().
    assert_eq!(report.pairs.len(), 4);
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "cross-task")
            .count(),
        2
    );
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "main-vs-spawned")
            .count(),
        2
    );
    let ww = report
        .pairs
        .iter()
        .find(|p| p.first_op == "Dictionary.set" && p.second_op == "Dictionary.set")
        .expect("write-write pair");
    assert_eq!(ww.first, "shared_map.rs:9:26");
    assert_eq!(ww.second, "shared_map.rs:11:11");
}

#[test]
fn allowlist_splits_intended_from_blocking() {
    let mut report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let allowlist =
        Allowlist::load(&fixtures_root().join("allowlist.toml")).expect("load allowlist");
    report.apply_allowlist(&allowlist);
    let blocking = report.unallowlisted_escapes();
    assert_eq!(blocking.len(), 1, "only the HashMap escape blocks");
    assert_eq!(blocking[0].name, "HashMap");
    assert_eq!(blocking[0].file, "escape_raw.rs");
}

#[test]
fn fixture_pairs_become_a_static_trap_file() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let tf = report.to_trap_file();
    assert_eq!(tf.pairs.len(), 4);
    assert_eq!(tf.count_origin(PairOrigin::Static), 4);
    // Every textual pair must re-intern as real SiteIds.
    assert_eq!(tf.to_pairs().len(), 4);
}

#[test]
fn jsonl_round_trips_every_fixture_record() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let jsonl = report.to_jsonl();
    // summary + 2 escapes + 4 sites + 4 pairs
    assert_eq!(jsonl.lines().count(), 11);
    for line in jsonl.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        let obj = v.as_object().expect("object");
        assert!(obj.contains_key("record"));
    }
}
