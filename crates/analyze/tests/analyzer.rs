//! End-to-end analyzer tests against the checked-in fixture tree.
//!
//! The counts below are exact on purpose: the fixtures are frozen inputs,
//! and any analyzer change that shifts what is found must update both
//! sides consciously.

use std::path::{Path, PathBuf};

use tsvd_analyze::score::{load_candidates, load_outcomes, score, Baseline};
use tsvd_analyze::{analyze_workspace, Allowlist};
use tsvd_core::PairOrigin;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

#[test]
fn fixture_counts_are_exact() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    assert_eq!(report.files_scanned, 7);
    assert_eq!(report.files_skipped, 0);
    assert!(report.warnings.is_empty());

    // Two raw escapes: the std HashMap and the allowlisted VecDeque.
    assert_eq!(report.escapes.len(), 2);
    let hashmap = report
        .escapes
        .iter()
        .find(|e| e.name == "HashMap")
        .expect("HashMap escape");
    assert_eq!(hashmap.file, "escape_raw.rs");
    assert_eq!(hashmap.line, 6);
    assert_eq!(hashmap.via, "std::collections");
    let vecdeque = report
        .escapes
        .iter()
        .find(|e| e.name == "VecDeque")
        .expect("VecDeque escape");
    assert_eq!(vecdeque.file, "allowlisted_raw.rs");
    assert_eq!(vecdeque.line, 6);

    // Twelve instrumented sites, columns on the method ident (the
    // #[track_caller] convention). The two helper_flow.rs sites share one
    // location — both spawns route through the same `bump` helper — and
    // shadowed.rs contributes only the pre-rebind write.
    let site_texts: Vec<String> = report.sites.iter().map(|s| s.site_text()).collect();
    assert_eq!(
        site_texts,
        vec![
            "guarded.rs:15:12",      // t1.set under l1.lock()
            "guarded.rs:19:12",      // t2.set under l2.lock()
            "guarded.rs:20:12",      // t2.get under l2.lock()
            "half_guarded.rs:14:12", // t1.set under l1.lock()
            "half_guarded.rs:17:12", // t2.set, unguarded
            "helper_flow.rs:6:7",    // bump's d.set, via spawn #1
            "helper_flow.rs:6:7",    // bump's d.set, via spawn #2
            "shadowed.rs:7:9",       // log.set before the shadowing rebind
            "shared_map.rs:9:26",    // a.set
            "shared_map.rs:11:11",   // b.set
            "shared_map.rs:12:11",   // b.get
            "shared_map.rs:14:12",   // shared.len
        ]
    );
    assert_eq!(report.sites.iter().filter(|s| s.kind == "write").count(), 9);

    // Kept pairs: shared_map's four, half_guarded's one-side-guarded
    // write-write, and helper_flow's interprocedural self-pair.
    assert_eq!(report.pairs.len(), 6);
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "cross-task")
            .count(),
        4
    );
    assert_eq!(
        report
            .pairs
            .iter()
            .filter(|p| p.reason == "main-vs-spawned")
            .count(),
        2
    );
    let ww = report
        .pairs
        .iter()
        .find(|p| p.first == "shared_map.rs:9:26" && p.second == "shared_map.rs:11:11")
        .expect("write-write pair");
    assert_eq!(ww.first_op, "Dictionary.set");
    assert_eq!(ww.second_op, "Dictionary.set");
    assert_eq!(ww.confidence, 0.8182);
    assert_eq!(ww.guard, "none");
    assert_eq!(ww.provenance, "direct");

    let half = report
        .pairs
        .iter()
        .find(|p| p.first.starts_with("half_guarded.rs"))
        .expect("one-side-guarded pair");
    assert_eq!(half.guard, "one-side-guarded");
    assert_eq!(half.confidence, 0.8182);

    let helper = report
        .pairs
        .iter()
        .find(|p| p.first.starts_with("helper_flow.rs"))
        .expect("interprocedural pair");
    assert_eq!(helper.first, "helper_flow.rs:6:7");
    assert_eq!(helper.second, "helper_flow.rs:6:7", "same-site self pair");
    assert_eq!(helper.provenance, "via-calls:1");
    assert_eq!(helper.confidence, 0.6955);
}

#[test]
fn lockset_pruning_cuts_guarded_candidates_with_zero_true_loss() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");

    // guarded.rs holds the only consistently-locked accesses in the tree:
    // both its candidate pairs (set x set, set x get) are false positives a
    // line-level pass would emit. The lockset layer must prune every one.
    let guarded_candidates = 2usize;
    assert_eq!(report.pruned_pairs.len(), 2);
    for p in &report.pruned_pairs {
        assert!(p.first.starts_with("guarded.rs"));
        assert_eq!(p.guard, "both-guarded:lock");
        assert_eq!(p.confidence, 0.0);
    }
    let pruned_ratio = report.pruned_pairs.len() as f64 / guarded_candidates as f64;
    assert!(
        pruned_ratio >= 0.30,
        "lockset pruning must remove >= 30% of guarded false candidates, got {pruned_ratio}"
    );

    // Zero true-candidate loss: every genuinely racy fixture pair is still
    // emitted, and nothing from guarded.rs survives.
    assert_eq!(report.pairs.len(), 6);
    assert!(report
        .pairs
        .iter()
        .all(|p| !p.first.starts_with("guarded.rs")));
    for must_keep in [
        ("half_guarded.rs:14:12", "half_guarded.rs:17:12"),
        ("helper_flow.rs:6:7", "helper_flow.rs:6:7"),
        ("shared_map.rs:9:26", "shared_map.rs:11:11"),
        ("shared_map.rs:9:26", "shared_map.rs:12:11"),
        ("shared_map.rs:9:26", "shared_map.rs:14:12"),
        ("shared_map.rs:11:11", "shared_map.rs:14:12"),
    ] {
        assert!(
            report
                .pairs
                .iter()
                .any(|p| p.first == must_keep.0 && p.second == must_keep.1),
            "true candidate lost: {must_keep:?}"
        );
    }
}

#[test]
fn allowlist_splits_intended_from_blocking() {
    let mut report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let allowlist =
        Allowlist::load(&fixtures_root().join("allowlist.toml")).expect("load allowlist");
    report.apply_allowlist(&allowlist);
    let blocking = report.unallowlisted_escapes();
    assert_eq!(blocking.len(), 1, "only the HashMap escape blocks");
    assert_eq!(blocking[0].name, "HashMap");
    assert_eq!(blocking[0].file, "escape_raw.rs");
}

#[test]
fn fixture_pairs_become_a_static_trap_file() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let tf = report.to_trap_file();
    assert_eq!(tf.pairs.len(), 6, "pruned pairs stay out of the trap file");
    assert_eq!(tf.count_origin(PairOrigin::Static), 6);
    // Every textual pair must re-intern as real SiteIds.
    assert_eq!(tf.to_pairs().len(), 6);
    // Confidence survives the trap file and drives arming order: the
    // highest-confidence pairs come first.
    let order = tf.arming_order();
    let confs: Vec<f64> = order.iter().map(|&i| tf.confidence(i)).collect();
    assert!(confs.windows(2).all(|w| w[0] >= w[1]), "sorted: {confs:?}");
    assert_eq!(confs[0], 0.8182);
    assert_eq!(*confs.last().expect("nonempty"), 0.625);
}

#[test]
fn jsonl_round_trips_every_fixture_record() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let jsonl = report.to_jsonl();
    // summary + 2 escapes + 12 sites + 6 pairs + 2 pruned pairs
    assert_eq!(jsonl.lines().count(), 23);
    for line in jsonl.lines() {
        let v: serde::Value = serde_json::from_str(line).expect("valid JSON line");
        let obj = v.as_object().expect("object");
        assert!(obj.contains_key("record"));
    }
    assert_eq!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"record\":\"pruned_pair\""))
            .count(),
        2
    );
}

#[test]
fn score_on_fixture_run_report_meets_the_checked_in_baseline() {
    let report = analyze_workspace(&fixtures_root()).expect("analyze fixtures");
    let dir = std::env::temp_dir().join(format!("tsvd_analyzer_score_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let static_path = dir.join("static.jsonl");
    std::fs::write(&static_path, report.to_jsonl()).expect("write jsonl");

    let (kept, pruned) = load_candidates(&static_path).expect("load candidates");
    assert_eq!(kept.len(), 6);
    assert_eq!(pruned.len(), 2);
    let outcomes =
        load_outcomes(&fixtures_root().join("score/run-report.jsonl")).expect("load outcomes");
    assert_eq!(outcomes.len(), 3);

    let sr = score(&kept, &pruned, &outcomes);
    // 2 of 6 static candidates confirmed dynamically; 2 of 3 dynamic pairs
    // predicted; nothing confirmed was pruned.
    assert_eq!(sr.emitted, 6);
    assert_eq!(sr.confirmed, 2);
    assert_eq!(sr.dynamic_total, 3);
    assert_eq!(sr.matched_dynamic, 2);
    assert_eq!(sr.pruned, 2);
    assert_eq!(sr.pruned_confirmed, 0, "no true candidate was pruned");
    let cross = sr.rules.get("cross-task").expect("cross-task rule");
    assert_eq!((cross.emitted, cross.confirmed), (4, 2));
    let main = sr
        .rules
        .get("main-vs-spawned")
        .expect("main-vs-spawned rule");
    assert_eq!((main.emitted, main.confirmed), (2, 0));

    let baseline =
        Baseline::load(&fixtures_root().join("score/baseline.json")).expect("load baseline");
    sr.check_baseline(&baseline)
        .expect("fixture precision/recall must meet the recorded baseline");
    std::fs::remove_dir_all(&dir).ok();
}
