//! Property-based tests for the analyzer's token scanner.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use tsvd_analyze::analyze_file;

proptest! {
    /// `tokenize` never panics, whatever bytes it is fed: malformed input
    /// must degrade to punctuation tokens, not abort the analysis.
    #[test]
    fn tokenize_never_panics(src in "\\PC*") {
        let toks = tsvd_analyze::lexer::tokenize(&src);
        // Positions stay 1-based and non-decreasing by line.
        let mut last_line = 1u32;
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1);
            prop_assert!(t.line >= last_line);
            last_line = t.line;
        }
    }

    /// Rust-ish soup built from the analyzer's trigger words also lexes and
    /// analyzes without panicking — the full front end, not just the lexer.
    #[test]
    fn analyze_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("let"), Just("fn"), Just("spawn"), Just("clone"),
                Just("Dictionary"), Just("Arc"), Just("Mutex"), Just("lock"),
                Just("{"), Just("}"), Just("("), Just(")"), Just("."),
                Just("="), Just(";"), Just("r#\""), Just("\"#"), Just("/*"),
                Just("*/"), Just("x"), Just("\"")
            ],
            0..120,
        )
    ) {
        let src = words.join(" ");
        let _ = analyze_file("fuzz.rs", &src);
    }
}
