//! Property-based tests for the analyzer's token scanner.

// Requires the real `proptest` crate, which the offline build cannot
// fetch; run with `--features proptests` in an environment that has it.
#![cfg(feature = "proptests")]

use proptest::prelude::*;
use tsvd_analyze::analyze_file;

proptest! {
    /// `tokenize` never panics, whatever bytes it is fed: malformed input
    /// must degrade to punctuation tokens, not abort the analysis.
    #[test]
    fn tokenize_never_panics(src in "\\PC*") {
        let toks = tsvd_analyze::lexer::tokenize(&src);
        // Positions stay 1-based and non-decreasing by line.
        let mut last_line = 1u32;
        for t in &toks {
            prop_assert!(t.line >= 1 && t.col >= 1);
            prop_assert!(t.line >= last_line);
            last_line = t.line;
        }
    }

    /// Happens-before reachability is a pure function of the edge *set*:
    /// inserting the same edges in any order (with duplicates sprinkled
    /// in) must produce the identical reachability relation. A determinism
    /// bedrock for the HB pruning pass — `hb.rs` carries an exhaustive
    /// small-permutation version of this in tier-1; this one samples much
    /// larger graphs.
    #[test]
    fn hb_reachability_is_invariant_to_edge_insertion_order(
        edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40),
        seed in any::<u64>(),
    ) {
        use tsvd_analyze::hb::HbGraph;
        let n = 12;
        let build = |order: &[(usize, usize)]| {
            let mut g = HbGraph::new(n);
            for &(a, b) in order {
                g.add_edge(a, b);
            }
            (0..n)
                .map(|a| (0..n).map(|b| g.reachable(a, b)).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        let reference = build(&edges);
        // Deterministic shuffle driven by the seed, plus a duplicated edge.
        let mut shuffled = edges.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        if let Some(&first) = shuffled.first() {
            shuffled.push(first);
        }
        prop_assert_eq!(build(&shuffled), reference);
    }

    /// Rust-ish soup built from the analyzer's trigger words also lexes and
    /// analyzes without panicking — the full front end, not just the lexer.
    #[test]
    fn analyze_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("let"), Just("fn"), Just("spawn"), Just("clone"),
                Just("Dictionary"), Just("Arc"), Just("Mutex"), Just("lock"),
                Just("{"), Just("}"), Just("("), Just(")"), Just("."),
                Just("="), Just(";"), Just("r#\""), Just("\"#"), Just("/*"),
                Just("*/"), Just("x"), Just("\"")
            ],
            0..120,
        )
    ) {
        let src = words.join(" ");
        let _ = analyze_file("fuzz.rs", &src);
    }
}
