//! Planted bug: a raw std map shared with a spawned task — the detector
//! never sees these accesses. Expected fix: adopt-safe-collection.
use std::collections::HashMap;
use tsvd_tasks::Pool;

pub fn blind_spot(pool: &Pool) {
    let mut cache = HashMap::new();
    cache.insert(1, 2);
    pool.spawn(move || drop(cache));
}
