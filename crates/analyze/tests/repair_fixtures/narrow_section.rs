//! Planted bug: each side holds a *different* lock — the critical sections
//! never exclude each other. Expected fix: narrow-critical-section (unify
//! both sides on one lock).
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
use tsvd_tasks::Pool;

pub fn mismatched(pool: &Pool) {
    let table = Dictionary::new();
    let first_lock = TsvdMutex::new(0u32);
    let second_lock = TsvdMutex::new(0u32);
    let t1 = table.clone();
    let m1 = first_lock.clone();
    let t2 = table.clone();
    let n1 = second_lock.clone();
    pool.spawn(move || {
        let g = m1.lock();
        t1.set(1, 1);
    });
    pool.spawn(move || {
        let g = n1.lock();
        t2.set(2, 2);
    });
}
