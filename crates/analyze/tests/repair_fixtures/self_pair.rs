//! Planted bug: two instances of one spawned helper race on the same
//! materialized call site — a same-location self pair. The repair pass
//! must handle `first == second` without panicking.
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

fn bump(d: &Dictionary<u64, u64>, k: u64) {
    d.set(k, k);
}

pub fn fan_out(pool: &Pool) {
    let counts = Dictionary::new();
    let c1 = counts.clone();
    let c2 = counts.clone();
    pool.spawn(move || bump(&c1, 1));
    pool.spawn(move || bump(&c2, 2));
}
