//! Planted bug: two tasks hit one dictionary with no guard anywhere.
//! Expected fix: wrap-in-mutex (serialize behind a new mutex). The clone
//! chain (`counts` → `c1` → `c2`) must resolve to the root receiver.
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn unguarded(pool: &Pool) {
    let counts = Dictionary::new();
    let c1 = counts.clone();
    let c2 = c1.clone();
    pool.spawn(move || c1.set(1, 1));
    pool.spawn(move || c2.set(2, 2));
}
