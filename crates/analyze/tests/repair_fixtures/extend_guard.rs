//! Planted bug: one side takes the lock, the other does not.
//! Expected fix: extend-existing-guard (reuse `lock` on the bare side).
use tsvd_collections::Dictionary;
use tsvd_tasks::sync::TsvdMutex;
use tsvd_tasks::Pool;

pub fn half_locked(pool: &Pool) {
    let table = Dictionary::new();
    let lock = TsvdMutex::new(0u32);
    let t1 = table.clone();
    let l1 = lock.clone();
    let t2 = table.clone();
    pool.spawn(move || {
        let g = l1.lock();
        t1.set(1, 1);
    });
    pool.spawn(move || {
        t2.set(2, 2);
    });
}
