//! Planted bug: the sender keeps mutating the dictionary after handing a
//! clone over the channel. Expected fix: channel-transfer (move the
//! post-send access above the transfer).
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn handoff(pool: &Pool) {
    let d = Dictionary::new();
    let (tx, rx) = std::sync::mpsc::channel();
    let d1 = d.clone();
    pool.spawn(move || d1.set(1, 1));
    tx.send(d.clone()).ok();
    d.set(2, 2);
}
