//! Planted bug: the main thread reads while the spawned writer still runs.
//! Expected fix: order-by-join (join `writer` before the read).
use tsvd_collections::Dictionary;
use tsvd_tasks::Pool;

pub fn racy_readback(pool: &Pool) {
    let shared = Dictionary::new();
    let w = shared.clone();
    let writer = pool.spawn(move || w.set(1, 10));
    shared.len();
}
