//! End-to-end tests for the repair-inference pass: analyze the planted
//! fixture tree, replay the planted violation sinks, and assert the exact
//! suggestion every fix category produces — pattern, anchor, and diff.

use std::path::{Path, PathBuf};

use tsvd_analyze::repair::infer;
use tsvd_analyze::{analyze_workspace, AnalysisReport};
use tsvd_core::{DurableSink, SuggestionRecord, ViolationRecord};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repair_fixtures")
}

/// Loads every planted sink in deterministic (sorted-name) order — the
/// same order `merge_sink_dir` uses in the fleet crate.
fn planted_violations(root: &Path) -> Vec<ViolationRecord> {
    let mut names: Vec<String> = std::fs::read_dir(root.join("sinks"))
        .expect("sinks dir")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".jsonl"))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        out.extend(DurableSink::load(&root.join("sinks").join(name)).expect("load sink"));
    }
    out
}

fn suggestions() -> Vec<SuggestionRecord> {
    let root = fixture_root();
    let report = analyze_workspace(&root).expect("analyze repair fixtures");
    infer(&report, &planted_violations(&root), &root)
}

fn find<'a>(all: &'a [SuggestionRecord], pattern: &str, file: &str) -> &'a SuggestionRecord {
    all.iter()
        .find(|s| s.pattern == pattern && s.file == file)
        .unwrap_or_else(|| panic!("no {pattern} suggestion for {file} in {all:#?}"))
}

#[test]
fn every_planted_category_gets_its_exact_suggestion() {
    let all = suggestions();
    assert_eq!(
        all.len(),
        8,
        "8 planted violations -> 8 suggestions: {all:#?}"
    );

    // Category 1: one side already holds a lock -> extend it to the other.
    let s = find(&all, "extend-existing-guard", "extend_guard.rs");
    assert_eq!((s.line, s.confidence), (18, 0.7773));
    assert!(
        s.title.contains("`lock`"),
        "reuses the existing lock root: {}",
        s.title
    );
    assert!(
        s.diff.contains("+        let _guard = lock.lock();"),
        "diff: {}",
        s.diff
    );
    assert!(
        s.diff.contains("@@ -16,4 +16,5 @@"),
        "span-anchored hunk: {}",
        s.diff
    );

    // Category 2: raw std collection escape -> adopt the safe wrapper.
    let s = find(&all, "adopt-safe-collection", "adopt_raw.rs");
    assert_eq!((s.line, s.confidence), (7, 0.9));
    assert!(s.diff.contains("-    let mut cache = HashMap::new();"));
    assert!(s.diff.contains("+    let mut cache = Dictionary::new();"));

    // Category 3: main thread races a spawned writer -> join first.
    let s = find(&all, "order-by-join", "join_order.rs");
    assert_eq!((s.line, s.confidence), (10, 0.6136));
    assert!(
        s.diff.contains("+    let _ = writer.join();"),
        "diff: {}",
        s.diff
    );

    // Category 4: sender mutates after the channel handoff -> move above.
    let s = find(&all, "channel-transfer", "channel_move.rs");
    assert_eq!((s.line, s.confidence), (13, 0.2864));
    assert!(s.diff.contains("+    d.set(2, 2);") && s.diff.contains("-    d.set(2, 2);"));

    // Category 5: two different locks that never exclude -> unify them.
    let s = find(&all, "narrow-critical-section", "narrow_section.rs");
    assert_eq!((s.line, s.confidence), (22, 0.6259));
    assert!(s
        .title
        .contains("`first_lock` (currently `first_lock` vs `second_lock`)"));
    assert!(s.diff.contains("-        let g = n1.lock();"));
    assert!(s.diff.contains("+        let g = first_lock.lock();"));

    // Category 6: no guard anywhere -> wrap behind a new mutex.
    let s = find(&all, "wrap-in-mutex", "wrap_mutex.rs");
    assert_eq!((s.line, s.confidence), (11, 0.6546));
    assert!(s.diff.contains("+    let counts_mu = TsvdMutex::new(());"));
    assert_eq!(s.diff.matches("+    let _g = counts_mu.lock();").count(), 2);
}

#[test]
fn suggestions_match_checked_in_baseline_byte_for_byte() {
    let all = suggestions();
    let got = tsvd_core::suggest::to_jsonl(&all);
    let want = std::fs::read_to_string(fixture_root().join("baseline.jsonl"))
        .expect("checked-in baseline");
    assert_eq!(
        got, want,
        "regenerate with: repro fix --report crates/analyze/tests/repair_fixtures/sinks \
         --root crates/analyze/tests/repair_fixtures --jsonl <baseline>"
    );
}

#[test]
fn sites_missing_from_static_db_degrade_to_generic_without_panicking() {
    let all = suggestions();
    let s = find(&all, "generic", "ghost.rs");
    assert_eq!((s.line, s.confidence), (3, 0.2));
    assert!(s.diff.is_empty(), "no span to anchor -> no diff");
    assert!(s
        .rationale
        .contains("sites missing from the static database"));

    // An entirely empty static report must also never panic: every
    // violation degrades to a generic review suggestion.
    let root = fixture_root();
    let empty = AnalysisReport::default();
    let degraded = infer(&empty, &planted_violations(&root), &root);
    assert_eq!(degraded.len(), 8);
    assert!(degraded
        .iter()
        .all(|s| s.pattern == "generic" && s.diff.is_empty()));
}

#[test]
fn clone_chain_aliases_resolve_to_the_root_receiver() {
    let all = suggestions();
    // wrap_mutex.rs accesses go through `c1`/`c2`, both clones of
    // `counts` (one transitively: counts -> c1 -> c2). The suggestion
    // must name the root binding, not an alias.
    let s = find(&all, "wrap-in-mutex", "wrap_mutex.rs");
    assert_eq!(s.receiver, "counts");
    assert!(s.title.contains("`counts`"));
}

#[test]
fn same_location_self_pair_is_handled_without_panicking() {
    let all = suggestions();
    // self_pair.rs materializes the helper's `d.set` once per caller, so
    // the violation pair is the same site twice (first == second).
    let s = find(&all, "wrap-in-mutex", "self_pair.rs");
    assert_eq!(s.first, s.second, "planted self pair");
    assert_eq!((s.line, s.confidence), (8, 0.5564));
    assert_eq!(s.receiver, "counts");
    // The ctor lives *below* the helper's access site; the fallback
    // forward scan must still find it and anchor both hunks validly.
    assert!(s.diff.contains("+    let counts_mu = TsvdMutex::new(());"));
    assert!(s.diff.contains("+    let _g = counts_mu.lock();"));
}

#[test]
fn inference_is_deterministic_across_violation_order() {
    let root = fixture_root();
    let report = analyze_workspace(&root).expect("analyze repair fixtures");
    let forward = planted_violations(&root);
    let mut reversed = forward.clone();
    reversed.reverse();
    // Duplicate records (the same pair re-observed in another worker's
    // sink) must not duplicate suggestions.
    let mut doubled = forward.clone();
    doubled.extend(forward.iter().cloned());
    let a = infer(&report, &forward, &root);
    let b = infer(&report, &reversed, &root);
    let c = infer(&report, &doubled, &root);
    assert_eq!(a, b);
    assert_eq!(a, c);
}
