//! End-to-end fleet-mode tests: real daemon, real worker processes (the
//! `repro` binary via `CARGO_BIN_EXE_repro`), real Unix sockets.
//!
//! Each test gets its own temp directory (ledger + socket + sinks) so they
//! can run concurrently.

use std::path::PathBuf;

use tsvd_fleet::ledger::{replay, verify, Ledger};
use tsvd_fleet::{run_fleet, ChaosPlan, FleetError, FleetOptions, SuiteSpec};

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tsvd_fleet_e2e_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn options(tag: &str, suite: SuiteSpec) -> (FleetOptions, PathBuf) {
    let dir = test_dir(tag);
    let mut opts = FleetOptions::standard(suite, dir.join("ledger.jsonl"), dir.join("sinks"));
    opts.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_repro")));
    opts.workers = 3;
    opts.quiet = true;
    (opts, dir)
}

fn assert_reconciled(ledger: &std::path::Path) -> tsvd_fleet::VerifySummary {
    let events = Ledger::load(ledger).expect("load ledger");
    let state = replay(&events);
    let sink_dir = state.start.as_ref().expect("start event").sink_dir.clone();
    match verify(&events, &sink_dir) {
        Ok(summary) => summary,
        Err(errors) => panic!("ledger invariants violated:\n{}", errors.join("\n")),
    }
}

#[test]
fn fleet_runs_a_suite_and_reconciles_exactly() {
    // 25 modules covers one full generator cycle, so planted bugs exist.
    let (mut opts, dir) = options(
        "clean",
        SuiteSpec::Std {
            modules: 25,
            seed: 0x54494E59,
        },
    );
    opts.waves = 2;
    let report = run_fleet(opts).expect("fleet run");
    assert!(!report.stopped_early);
    assert_eq!(report.completed, 50, "25 modules x 2 waves");
    assert_eq!(report.deaths, 0, "no chaos, no deaths");
    assert!(
        report.violations > 0,
        "the std suite plants catchable bugs in modules 17..=24"
    );
    let summary = assert_reconciled(&report.ledger);
    assert_eq!(summary.done, 50);
    assert_eq!(summary.violations, summary.sink_pairs);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn chaos_kills_lose_no_modules_and_no_violations() {
    let (mut opts, dir) = options(
        "chaos",
        SuiteSpec::Std {
            modules: 25,
            seed: 0x54494E59,
        },
    );
    opts.waves = 2;
    // Aggressive kill/torn rates (no stalls: those are exercised separately
    // and would slow this test by design). Roughly 2 in 5 assignments die.
    opts.chaos = Some(ChaosPlan {
        seed: 1234,
        kill_per_mille: 250,
        stall_per_mille: 0,
        torn_per_mille: 150,
        stall_ms: 0,
    });
    let report = run_fleet(opts).expect("chaos fleet run");
    assert!(!report.stopped_early);
    assert!(
        report.deaths > 0,
        "a 40% fault rate over ~50 assignments must kill workers"
    );
    // No module lost: every (wave, module) resolved — done or quarantined.
    // (A module can finish wave 0 and only then be quarantined in wave 1,
    // so the check is per (wave, module), not arithmetic on totals.)
    let summary = assert_reconciled(&report.ledger);
    let events = Ledger::load(&report.ledger).expect("load ledger");
    let state = replay(&events);
    for wave in 0..2 {
        for index in 0..25 {
            assert!(
                state.done.contains_key(&(wave, index)) || state.quarantined.contains_key(&index),
                "module {index} unresolved in wave {wave}"
            );
        }
    }
    // No violation lost: harvest + dedup means the ledger equals the sink
    // union exactly (assert_reconciled already proved set equality).
    assert_eq!(summary.violations, summary.sink_pairs);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hang_detection_and_quarantine_poison_a_wedging_module() {
    let (mut opts, dir) = options(
        "stall",
        SuiteSpec::Std {
            modules: 1,
            seed: 7,
        },
    );
    opts.workers = 1;
    opts.waves = 1;
    // Every assignment stalls: heartbeats stop, the worker wedges for far
    // longer than the hang timeout. The supervisor must kill it each time
    // and quarantine the module at the kill limit.
    opts.chaos = Some(ChaosPlan {
        seed: 1,
        kill_per_mille: 0,
        stall_per_mille: 1000,
        torn_per_mille: 0,
        stall_ms: 10_000,
    });
    opts.heartbeat_ms = 50;
    opts.hang_timeout_ms = 400;
    opts.quarantine_kill_limit = 3;
    let report = run_fleet(opts).expect("stall fleet run");
    assert_eq!(report.quarantined, vec![0], "the module must be poisoned");
    assert_eq!(report.deaths, 3, "one hang-kill per kill-limit strike");
    assert_eq!(report.completed, 0);
    assert_reconciled(&report.ledger);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_after_daemon_crash_reruns_no_completed_module() {
    let (mut opts, dir) = options(
        "resume",
        SuiteSpec::Std {
            modules: 12,
            seed: 3,
        },
    );
    opts.waves = 1;
    // Phase 1: the daemon "crashes" (stops cold: no finish event, no
    // graceful shutdown) after 5 completions.
    opts.stop_after_completions = Some(5);
    let ledger = opts.ledger.clone();
    let first = run_fleet(opts.clone()).expect("first (crashing) run");
    assert!(first.stopped_early);
    assert!(first.completed >= 5);
    assert!(first.completed < 12, "the stop hook must fire mid-run");

    // Phase 2: resume from the ledger alone.
    opts.stop_after_completions = None;
    opts.resume = true;
    let second = run_fleet(opts).expect("resumed run");
    assert!(!second.stopped_early);
    assert_eq!(second.completed, 12, "all modules resolved after resume");

    // The verifier's assign-after-done invariant is the proof that resume
    // re-ran zero completed modules; duplicate-done catches double counts.
    assert_reconciled(&ledger);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn module_that_panics_once_counts_exactly_once() {
    let dir = test_dir("flaky");
    let mut opts = FleetOptions::standard(
        SuiteSpec::Flaky {
            modules: 3,
            dir: dir.join("markers"),
        },
        dir.join("ledger.jsonl"),
        dir.join("sinks"),
    );
    opts.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_repro")));
    opts.workers = 2;
    opts.waves = 1;
    opts.quiet = true;
    opts.module_attempt_limit = 2;
    let report = run_fleet(opts).expect("flaky fleet run");
    assert_eq!(report.completed, 3);
    assert_eq!(
        report.retries, 3,
        "each module panics exactly once and is retried exactly once"
    );

    let events = Ledger::load(&dir.join("ledger.jsonl")).expect("load ledger");
    let state = replay(&events);
    for index in 0..3 {
        let done = state
            .done
            .get(&(0, index))
            .unwrap_or_else(|| panic!("module {index} has no final outcome"));
        assert_eq!(
            done.outcome, "completed",
            "aggregates must count the final outcome, not the panic"
        );
        assert_eq!(state.failures.get(&(0, index)), Some(&1));
    }
    assert_reconciled(&dir.join("ledger.jsonl"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn module_that_times_out_once_counts_exactly_once() {
    let dir = test_dir("sleepy");
    let mut opts = FleetOptions::standard(
        SuiteSpec::Sleepy {
            modules: 2,
            ms: 2_000,
            dir: dir.join("markers"),
        },
        dir.join("ledger.jsonl"),
        dir.join("sinks"),
    );
    opts.worker_exe = Some(PathBuf::from(env!("CARGO_BIN_EXE_repro")));
    opts.workers = 2;
    opts.waves = 1;
    opts.quiet = true;
    opts.deadline_ms = 200; // first execution blows this, second is instant
    opts.hang_timeout_ms = 5_000; // heartbeats keep flowing; no hang-kill
    opts.module_attempt_limit = 2;
    let report = run_fleet(opts).expect("sleepy fleet run");
    assert_eq!(report.completed, 2);
    assert_eq!(report.deaths, 0, "timeouts are contained, not fatal");
    assert_eq!(report.retries, 2, "one timed-out retry per module");

    let events = Ledger::load(&dir.join("ledger.jsonl")).expect("load ledger");
    let state = replay(&events);
    for index in 0..2 {
        assert_eq!(
            state.done.get(&(0, index)).map(|d| d.outcome.as_str()),
            Some("completed")
        );
    }
    assert_reconciled(&dir.join("ledger.jsonl"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unspawnable_workers_retire_and_the_run_fails_loudly() {
    let (mut opts, dir) = options(
        "retire",
        SuiteSpec::Std {
            modules: 2,
            seed: 1,
        },
    );
    opts.worker_exe = Some(PathBuf::from("/nonexistent/tsvd-worker"));
    opts.workers = 2;
    opts.waves = 1;
    opts.max_spawn_failures = 1;
    match run_fleet(opts) {
        Err(FleetError::AllWorkersRetired { pending }) => assert_eq!(pending, 2),
        other => panic!("expected AllWorkersRetired, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
