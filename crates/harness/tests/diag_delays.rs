//! Diagnostic: per-family delay counts for TSVD vs TSVD-HB (run manually
//! with `cargo test -p tsvd-harness --test diag_delays -- --nocapture --ignored`).

use std::collections::HashMap;
use tsvd_core::TsvdConfig;
use tsvd_harness::runner::{run_module_once, DetectorKind, RunOptions};
use tsvd_workloads::suite::{build_suite, SuiteConfig};

#[test]
#[ignore]
fn per_family_delays() {
    let suite = build_suite(SuiteConfig {
        modules: 100,
        seed: 0x534D_414C,
    });
    let options = RunOptions {
        config: TsvdConfig::paper().scaled(0.02),
        threads: 2,
        runs: 1,
        shared_trap_file: false,
        module_deadline: Some(std::time::Duration::from_secs(30)),
        static_priors: None,
    };
    for kind in [DetectorKind::Tsvd, DetectorKind::TsvdHb] {
        let mut per: HashMap<String, (u64, u64)> = HashMap::new();
        for m in &suite {
            let fam = m.name().split(':').nth(1).unwrap_or("?").to_string();
            let run = run_module_once(m, kind, &options, None);
            let (rt, wall) = (run.runtime, run.wall_ns);
            let e = per.entry(fam).or_default();
            e.0 += rt.stats().delays_injected();
            e.1 += wall / 1_000_000;
        }
        let mut rows: Vec<_> = per.into_iter().collect();
        rows.sort_by_key(|(_, (d, _))| std::cmp::Reverse(*d));
        println!("=== {} ===", kind.name());
        for (fam, (d, ms)) in rows {
            println!("{fam:30} delays={d:5} wall={ms}ms");
        }
    }
}
