//! Experiment harness: regenerates every table and figure of the TSVD
//! evaluation (§5).
//!
//! The harness runs (module × detector × run-count) with trap-file
//! carry-over between runs, measures overhead against an instrumented
//! no-delay baseline, aggregates unique bugs under the paper's identity
//! (unordered static-location pair, scoped per module since generated
//! modules share scenario source), and prints each table/figure. The
//! `repro` binary drives it:
//!
//! ```text
//! cargo run --release -p tsvd-harness --bin repro -- all
//! cargo run --release -p tsvd-harness --bin repro -- table2 --modules 200 --runs 2
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod experiments;
pub mod report;

// The runner moved to `tsvd-fleet` (fleet workers execute modules through
// the same code path); re-exported here so `tsvd::harness::runner::...`
// keeps working for every existing caller.
pub use tsvd_fleet::runner;

pub use chaos::{run_chaos, ChaosOptions, ChaosReport};
pub use runner::{DetectorKind, ModuleOutcome, ModuleRun, RunOptions, SuiteOutcome};
