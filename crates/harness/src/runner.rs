//! The suite runner: executes modules under detectors and aggregates.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

use tsvd_core::near_miss::SitePair;
use tsvd_core::{Runtime, TrapFileData, TsvdConfig};
use tsvd_workloads::module::{Expectation, Module, ModuleCtx};

/// The detectors of Table 2 (plus the passive baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DetectorKind {
    /// Instrumented, never delays — the overhead baseline.
    Noop,
    /// §3.2 DynamicRandom.
    DynamicRandom,
    /// §3.3 StaticRandom — the paper's DataCollider emulation.
    DataCollider,
    /// §3.5 TSVD-HB.
    TsvdHb,
    /// §3.4 TSVD.
    Tsvd,
}

impl DetectorKind {
    /// The four detectors compared in Table 2, in the paper's row order.
    pub const TABLE2: [DetectorKind; 4] = [
        DetectorKind::DataCollider,
        DetectorKind::DynamicRandom,
        DetectorKind::TsvdHb,
        DetectorKind::Tsvd,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DetectorKind::Noop => "Baseline",
            DetectorKind::DynamicRandom => "DynamicRandom",
            DetectorKind::DataCollider => "DataCollider",
            DetectorKind::TsvdHb => "TSVD-HB",
            DetectorKind::Tsvd => "TSVD",
        }
    }

    /// Builds a fresh runtime of this kind.
    pub fn build(self, config: TsvdConfig) -> Arc<Runtime> {
        match self {
            DetectorKind::Noop => Runtime::noop(config),
            DetectorKind::DynamicRandom => Runtime::dynamic_random(config),
            DetectorKind::DataCollider => Runtime::static_random(config),
            DetectorKind::TsvdHb => Runtime::tsvd_hb(config),
            DetectorKind::Tsvd => Runtime::tsvd(config),
        }
    }
}

/// A bug, uniquely identified suite-wide: generated modules share scenario
/// source, so the paper's static-location-pair key is scoped per module.
pub type BugKey = (String, SitePair);

/// Options for a suite run.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Detector configuration (already scaled).
    pub config: TsvdConfig,
    /// Pool workers per module.
    pub threads: usize,
    /// Number of test runs (trap files carry over between runs).
    pub runs: usize,
    /// Extension (beyond the paper): one *shared* trap file for the whole
    /// suite instead of one per module. In a monorepo, modules exercise the
    /// same library code, so a dangerous pair learned while testing one
    /// module pre-arms the same static locations everywhere else — even
    /// within run 1, for modules scheduled later.
    pub shared_trap_file: bool,
}

impl RunOptions {
    /// Two runs at CI scale — the paper's standard setting.
    pub fn standard() -> RunOptions {
        RunOptions {
            config: TsvdConfig::paper().scaled(0.02),
            threads: 2,
            runs: 2,
            shared_trap_file: false,
        }
    }
}

/// Per-run aggregate of a suite execution.
#[derive(Debug, Clone, Default)]
pub struct RunAggregate {
    /// Bugs first discovered in this run.
    pub new_bugs: Vec<BugKey>,
    /// Wall-clock nanoseconds spent executing modules this run.
    pub wall_ns: u64,
    /// Delays injected this run.
    pub delays: u64,
    /// Actual nanoseconds slept in injected delays this run.
    pub delay_ns: u64,
    /// `OnCall`s observed this run.
    pub on_calls: u64,
}

/// Outcome of running one suite under one detector for N runs.
#[derive(Debug, Clone)]
pub struct SuiteOutcome {
    /// Detector display name.
    pub detector: &'static str,
    /// Per-run aggregates, index 0 = run 1.
    pub runs: Vec<RunAggregate>,
    /// Every unique bug found, with the (1-based) run that found it.
    pub bugs: HashMap<BugKey, usize>,
    /// Total occurrences per bug (repeat catches included).
    pub occurrences: HashMap<BugKey, usize>,
    /// Peak strategy memory estimate across module runs, bytes.
    pub peak_strategy_bytes: usize,
}

impl SuiteOutcome {
    /// Unique bugs found in run `run` (1-based).
    pub fn bugs_in_run(&self, run: usize) -> usize {
        self.runs.get(run - 1).map_or(0, |r| r.new_bugs.len())
    }

    /// Total unique bugs.
    pub fn total_bugs(&self) -> usize {
        self.bugs.len()
    }

    /// Total delays injected across runs.
    pub fn total_delays(&self) -> u64 {
        self.runs.iter().map(|r| r.delays).sum()
    }

    /// Total nanoseconds actually slept in injected delays.
    pub fn total_delay_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.delay_ns).sum()
    }

    /// Total wall time across runs.
    pub fn total_wall_ns(&self) -> u64 {
        self.runs.iter().map(|r| r.wall_ns).sum()
    }

    /// Cumulative unique-bug counts after each run (for Fig. 8).
    pub fn cumulative_bugs(&self) -> Vec<usize> {
        let mut total = 0;
        self.runs
            .iter()
            .map(|r| {
                total += r.new_bugs.len();
                total
            })
            .collect()
    }
}

/// Runs `module` once under a fresh runtime, returning the runtime and the
/// wall time.
pub fn run_module_once(
    module: &Module,
    kind: DetectorKind,
    options: &RunOptions,
    trap_file: Option<&TrapFileData>,
) -> (Arc<Runtime>, u64) {
    let rt = kind.build(options.config.clone());
    if let Some(tf) = trap_file {
        rt.import_trap_file(tf);
    }
    let ctx = ModuleCtx::new(rt.clone(), options.threads);
    let start = Instant::now();
    module.run(&ctx);
    let wall_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    (rt, wall_ns)
}

/// Runs the whole suite under `kind` for `options.runs` runs, carrying each
/// module's trap file from run to run (§3.4.6).
pub fn run_suite(suite: &[Module], kind: DetectorKind, options: &RunOptions) -> SuiteOutcome {
    let mut outcome = SuiteOutcome {
        detector: kind.name(),
        runs: Vec::with_capacity(options.runs),
        bugs: HashMap::new(),
        occurrences: HashMap::new(),
        peak_strategy_bytes: 0,
    };
    let mut trap_files: HashMap<String, TrapFileData> = HashMap::new();
    let mut shared: TrapFileData = TrapFileData::default();

    for run_idx in 0..options.runs {
        let mut agg = RunAggregate::default();
        // Each test run gets fresh randomness (the paper re-runs the same
        // tools, whose sampling differs run to run); without this the
        // probabilistic detectors would repeat themselves exactly and
        // Fig. 8's curves could never climb.
        let mut run_options = options.clone();
        run_options.config.seed = options
            .config
            .seed
            .wrapping_add((run_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        for module in suite {
            let import = if options.shared_trap_file {
                Some(&shared)
            } else {
                trap_files.get(module.name())
            };
            let (rt, wall_ns) = run_module_once(module, kind, &run_options, import);
            agg.wall_ns += wall_ns;
            agg.delays += rt.stats().delays_injected();
            agg.delay_ns += rt.stats().delay_total_ns();
            agg.on_calls += rt.stats().on_calls();
            outcome.peak_strategy_bytes =
                outcome.peak_strategy_bytes.max(rt.strategy_memory_bytes());
            for (pair, count) in rt.reports().occurrence_counts() {
                let key: BugKey = (module.name().to_owned(), pair);
                *outcome.occurrences.entry(key.clone()).or_insert(0) += count;
                if !outcome.bugs.contains_key(&key) {
                    outcome.bugs.insert(key.clone(), run_idx + 1);
                    agg.new_bugs.push(key);
                }
            }
            if let Some(tf) = rt.export_trap_file() {
                if options.shared_trap_file {
                    // Merge, deduplicating textual pairs.
                    for pair in tf.pairs {
                        if !shared.pairs.contains(&pair) {
                            shared.pairs.push(pair);
                        }
                    }
                } else {
                    trap_files.insert(module.name().to_owned(), tf);
                }
            }
        }
        outcome.runs.push(agg);
    }
    outcome
}

/// Runs the suite once per run under the passive baseline and returns the
/// total wall time, for overhead computation.
pub fn baseline_wall_ns(suite: &[Module], options: &RunOptions) -> u64 {
    let outcome = run_suite(suite, DetectorKind::Noop, options);
    outcome.total_wall_ns()
}

/// Overhead of `outcome` relative to a baseline wall time, in percent.
pub fn overhead_pct(outcome: &SuiteOutcome, baseline_ns: u64) -> f64 {
    if baseline_ns == 0 {
        return 0.0;
    }
    (outcome.total_wall_ns() as f64 - baseline_ns as f64) / baseline_ns as f64 * 100.0
}

/// Splits the found bugs by whether their module's ground truth says they
/// were planted (sanity: a `Clean` module must never appear here).
pub fn check_no_false_positives(suite: &[Module], outcome: &SuiteOutcome) -> Result<(), String> {
    let clean: HashSet<&str> = suite
        .iter()
        .filter(|m| m.expectation() == Expectation::Clean)
        .map(|m| m.name())
        .collect();
    for (module, pair) in outcome.bugs.keys() {
        if clean.contains(module.as_str()) {
            return Err(format!(
                "false positive: clean module {module} reported pair {} / {}",
                pair.first, pair.second
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsvd_workloads::suite::{build_suite, SuiteConfig};

    fn options() -> RunOptions {
        RunOptions {
            config: TsvdConfig::paper().scaled(0.02),
            threads: 2,
            runs: 2,
            shared_trap_file: false,
        }
    }

    #[test]
    fn tsvd_finds_bugs_and_no_false_positives_on_tiny_suite() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options());
        check_no_false_positives(&suite, &outcome).expect("no false positives ever");
        assert!(
            outcome.total_bugs() >= 1,
            "tiny suite has 7+ planted bugs; TSVD must catch at least one"
        );
    }

    #[test]
    fn noop_finds_nothing() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Noop, &options());
        assert_eq!(outcome.total_bugs(), 0);
        assert_eq!(outcome.total_delays(), 0);
    }

    #[test]
    fn cumulative_bugs_is_monotonic() {
        let suite = build_suite(SuiteConfig::tiny());
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &options());
        let cum = outcome.cumulative_bugs();
        assert_eq!(cum.len(), 2);
        assert!(cum[1] >= cum[0]);
        assert_eq!(*cum.last().expect("two runs"), outcome.total_bugs());
    }

    #[test]
    fn overhead_is_computed_relative_to_baseline() {
        let suite = build_suite(SuiteConfig {
            modules: 8,
            seed: 5,
        });
        let opts = options();
        let base = baseline_wall_ns(&suite, &opts);
        assert!(base > 0);
        let outcome = run_suite(&suite, DetectorKind::Tsvd, &opts);
        let pct = overhead_pct(&outcome, base);
        assert!(pct > -90.0, "overhead {pct}% looks wrong");
    }
}
