//! Plain-text table/series printers and CSV export.

use std::io::Write;
use std::path::PathBuf;

/// A rendered experiment artifact: a titled table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity must match headers"
        );
        self.rows.push(cells);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the table as CSV under `target/experiments/<file>.csv`.
    pub fn save_csv(&self, file: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{file}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Formats a fraction as a percent string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats an overhead percentage.
pub fn overhead(x: f64) -> String {
    format!("{x:.0}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("T", &["name", "n"]);
        t.row(vec!["tsvd".into(), "53".into()]);
        t.row(vec!["datacollider".into(), "25".into()]);
        let s = t.render();
        assert!(s.contains("== T =="));
        assert!(s.contains("tsvd"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let path = t.save_csv("report_test").expect("save");
        let text = std::fs::read_to_string(path).expect("read");
        assert_eq!(text, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.481), "48.1%");
        assert_eq!(overhead(33.4), "33%");
    }
}
