//! `repro`: regenerate the paper's tables and figures.
//!
//! ```text
//! repro all                       # every experiment at default scale
//! repro table2 --modules 200      # one experiment
//! repro fig8 --runs 50 --modules 75
//! repro fig9 --scale 0.01        # faster, smaller time constants
//! ```

use tsvd_harness::experiments::{
    coverage, ext_adaptive, ext_shared, fig8, fig9, fneg, resources, table1, table2, table3,
    table4, validate, ExpOpts,
};
use tsvd_harness::report::Table;

fn usage() -> ! {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|fig8|fig9|fneg|resources|ext|validate|coverage|chaos|all> \
         [--modules N] [--runs N] [--seed N] [--scale F] [--threads N]\n\
         \x20      repro analyze [--root DIR] [--allowlist FILE] [--jsonl FILE] \
         [--emit-traps FILE] [--deny-escapes]\n\
         \x20      repro analyze --score STATIC DYNAMIC [--baseline FILE] [--jsonl FILE]"
    );
    std::process::exit(2);
}

/// `repro analyze`: run the static front end over a source tree.
///
/// Prints the human report; optionally writes a JSONL report and a
/// statically-tagged trap file. Exit codes: 0 clean, 1 un-allowlisted
/// escapes found under `--deny-escapes`, 2 usage or I/O error.
fn run_analyze_cmd(args: &[String]) -> ! {
    if args.first().map(String::as_str) == Some("--score") {
        run_score_cmd(&args[1..]);
    }
    let mut root = std::path::PathBuf::from(".");
    let mut allowlist_path: Option<std::path::PathBuf> = None;
    let mut jsonl_path: Option<std::path::PathBuf> = None;
    let mut traps_path: Option<std::path::PathBuf> = None;
    let mut deny_escapes = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--deny-escapes" => {
                deny_escapes = true;
                i += 1;
            }
            flag @ ("--root" | "--allowlist" | "--jsonl" | "--emit-traps") => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                let path = std::path::PathBuf::from(value);
                match flag {
                    "--root" => root = path,
                    "--allowlist" => allowlist_path = Some(path),
                    "--jsonl" => jsonl_path = Some(path),
                    _ => traps_path = Some(path),
                }
                i += 2;
            }
            _ => usage(),
        }
    }

    let mut report = match tsvd_analyze::analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("repro analyze: cannot scan {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    // Default allowlist: <root>/analyze-allowlist.toml when present.
    let allowlist = match &allowlist_path {
        Some(p) => match tsvd_analyze::Allowlist::load(p) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("repro analyze: cannot read allowlist {}: {e}", p.display());
                std::process::exit(2);
            }
        },
        None => {
            let default = root.join("analyze-allowlist.toml");
            if default.is_file() {
                tsvd_analyze::Allowlist::load(&default).unwrap_or_default()
            } else {
                tsvd_analyze::Allowlist::empty()
            }
        }
    };
    report.apply_allowlist(&allowlist);

    print!("{}", report.render_human());
    if let Some(p) = &jsonl_path {
        if let Err(e) = std::fs::write(p, report.to_jsonl()) {
            eprintln!("repro analyze: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!("[jsonl report: {}]", p.display());
    }
    if let Some(p) = &traps_path {
        if let Err(e) = report.to_trap_file().save(p) {
            eprintln!("repro analyze: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!(
            "[static trap file: {} ({} pairs)]",
            p.display(),
            report.pairs.len()
        );
    }
    let blocking = report.unallowlisted_escapes().len();
    if deny_escapes && blocking > 0 {
        eprintln!(
            "repro analyze: {blocking} raw-collection escape(s) not covered by the allowlist"
        );
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `repro analyze --score STATIC DYNAMIC`: the precision scoreboard.
///
/// Joins static pair candidates (an analyzer JSONL report or a trap file)
/// against dynamic outcomes (a run-report JSONL or a trap file) and prints
/// per-rule precision plus overall precision/recall. With `--baseline FILE`
/// the computed numbers must not regress below the recorded floor. Exit
/// codes: 0 ok, 1 baseline regression or true-candidate loss, 2 usage or
/// I/O error.
fn run_score_cmd(args: &[String]) -> ! {
    let mut positional: Vec<&String> = Vec::new();
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut jsonl_path: Option<std::path::PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--baseline" | "--jsonl") => {
                let Some(value) = args.get(i + 1) else {
                    usage()
                };
                let path = std::path::PathBuf::from(value);
                if flag == "--baseline" {
                    baseline_path = Some(path);
                } else {
                    jsonl_path = Some(path);
                }
                i += 2;
            }
            _ => {
                positional.push(&args[i]);
                i += 1;
            }
        }
    }
    let [static_path, dynamic_path] = positional.as_slice() else {
        usage()
    };
    let (kept, pruned) =
        match tsvd_analyze::score::load_candidates(std::path::Path::new(static_path.as_str())) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("repro analyze --score: cannot read candidates {static_path}: {e}");
                std::process::exit(2);
            }
        };
    let outcomes =
        match tsvd_analyze::score::load_outcomes(std::path::Path::new(dynamic_path.as_str())) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("repro analyze --score: cannot read outcomes {dynamic_path}: {e}");
                std::process::exit(2);
            }
        };
    let report = tsvd_analyze::score::score(&kept, &pruned, &outcomes);
    print!("{}", report.render_human());
    if let Some(p) = &jsonl_path {
        let line = serde_json::to_string(&report.to_json_value()).unwrap_or_default();
        if let Err(e) = std::fs::write(p, line + "\n") {
            eprintln!("repro analyze --score: cannot write {}: {e}", p.display());
            std::process::exit(2);
        }
        println!("[score report: {}]", p.display());
    }
    let mut failed = false;
    if report.pruned_confirmed > 0 {
        eprintln!(
            "repro analyze --score: {} dynamically confirmed pair(s) were pruned statically",
            report.pruned_confirmed
        );
        failed = true;
    }
    if let Some(p) = &baseline_path {
        let baseline = match tsvd_analyze::score::Baseline::load(p) {
            Ok(b) => b,
            Err(e) => {
                eprintln!(
                    "repro analyze --score: cannot read baseline {}: {e}",
                    p.display()
                );
                std::process::exit(2);
            }
        };
        if let Err(msg) = report.check_baseline(&baseline) {
            eprintln!("repro analyze --score: {msg}");
            failed = true;
        } else {
            println!(
                "[baseline ok: precision >= {:.4}, recall >= {:.4}]",
                baseline.precision, baseline.recall
            );
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

/// Runs the chaos storm (`--runs` iterations, default 10) and exits
/// non-zero if any robustness invariant breaks.
fn run_chaos_cmd(opts: &ExpOpts) {
    let mut options = tsvd_harness::ChaosOptions::standard();
    options.threads = opts.threads;
    options.seed = options.seed.wrapping_add(opts.seed);
    if opts.runs > 2 {
        options.iterations = opts.runs;
    }
    let sink_path =
        std::env::temp_dir().join(format!("tsvd_chaos_sink_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&sink_path);
    options.config.durable_sink = Some(sink_path.clone());
    match tsvd_harness::run_chaos(&options) {
        Ok(report) => {
            println!(
                "chaos ok: {} tasks ({} panicked, {} handles dropped), \
                 {} violations, {} delays, {} degraded iteration(s), {} durable record(s)",
                report.tasks_spawned,
                report.tasks_panicked,
                report.handles_dropped,
                report.violations,
                report.delays,
                report.degraded_iterations,
                report.durable_records,
            );
            let _ = std::fs::remove_file(&sink_path);
        }
        Err(failure) => {
            eprintln!("{failure}");
            std::process::exit(1);
        }
    }
}

fn parse_opts(args: &[String]) -> ExpOpts {
    let mut opts = ExpOpts::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let Some(value) = args.get(i + 1) else {
            usage()
        };
        match flag {
            "--modules" => opts.modules = value.parse().unwrap_or_else(|_| usage()),
            "--runs" => opts.runs = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value.parse().unwrap_or_else(|_| usage()),
            "--scale" => opts.scale = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => opts.threads = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn emit(name: &str, tables: Vec<Table>) {
    for (i, t) in tables.iter().enumerate() {
        t.print();
        let file = if tables.len() == 1 {
            name.to_string()
        } else {
            format!("{name}_{}", (b'a' + i as u8) as char)
        };
        match t.save_csv(&file) {
            Ok(path) => println!("[saved {}]\n", path.display()),
            Err(e) => eprintln!("[csv save failed: {e}]"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else { usage() };
    if which == "analyze" {
        run_analyze_cmd(&args[1..]);
    }
    let opts = parse_opts(&args[1..]);

    let start = std::time::Instant::now();
    match which.as_str() {
        "table1" => emit(
            "table1",
            table1::run(&opts.with_modules(opts.modules.max(400))),
        ),
        "table2" => emit("table2", table2::run(&opts)),
        "table3" => emit("table3", table3::run(&opts)),
        "table4" => emit("table4", table4::run(&opts)),
        "fig8" => {
            let mut o = opts.with_modules(opts.modules.min(75));
            if o.runs < 10 {
                o.runs = 50;
            }
            emit("fig8", fig8::run(&o));
        }
        "fig9" => emit("fig9", fig9::run(&opts.with_modules(opts.modules.min(100)))),
        "fneg" => emit("fneg", fneg::run(&opts.with_modules(opts.modules.min(100)))),
        "resources" => emit("resources", resources::run(&opts)),
        "ext" => {
            emit("ext_adaptive", ext_adaptive::run(&opts));
            emit(
                "ext_shared",
                ext_shared::run(&opts.with_modules(opts.modules.min(100))),
            );
        }
        "validate" => emit(
            "validate",
            validate::run(&opts.with_modules(opts.modules.min(100))),
        ),
        "coverage" => emit("coverage", coverage::run(&opts)),
        "chaos" => run_chaos_cmd(&opts),
        "all" => {
            emit("table2", table2::run(&opts));
            emit("table3", table3::run(&opts));
            emit("table4", table4::run(&opts));
            emit(
                "table1",
                table1::run(&opts.with_modules(opts.modules.max(400))),
            );
            let mut f8 = opts.with_modules(opts.modules.min(75));
            if f8.runs < 10 {
                f8.runs = 50;
            }
            emit("fig8", fig8::run(&f8));
            emit("fig9", fig9::run(&opts.with_modules(opts.modules.min(100))));
            emit("fneg", fneg::run(&opts.with_modules(opts.modules.min(100))));
            emit("resources", resources::run(&opts));
            emit("ext_adaptive", ext_adaptive::run(&opts));
            emit(
                "ext_shared",
                ext_shared::run(&opts.with_modules(opts.modules.min(100))),
            );
            emit(
                "validate",
                validate::run(&opts.with_modules(opts.modules.min(100))),
            );
            emit("coverage", coverage::run(&opts));
        }
        _ => usage(),
    }
    eprintln!("[repro finished in {:.1}s]", start.elapsed().as_secs_f64());
}
